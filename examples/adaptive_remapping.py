#!/usr/bin/env python
"""Online traffic-adaptive remapping: latency recovery after a traffic-mix change.

A depth-estimation stream (E2Depth) owns the platform alone; midway through,
an optical-flow stream (EV-FlowNet) joins and both contend for the same PEs.
Two operating points are compared:

* static    — both streams keep the default all-GPU deployment; the join
              doubles the GPU's load and the resident stream's latency spikes.
* adaptive  — a :class:`~repro.runtime.streams.RemapPolicy` re-runs a
              budgeted NMP search at every join/leave; the search spreads the
              two networks across GPU/DLA/CPU and the resident stream's
              latency recovers.

Run with:  python examples/adaptive_remapping.py
"""

import numpy as np

from repro.core import EvEdgeConfig, NMPConfig, OptimizationLevel
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.runtime import MultiStreamSimulator, RemapPolicy, StreamSource


def phase_latencies(report, stream, split_time):
    """Mean inference latency of ``stream`` before/after ``split_time`` (ms)."""
    records = report.reports[stream].records
    before = [r.latency for r in records if r.dispatch_time < split_time]
    after = [r.latency for r in records if r.dispatch_time >= split_time]
    mean = lambda xs: float(np.mean(xs)) * 1e3 if xs else float("nan")
    return mean(before), mean(after)


def main() -> None:
    platform = jetson_xavier_agx()
    config = EvEdgeConfig(num_bins=8, optimization=OptimizationLevel.FULL)
    resident_seq = generate_sequence("town10", scale=0.2, duration=1.2, seed=0)
    joining_seq = generate_sequence("indoor_flying1", scale=0.2, duration=0.6, seed=1)
    join_time = 0.5

    def sources():
        return [
            StreamSource(
                "resident:e2depth",
                resident_seq,
                build_network("e2depth", 128, 128),
                config,
            ),
            StreamSource(
                "joiner:evflownet",
                joining_seq,
                build_network("evflownet", 128, 128),
                config,
                start_offset=join_time,
            ),
        ]

    policy = RemapPolicy(
        nmp_config=NMPConfig(population_size=12, generations=8, seed=0),
        strategy="evolutionary",
    )
    static = MultiStreamSimulator(platform, sources()).run()
    adaptive = MultiStreamSimulator(platform, sources(), remap_policy=policy).run()

    print(f"platform: {platform.name}   join at t={join_time * 1e3:.0f} ms")
    print()
    print("remap log (adaptive):")
    for record in adaptive.remaps:
        print(
            f"  t={record.time * 1e3:7.1f} ms  {record.reason:5s} "
            f"active={','.join(record.active_streams):40s} "
            f"search best={record.best_latency * 1e3:.2f} ms "
            f"({record.evaluations} evaluations, {record.strategy})"
        )
    print()
    print("resident-stream latency (ms):    solo     contended")
    for label, report in (("static", static), ("adaptive", adaptive)):
        before, after = phase_latencies(report, "resident:e2depth", join_time)
        print(f"  {label:9s}                  {before:7.3f}   {after:9.3f}")
    print()
    static_after = phase_latencies(static, "resident:e2depth", join_time)[1]
    adaptive_after = phase_latencies(adaptive, "resident:e2depth", join_time)[1]
    print(
        f"latency recovery under contention: {static_after / adaptive_after:.2f}x "
        f"({static_after:.3f} ms -> {adaptive_after:.3f} ms)"
    )
    print(
        f"total energy: static {static.total_energy:.3f} J, "
        f"adaptive {adaptive.total_energy:.3f} J"
    )


if __name__ == "__main__":
    main()
