#!/usr/bin/env python
"""Single-task study: optical flow on a drone sequence (paper Figure 8 style).

Runs Adaptive-SpikeNet through every optimization level of Ev-Edge on the
indoor_flying1 stand-in, reports latency/energy per level, and also measures
the flow accuracy of the surrogate estimator with and without the Ev-Edge
precision/aggregation choices (paper Table 2 style).

Run with:  python examples/single_task_optical_flow.py
"""

from repro.core import DSFAConfig, EvEdgeConfig, EvEdgePipeline, OptimizationLevel
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.nn import Precision, TaskAccuracyEvaluator


def main() -> None:
    platform = jetson_xavier_agx()
    network = build_network("adaptive_spikenet")
    sequence = generate_sequence("indoor_flying1", scale=0.25, duration=1.0, seed=0)
    dsfa = DSFAConfig(event_buffer_size=8, merge_bucket_size=4, inference_queue_depth=2)

    print(f"network: {network.name} ({network.network_type}, {network.num_layers} layers, "
          f"{network.total_macs / 1e9:.2f} GMACs)")
    print(f"sequence: {sequence.name}, {len(sequence.events)} events")
    print()

    baseline_latency = None
    for level in OptimizationLevel:
        if level is OptimizationLevel.FULL:
            # The full level needs an NMP mapping; reuse the experiment helper.
            from repro.experiments.fig8_single_task import _single_task_nmp_mapping
            from repro.experiments import ExperimentSettings

            mapping = _single_task_nmp_mapping(network, platform, ExperimentSettings())
        else:
            mapping = None
        config = EvEdgeConfig(num_bins=10, dsfa=dsfa, optimization=level)
        report = EvEdgePipeline(network, platform, config, mapping=mapping).run(sequence)
        if baseline_latency is None:
            baseline_latency = report.mean_latency
        print(f"{level.value:18s} latency {report.mean_latency * 1e3:8.2f} ms"
              f"  energy {report.total_energy:7.2f} J"
              f"  inferences {report.num_inferences:4d}"
              f"  dropped {report.frames_dropped:3d}"
              f"  speedup {baseline_latency / report.mean_latency:5.2f}x")

    print()
    print("accuracy impact (surrogate flow estimator, AEE in pixels; lower is better):")
    evaluator = TaskAccuracyEvaluator("optical_flow", scale=0.2, num_intervals=4, seed=0)
    baseline_aee = evaluator.baseline()
    ev_edge_aee = evaluator.evaluate(
        [Precision.FP16, Precision.INT8, Precision.FP16], merge_factor=2
    )
    print(f"  baseline (FP32, no merging): AEE = {baseline_aee:.3f}")
    print(f"  Ev-Edge (mixed precision + DSFA merge): AEE = {ev_edge_aee:.3f}")
    print(f"  degradation: {evaluator.degradation([Precision.FP16, Precision.INT8, Precision.FP16], merge_factor=2):.2%}")


if __name__ == "__main__":
    main()
