#!/usr/bin/env python
"""Trace-calibrated firing fractions: measure → calibrate → re-cost.

Runs a profile-mode fleet over a DAG network (Spike-FlowNet: skip-connection
decoders, so graph-aware occupancy propagation actually matters), collects
the resolved per-layer occupancy profile of every dispatched inference from
the kernel trace, least-squares fits the per-layer firing fractions those
profiles imply, and re-costs the same traffic on the calibrated network.

Because the simulator's dispatches are themselves produced by the
propagation model, the fit recovers the configured fractions almost exactly
— the demo's point is the loop, which works unchanged when the recorded
profiles come from real hardware counters instead.

Run with:  python examples/occupancy_calibration.py
"""

from repro.core import EvEdgeConfig, OptimizationLevel
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.nn import estimate_firing_fractions, fit_firing_fractions
from repro.runtime import KernelTrace, MultiStreamSimulator, StreamSource


def main() -> None:
    platform = jetson_xavier_agx()
    network = build_network("spikeflownet", 128, 128)
    config = EvEdgeConfig(num_bins=6, optimization=OptimizationLevel.E2SF_DSFA)
    scenes = ("indoor_flying1", "outdoor_day1", "high_speed_disk")
    sources = [
        StreamSource(
            f"cam{i}",
            generate_sequence(scenes[i % len(scenes)], scale=0.1, duration=0.4, seed=7 + i),
            network,
            config,
            start_offset=0.001 * i,
        )
        for i in range(6)
    ]

    # 1. Measure: a profile-mode run records the resolved per-layer
    #    occupancy profile of every dispatched inference in the trace.
    trace = KernelTrace(max_events=50_000)
    report = MultiStreamSimulator(platform, sources, cost_mode="profile").run(trace=trace)
    profiles = trace.profiles()
    print(f"fleet: {len(sources)} streams, cost_mode={report.cost_mode}")
    print(f"recorded {len(profiles)} per-dispatch occupancy profiles")
    print()
    print("sample trace rows (profile column shows the occupancy cascade):")
    inference_rows = [
        line for line in trace.format_log(max_rows=6000).splitlines() if "occ[" in line
    ]
    print("\n".join(inference_rows[:6]))
    print()

    # 2. Calibrate: least-squares fit of per-layer firing fractions from
    #    the recorded profiles.
    result = estimate_firing_fractions(profiles, network)
    print(f"fitted {len(result.fractions)} firing fractions "
          f"from {result.num_profiles} profiles (residual {result.residual:.3e})")
    names = [n for n in network.layer_names() if network.layer(n).kind.is_compute]
    print("layer        configured  fitted")
    for name in names:
        configured = 1.0 - network.layer(name).activation_sparsity
        fitted = result.fractions.get(name)
        shown = f"{fitted:.4f}" if fitted is not None else "(source)"
        print(f"{name:12s}  {configured:.4f}      {shown}")
    print()

    # 3. Re-cost: the calibrated graph drops into the same cost stack.
    calibrated = fit_firing_fractions(trace, network)
    calibrated_sources = [
        StreamSource(s.name, s.sequence, calibrated, s.config, start_offset=s.start_offset)
        for s in sources
    ]
    recost = MultiStreamSimulator(platform, calibrated_sources, cost_mode="profile").run()
    print(f"original   : mean latency {report.mean_latency * 1e3:.3f} ms, "
          f"energy {report.total_energy:.3f} J")
    print(f"calibrated : mean latency {recost.mean_latency * 1e3:.3f} ms, "
          f"energy {recost.total_energy:.3f} J")


if __name__ == "__main__":
    main()
