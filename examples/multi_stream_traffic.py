#!/usr/bin/env python
"""Multi-stream traffic: many event-camera streams on one edge platform.

Multiplexes a heterogeneous mix of sensors/networks (optical flow, gesture
recognition, segmentation, depth) onto a single Jetson Xavier AGX model with
the event-driven traffic simulator, and compares three operating points:

* isolated      — every stream owns a whole platform (infeasible upper bound)
* shared        — one platform, per-PE contention, no cross-stream batching
* shared+batch  — one platform with cross-stream batching (the default)

Run with:  python examples/multi_stream_traffic.py
"""

import numpy as np

from repro.baselines import run_streams_isolated, run_streams_unbatched
from repro.experiments import ExperimentSettings, format_table, traffic_mix
from repro.hw import jetson_xavier_agx
from repro.runtime import KernelTrace, MultiStreamSimulator


def main() -> None:
    platform = jetson_xavier_agx()
    settings = ExperimentSettings(scale=0.2, duration=0.6, num_bins=8)
    # 192x192 networks load the platform enough that contention and
    # cross-stream batching become visible.
    sources = traffic_mix(8, settings=settings, network_resolution=(192, 192))
    print(f"platform: {platform.name}  streams: {len(sources)}")
    for source in sources:
        print(f"  {source.name:24s} seq={source.sequence.name:16s} "
              f"offset={source.start_offset * 1e3:5.1f} ms")
    print()

    isolated = run_streams_isolated(sources, platform)
    unbatched = run_streams_unbatched(sources, platform)
    trace = KernelTrace(max_events=50_000)
    shared = MultiStreamSimulator(platform, sources).run(trace=trace)

    iso_latency = float(np.mean([r.mean_latency for r in isolated.values()]))
    print("operating point     mean latency     throughput    dropped")
    print(f"isolated            {iso_latency * 1e3:9.3f} ms            (n/a)       0")
    for label, report in [("shared (no batch)", unbatched), ("shared + batching", shared)]:
        print(f"{label:18s}  {report.mean_latency * 1e3:9.3f} ms"
              f"  {report.throughput:9.1f} f/s  {report.frames_dropped:6d}")
    print()
    print("per-stream breakdown (shared + batching):")
    print(format_table(
        shared.per_stream_rows(),
        ["stream", "inferences", "mean_latency_ms", "frames_generated", "frames_dropped", "energy_j"],
    ))
    print()
    print(f"layer-cost cache: {shared.cache_info}")
    print()
    print("first kernel events:")
    print(trace.format_log(max_rows=12))


if __name__ == "__main__":
    main()
