#!/usr/bin/env python
"""Quickstart: convert events with E2SF, merge with DSFA, run the pipeline.

Generates a small MVSEC-like drone sequence, converts the raw event stream to
sparse frames, aggregates them dynamically and compares the all-GPU dense
baseline against the Ev-Edge pipeline on the Jetson Xavier AGX model.

Run with:  python examples/quickstart.py
"""

from repro.core import (
    DSFAConfig,
    DynamicSparseFrameAggregator,
    EvEdgeConfig,
    EvEdgePipeline,
    Event2SparseFrameConverter,
    OptimizationLevel,
)
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network


def main() -> None:
    # 1. A synthetic stand-in for the MVSEC indoor_flying1 recording.
    sequence = generate_sequence("indoor_flying1", scale=0.25, duration=1.0, seed=0)
    print(f"sequence: {sequence.name}  events: {len(sequence.events)}  "
          f"grayscale frames: {len(sequence.frames)}")

    # 2. E2SF: raw events -> per-bin two-channel sparse frames.
    converter = Event2SparseFrameConverter(num_bins=5)
    t0, t1 = sequence.frames[0].timestamp, sequence.frames[1].timestamp
    frames, report = converter.convert_with_report(sequence.events, t0, t1)
    print(f"E2SF: {report.num_events} events -> {len(frames)} sparse frames, "
          f"mean occupancy {converter.mean_occupancy(frames):.3%}, "
          f"{report.operation_saving:.1f}x fewer conversion operations than the dense path")

    # 3. DSFA: merge sparse frames while respecting time/density thresholds.
    aggregator = DynamicSparseFrameAggregator(DSFAConfig(event_buffer_size=4, merge_bucket_size=2))
    for frame in frames:
        aggregator.push(frame)
    batch = aggregator.flush()
    print(f"DSFA: merged {len(frames)} frames into a batch of {len(batch)} "
          f"({aggregator.merge_statistics()})")

    # 4. Full pipeline on the Jetson Xavier AGX model: baseline vs Ev-Edge.
    platform = jetson_xavier_agx()
    network = build_network("spikeflownet")
    baseline = EvEdgePipeline(
        network, platform, EvEdgeConfig(optimization=OptimizationLevel.BASELINE)
    ).run(sequence)
    ev_edge = EvEdgePipeline(
        network, platform, EvEdgeConfig(optimization=OptimizationLevel.E2SF_DSFA)
    ).run(sequence)
    print(f"all-GPU dense baseline: {baseline.mean_latency * 1e3:.2f} ms / inference, "
          f"{baseline.total_energy:.2f} J")
    print(f"Ev-Edge (E2SF + DSFA):  {ev_edge.mean_latency * 1e3:.2f} ms / inference, "
          f"{ev_edge.total_energy:.2f} J")
    print(f"speedup: {baseline.mean_latency / ev_edge.mean_latency:.2f}x, "
          f"energy gain: {baseline.total_energy / ev_edge.total_energy:.2f}x")


if __name__ == "__main__":
    main()
