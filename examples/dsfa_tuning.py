#!/usr/bin/env python
"""DSFA tuning study: thresholds, merge modes and static-aggregation baselines.

Sweeps the DSFA thresholds (MtTh, MdTh), bucket size and merge mode on a
bursty sequence and compares against the static count-based and fixed-interval
aggregation policies of prior work, showing how dynamic merging adapts the
number of inferences to the event density.

Run with:  python examples/dsfa_tuning.py
"""

from repro.baselines import CountBasedAggregator, FixedIntervalAggregator
from repro.core import (
    DSFAConfig,
    DynamicSparseFrameAggregator,
    EvEdgeConfig,
    EvEdgePipeline,
    Event2SparseFrameConverter,
    MergeMode,
    OptimizationLevel,
)
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network


def main() -> None:
    sequence = generate_sequence("indoor_flying2", scale=0.25, duration=1.5, seed=0)
    platform = jetson_xavier_agx()
    network = build_network("fusionflownet")
    print(f"sequence: {sequence.name}, {len(sequence.events)} events, "
          f"{sequence.num_intervals} frame intervals")

    print()
    print("static aggregation baselines (prior work):")
    count_frames = CountBasedAggregator(events_per_frame=3000).aggregate(sequence.events)
    interval_frames = FixedIntervalAggregator(interval=1 / 60).aggregate(sequence.events)
    print(f"  count-based (3000 events/frame): {len(count_frames)} frames")
    print(f"  fixed interval (60 Hz):          {len(interval_frames)} frames")

    print()
    print("DSFA sweep (bucket size x merge mode) on the Ev-Edge pipeline:")
    for mode in MergeMode:
        for bucket in (2, 4):
            config = EvEdgeConfig(
                num_bins=10,
                dsfa=DSFAConfig(
                    event_buffer_size=8,
                    merge_bucket_size=bucket,
                    max_time_delay=0.05,
                    max_density_change=0.5,
                    merge_mode=mode,
                ),
                optimization=OptimizationLevel.E2SF_DSFA,
            )
            report = EvEdgePipeline(network, platform, config).run(sequence)
            print(f"  mode={mode.value:8s} MBsize={bucket}  inferences={report.num_inferences:4d}"
                  f"  mean latency={report.mean_latency * 1e3:7.2f} ms"
                  f"  mean occupancy={report.mean_occupancy:.3%}")

    print()
    print("threshold sensitivity (MdTh) with cAdd, MBsize=4:")
    converter = Event2SparseFrameConverter(10)
    t0, t1 = sequence.frames[0].timestamp, sequence.frames[-1].timestamp
    frames = converter.convert(sequence.events, t0, t1)
    for mdth in (0.05, 0.2, 0.5, 1.0):
        aggregator = DynamicSparseFrameAggregator(
            DSFAConfig(event_buffer_size=8, merge_bucket_size=4, max_density_change=mdth)
        )
        for frame in frames:
            aggregator.push(frame)
        aggregator.flush()
        stats = aggregator.merge_statistics()
        print(f"  MdTh={mdth:4.2f}  dispatched batches={stats['dispatched_batches']}")


if __name__ == "__main__":
    main()
