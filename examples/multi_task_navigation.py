#!/usr/bin/env python
"""Multi-task study: concurrent perception stack for autonomous navigation.

An autonomous platform typically runs several event-vision networks at once
(optical flow + segmentation + tracking + depth).  This example builds the
paper's mixed SNN-ANN configuration, maps it onto the Jetson Xavier AGX with
the Network Mapper and compares against the round-robin baselines, printing a
Gantt view of where each layer executes (paper Figure 9 style).

Run with:  python examples/multi_task_navigation.py
"""

from repro.core import NMPConfig, NetworkMapper
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.nn import MultiTaskGraph, Precision, TaskSpec
from repro.runtime import (
    MappedExecutor,
    format_gantt,
    rr_layer_mapping,
    rr_network_mapping,
    utilisation,
)


def main() -> None:
    platform = jetson_xavier_agx()
    networks = ["fusionflownet", "halsie", "dotie", "e2depth"]
    graph = MultiTaskGraph([TaskSpec(build_network(name)) for name in networks])
    print(f"multi-task graph: {graph.task_names}, {len(graph.compute_nodes())} layers total")

    executor = MappedExecutor(graph, platform, occupancy=0.1)

    rr_net = executor.execute(
        rr_network_mapping(graph, platform, precision=Precision.FP16, devices=["gpu", "dla0"]),
        sparse=True,
    )
    rr_layer = executor.execute(
        rr_layer_mapping(graph, platform, precision=Precision.FP16, devices=["gpu", "dla0"]),
        sparse=True,
    )

    mapper = NetworkMapper(
        graph,
        platform,
        executor.profile,
        NMPConfig(population_size=24, generations=15, seed=0),
        initial_candidates=[rr_layer.mapping, rr_net.mapping],
    )
    nmp_result = mapper.run()
    nmp = executor.execute(nmp_result.best_candidate, sparse=True)

    print()
    print(f"RR-Network latency: {rr_net.latency * 1e3:8.2f} ms")
    print(f"RR-Layer latency:   {rr_layer.latency * 1e3:8.2f} ms")
    print(f"Ev-Edge NMP latency:{nmp.latency * 1e3:8.2f} ms "
          f"({rr_net.latency / nmp.latency:.2f}x vs RR-Network, "
          f"{rr_layer.latency / nmp.latency:.2f}x vs RR-Layer)")
    print(f"NMP search: {nmp_result.evaluations} evaluations, "
          f"{nmp_result.cache_hits} cache hits, convergence "
          f"{[round(v * 1e3, 2) for v in nmp_result.convergence[:8]]} ... ms")

    print()
    print("per-task latencies under the NMP mapping:")
    for task, latency in nmp.task_latencies.items():
        print(f"  {task:16s} {latency * 1e3:8.2f} ms")

    print()
    print("device utilisation under the NMP mapping:")
    for device, fraction in utilisation(nmp.schedule).items():
        print(f"  {device:16s} {fraction:6.1%}")

    print()
    print("execution timeline (first rows per device):")
    print(format_gantt(nmp.schedule, width=48, max_rows=6))


if __name__ == "__main__":
    main()
