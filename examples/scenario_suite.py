#!/usr/bin/env python
"""Scenario suite tour: declarative traffic regimes on one edge platform.

Lists the registered scenario families, simulates two contrasting regimes
(steady vs hotspot) with per-stream breakdowns, then runs the full
(scenario × policy) sweep twice through the cached parallel runner to show
the second pass completing without a single simulation.

Run with:  python examples/scenario_suite.py
"""

import tempfile

from repro.experiments import format_scenario_sweep, run_scenario_sweep
from repro.experiments.common import ExperimentSettings, format_table
from repro.hw import jetson_xavier_agx
from repro.runtime import MultiStreamSimulator
from repro.scenarios import default_registry


def main() -> None:
    registry = default_registry()
    print("registered scenarios:")
    for name in registry.names():
        print(f"  {registry.describe(name)}")
    print()

    platform = jetson_xavier_agx()
    for name in ("steady", "hotspot"):
        spec = registry.resolve(name, num_streams=6, duration=0.5, scale=0.15)
        report = MultiStreamSimulator(platform, registry.compile(spec)).run()
        print(
            f"-- {name}: {report.num_streams} streams, "
            f"throughput={report.throughput:.1f} f/s, "
            f"mean latency={report.mean_latency * 1e3:.3f} ms, "
            f"dropped={report.frames_dropped} --"
        )
        print(format_table(
            report.per_stream_rows(),
            ["stream", "inferences", "mean_latency_ms", "frames_dropped", "energy_j"],
        ))
        print()

    settings = ExperimentSettings(scale=0.12, duration=0.4, num_bins=5, num_streams=4)
    with tempfile.TemporaryDirectory() as cache_dir:
        print("=== full sweep, cold cache (2 workers) ===")
        cold = run_scenario_sweep(
            settings, policies=("batched", "unbatched"),
            workers=2, cache_dir=cache_dir,
        )
        print(format_scenario_sweep(cold))
        print()
        print("=== identical sweep, warm cache ===")
        warm = run_scenario_sweep(
            settings, policies=("batched", "unbatched"),
            workers=2, cache_dir=cache_dir,
        )
        print(
            f"simulated={warm['simulated']}  from_cache={warm['from_cache']}  "
            f"elapsed={warm['elapsed_s']:.3f}s (cold pass: {cold['elapsed_s']:.2f}s)"
        )


if __name__ == "__main__":
    main()
