"""Benchmark: Figure 8 + energy — single-task speedup over the all-GPU baseline."""

from repro.experiments import format_fig8, run_fig8
from repro.metrics import geometric_mean


def test_fig8_single_task(benchmark, settings):
    rows = benchmark.pedantic(run_fig8, args=(settings,), iterations=1, rounds=1)
    print("\n=== Figure 8: single-task latency speedup over all-GPU (per optimization level) ===")
    print(format_fig8(rows))
    speedups = {r["network"]: r["ev_edge_speedup"] for r in rows}
    energies = {r["network"]: r["ev_edge_energy_gain"] for r in rows}
    # Every network benefits from the full Ev-Edge configuration (the paper
    # reports 1.28x-2.05x; the analytic platform model gives larger factors
    # but the same ordering).
    for network, speedup in speedups.items():
        assert speedup > 1.0, f"{network} did not speed up"
    for network, gain in energies.items():
        assert gain > 1.0, f"{network} did not save energy"
    # SNN-heavy networks gain more than the ANN depth network (paper: SNNs
    # achieve the highest improvements).
    assert speedups["adaptive_spikenet"] > speedups["e2depth"] or speedups["dotie"] > speedups["e2depth"]
    print(f"geomean Ev-Edge speedup: {geometric_mean(list(speedups.values())):.2f}x")
    print(f"geomean Ev-Edge energy gain: {geometric_mean(list(energies.values())):.2f}x")
