"""Benchmark: single-task energy improvement over the all-GPU baseline.

The paper reports 1.23x-2.15x energy efficiency gains alongside the Figure 8
latency results; this bench isolates the energy column on a lighter subset of
networks so it runs quickly.
"""

from repro.experiments import format_fig8, run_fig8


def test_energy_single_task(benchmark, settings):
    rows = benchmark.pedantic(
        run_fig8,
        args=(settings,),
        kwargs={"networks": ["spikeflownet", "halsie", "dotie"]},
        iterations=1,
        rounds=1,
    )
    print("\n=== Energy: single-task energy gain over all-GPU ===")
    print(format_fig8(rows))
    for row in rows:
        assert row["ev_edge_energy_gain"] > 1.0
        # Energy and latency improvements move together.
        assert row["ev_edge_speedup"] > 1.0
