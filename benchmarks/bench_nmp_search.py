"""Benchmark: NMP search engine — scheduler flattening speedup and strategy race.

Two measurements on the Figure-10 ``mixed_snn_ann`` workload:

1. **Candidate-evaluations/sec** of the flattened incremental scheduler vs
   the pre-refactor graph-walking scheduler (kept as
   ``ExecutionScheduler.schedule_reference``).  The refactor's acceptance
   bar is >= 2x.
2. **Time-to-target-fitness** per strategy: how many requested evaluations
   each search strategy spends before first reaching within 5% of the best
   fitness any strategy finds under the shared budget.
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import write_bench_json
from repro.core import FitnessEvaluator, MappingCandidate, NMPConfig
from repro.experiments import run_fig10
from repro.experiments.fig9_multi_task import MULTI_TASK_CONFIGS
from repro.hw import PlatformProfiler, jetson_xavier_agx
from repro.models import build_network
from repro.nn import MultiTaskGraph, TaskSpec


def _mixed_graph(settings):
    return MultiTaskGraph(
        [
            TaskSpec(build_network(name, *settings.network_resolution))
            for name in MULTI_TASK_CONFIGS["mixed_snn_ann"]
        ]
    )


def _evaluations_per_second(evaluator, candidates) -> float:
    start = time.perf_counter()
    for candidate in candidates:
        evaluator.evaluate(candidate)
    elapsed = time.perf_counter() - start
    return len(candidates) / elapsed


def test_nmp_flattened_scheduler_speedup(settings):
    """Flattened scheduling must be >= 2x faster than the reference walker."""
    platform = jetson_xavier_agx()
    graph = _mixed_graph(settings)
    profile = PlatformProfiler(platform).profile(graph, occupancy=0.1)
    rng = np.random.default_rng(0)
    candidates = [MappingCandidate.random(graph, platform, rng) for _ in range(150)]

    flat = FitnessEvaluator(graph, platform, profile)
    reference = FitnessEvaluator(graph, platform, profile, use_flat_scheduler=False)
    # Warm up both paths (flat builds its arrays once; both touch caches).
    flat.evaluate(candidates[0])
    reference.evaluate(candidates[0])
    # Distinct candidates: every evaluation runs the scheduler, no cache hits.
    flat_rate = _evaluations_per_second(flat, candidates[1:])
    reference_rate = _evaluations_per_second(reference, candidates[1:])
    speedup = flat_rate / reference_rate

    print("\n=== NMP search: candidate-evaluations/sec (fig10 mixed_snn_ann) ===")
    print(f"flattened scheduler: {flat_rate:10.0f} eval/s")
    print(f"reference scheduler: {reference_rate:10.0f} eval/s")
    print(f"speedup:             {speedup:10.2f}x")

    # Both paths must agree bit-for-bit before the speedup means anything.
    for candidate in candidates[:20]:
        assert flat.evaluate(candidate).fitness == reference.evaluate(candidate).fitness
    assert speedup >= 2.0
    write_bench_json(
        "nmp_scheduler",
        [
            {
                "flat_eval_per_s": flat_rate,
                "reference_eval_per_s": reference_rate,
                "speedup": speedup,
            }
        ],
        meta={"candidates": len(candidates) - 1},
    )


def test_nmp_strategy_time_to_target(settings, benchmark):
    """Race the four strategies to within 5% of the best fitness found."""
    config = NMPConfig(population_size=20, generations=15, seed=settings.seed)
    result = benchmark.pedantic(
        run_fig10, args=(settings,), kwargs={"nmp_config": config}, iterations=1, rounds=1
    )
    strategies = result["strategies"]
    target = 1.05 * min(stats["fitness"] for stats in strategies.values())

    print("\n=== NMP search: time-to-target-fitness (5% of best) ===")
    print(f"{'strategy':14s} {'best_ms':>9s} {'evals':>7s} {'to-target':>10s}")
    strategy_rows = []
    for name, stats in strategies.items():
        convergence = stats["convergence"]
        per_generation = stats["requested_evaluations"] / max(len(convergence), 1)
        to_target = next(
            (
                int((i + 1) * per_generation)
                for i, fitness in enumerate(convergence)
                if fitness <= target
            ),
            None,
        )
        print(
            f"{name:14s} {stats['latency_ms']:9.3f} {stats['requested_evaluations']:7d} "
            f"{to_target if to_target is not None else '-':>10}"
        )
        strategy_rows.append(
            {
                "strategy": name,
                "best_latency_ms": stats["latency_ms"],
                "requested_evaluations": stats["requested_evaluations"],
                "evals_to_target": to_target,
            }
        )
    write_bench_json(
        "nmp_strategy_race",
        strategy_rows,
        meta={"evaluation_budget": result["evaluation_budget"]},
    )

    # Every strategy spends (at most) the shared budget.
    budget = result["evaluation_budget"]
    for stats in strategies.values():
        assert stats["requested_evaluations"] <= budget
    # The evolutionary strategy beats random search under the equal budget.
    assert result["evolutionary_vs_random_speedup"] >= 1.0
    # The refactored evolutionary search still converges (Figure 10a shape).
    convergence = result["evolutionary_convergence"]
    assert all(b <= a + 1e-12 for a, b in zip(convergence, convergence[1:]))
    assert convergence[-1] < convergence[0]
