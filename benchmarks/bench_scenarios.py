"""Benchmark: scenario sweep wall-clock — serial vs workers vs warm cache.

Runs a 12-cell (scenario × platform × policy) grid three ways:

* **serial** — one process, no cache;
* **parallel** — a 4-worker ``multiprocessing`` pool, cold cache (this is
  the benchmarked path);
* **cached** — the identical grid again against the now-warm cache, which
  must complete with *zero* simulations.

On a ≥4-core machine the parallel run must beat serial by ≥2x; on smaller
machines (CI containers are often 1-2 cores) the pool path is still
exercised and the measured ratio is reported, but the speedup assertion is
skipped — a fork pool cannot conjure cores.
"""

import os

from bench_utils import write_bench_json
from repro.experiments import format_table
from repro.scenarios import SweepRunner, sweep_grid

GRID_SCENARIOS = ("steady", "bursty", "hotspot")
GRID_PLATFORMS = ("xavier_agx", "orin_nano")
GRID_POLICIES = ("batched", "unbatched")
WORKERS = 4


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _grid(settings):
    return sweep_grid(
        GRID_SCENARIOS,
        platforms=GRID_PLATFORMS,
        policies=GRID_POLICIES,
        num_streams=4,
        duration=settings.duration,
        scale=settings.scale,
        num_bins=settings.num_bins,
        seed=settings.seed,
    )


def _comparable(rows):
    """Result rows minus cache/bookkeeping fields, for equality checks."""
    return [
        {k: v for k, v in row.items() if k not in ("from_cache",)} for row in rows
    ]


def test_scenario_sweep_parallel_and_cached(benchmark, settings, tmp_path):
    cells = _grid(settings)
    assert len(cells) >= 12

    # Warm the memoized sequence/network compiles before timing anything:
    # fork-based pool workers inherit the parent's lru_caches, so timing a
    # cold serial pass against warm-cached workers would fake a speedup.
    from repro.scenarios import default_registry

    for cell in cells:
        default_registry().compile(cell.scenario)

    serial_runner = SweepRunner(cache_dir=None, workers=1)
    serial = serial_runner.run(cells)
    assert serial.simulated == len(cells)

    cache_dir = tmp_path / "sweep-cache"
    parallel_runner = SweepRunner(cache_dir=cache_dir, workers=WORKERS)
    parallel = benchmark.pedantic(
        parallel_runner.run,
        args=(cells,),
        kwargs={"force": True},
        iterations=1,
        rounds=1,
    )
    assert parallel.simulated == len(cells)
    # The pool must reproduce the serial results bit-for-bit: per-cell seeds
    # derive from the spec content, not from process state.
    assert _comparable(parallel.rows) == _comparable(serial.rows)

    cached = parallel_runner.run(cells)
    assert cached.simulated == 0
    assert cached.from_cache == len(cells)
    assert _comparable(cached.rows) == _comparable(serial.rows)
    assert cached.elapsed_s < parallel.elapsed_s

    speedup = serial.elapsed_s / max(parallel.elapsed_s, 1e-9)
    cores = _available_cores()
    mode_rows = [
        {"mode": "serial", "workers": 1, "elapsed_s": serial.elapsed_s,
         "simulated": serial.simulated, "from_cache": serial.from_cache},
        {"mode": "parallel", "workers": WORKERS, "elapsed_s": parallel.elapsed_s,
         "simulated": parallel.simulated, "from_cache": parallel.from_cache},
        {"mode": "cached", "workers": WORKERS, "elapsed_s": cached.elapsed_s,
         "simulated": cached.simulated, "from_cache": cached.from_cache},
    ]
    print("\n=== Scenario sweep: serial vs parallel vs cached ===")
    print(
        format_table(
            mode_rows,
            ["mode", "workers", "elapsed_s", "simulated", "from_cache"],
        )
    )
    print(f"cells={len(cells)}  cores={cores}  parallel speedup={speedup:.2f}x")
    write_bench_json(
        "scenarios",
        mode_rows,
        meta={"cells": len(cells), "cores": cores, "parallel_speedup": speedup},
    )
    if cores >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup with {WORKERS} workers on {cores} cores, "
            f"got {speedup:.2f}x"
        )
