"""Shared settings for the benchmark harness.

The benchmarks regenerate every figure/table of the paper's evaluation at a
reduced spatial scale and duration so the whole suite completes in a few
minutes; pass ``--full-scale`` to run at the paper's full DAVIS resolution.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSettings


def pytest_addoption(parser):
    parser.addoption(
        "--full-scale",
        action="store_true",
        default=False,
        help="run the benchmarks at full DAVIS 346x260 scale (slow)",
    )


@pytest.fixture(scope="session")
def settings(request) -> ExperimentSettings:
    if request.config.getoption("--full-scale"):
        return ExperimentSettings(scale=1.0, duration=2.0, num_bins=10)
    return ExperimentSettings(scale=0.2, duration=0.7, num_bins=10)
