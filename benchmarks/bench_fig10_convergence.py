"""Benchmark: Figure 10 — NMP convergence and evolutionary vs random search."""

from repro.experiments import format_fig10, run_fig10


def test_fig10_convergence(benchmark, settings):
    result = benchmark.pedantic(run_fig10, args=(settings,), iterations=1, rounds=1)
    print("\n=== Figure 10: NMP evolutionary search convergence and random-search comparison ===")
    print(format_fig10(result))
    convergence = result["evolutionary_convergence"]
    # (a) fitness is non-increasing over generations and actually improves.
    assert all(b <= a + 1e-12 for a, b in zip(convergence, convergence[1:]))
    assert convergence[-1] < convergence[0]
    # (b) the evolutionary search result is at least as good as random search
    # for the same evaluation budget (paper: 1.42x better).
    assert result["evolutionary_vs_random_speedup"] >= 1.0
    # Fitness caching kicked in (the paper's search-cost optimisation).
    assert result["evolutionary_cache_hits"] > 0
