"""Shared helpers for the benchmark scripts.

Every benchmark prints a human-readable table *and* persists the same rows
as a machine-readable ``BENCH_<name>.json`` next to the repo root, so the
perf trajectory (events/sec per tier, cache hit-rates, sweep wall-clocks)
is tracked in-repo across PRs instead of living only in CI logs.
"""

from __future__ import annotations

import json
import os
import sys
from datetime import datetime, timezone
from typing import Dict, List, Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

__all__ = ["peak_rss_bytes", "write_bench_json"]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process in bytes (None if unknown).

    ``getrusage`` reports ``ru_maxrss`` in KiB on Linux and bytes on macOS;
    normalised here so the ``BENCH_*.json`` trajectories are comparable.
    Note the value is process-lifetime monotone — it tells you how much
    memory the benchmark run needed *so far*, not the footprint of one
    section; use ``tracemalloc`` for per-section allocation comparisons.
    """
    if resource is None:
        return None
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(maxrss)
    return int(maxrss) * 1024


def write_bench_json(
    name: str,
    rows: List[Dict[str, object]],
    meta: Optional[Dict[str, object]] = None,
    section: Optional[str] = None,
) -> str:
    """Write benchmark rows to ``BENCH_<name>.json`` and return the path.

    The output directory defaults to the repo root (where the files are
    committed) and can be redirected with ``BENCH_JSON_DIR`` — CI smoke
    jobs point it at a scratch dir so partial smoke-tier rows never
    overwrite the checked-in full-tier trajectories.

    Every row is stamped with the process's peak RSS at write time
    (:func:`peak_rss_bytes`), so the trajectories track memory alongside
    throughput; rows that already carry a ``peak_rss_bytes`` key (e.g. one
    sampled mid-benchmark) keep their own value.

    ``section`` lets several benchmark functions share one trajectory
    file: each row is tagged ``{"section": section}``, rows of *other*
    sections already in the file are kept, and ``meta`` is stored under
    ``meta[section]`` — so e.g. the scaling and memory-attribution tiers
    of the kernel benchmark land in the same ``BENCH_kernel_scaling.json``
    no matter which test ran last (or ran at all, in a smoke job).
    Without ``section`` the whole file is overwritten as before.
    """
    out_dir = os.environ.get("BENCH_JSON_DIR") or _REPO_ROOT
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    rss = peak_rss_bytes()
    rows = [
        row if "peak_rss_bytes" in row else {**row, "peak_rss_bytes": rss}
        for row in rows
    ]
    merged_meta: Dict[str, object] = {}
    if section is not None:
        rows = [{"section": section, **row} for row in rows]
        kept: List[Dict[str, object]] = []
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    existing = json.load(fh)
                # Untagged rows are the pre-section schema: superseded
                # wholesale, like the flat meta dict below.
                kept = [
                    row
                    for row in existing.get("rows", [])
                    if row.get("section") not in (None, section)
                ]
                prior_meta = existing.get("meta", {})
                # Only section-keyed meta survives a merge: a flat meta dict
                # from the pre-section schema describes rows being replaced.
                if isinstance(prior_meta, dict) and all(
                    isinstance(v, dict) for v in prior_meta.values()
                ):
                    merged_meta.update(prior_meta)
            except (ValueError, OSError):
                kept = []
        rows = kept + rows
        merged_meta[section] = meta or {}
    else:
        merged_meta = meta or {}
    payload = {
        "benchmark": name,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "meta": merged_meta,
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
        fh.write("\n")
    return path
