"""Benchmark: columnar COO data plane — render, merge and fleet throughput.

Three sections, all measured against the per-frame oracle paths the data
plane keeps alive (the :mod:`repro.runtime.legacy` pattern):

* **render** — events-rendered/sec of the one-pass
  :meth:`~repro.core.e2sf.Event2SparseFrameConverter.convert_stack`
  (single sort/group pass over the whole recording, zero-copy
  :class:`~repro.frames.stack.FrameStack` views) vs the per-interval ×
  per-bin :meth:`~repro.core.e2sf.Event2SparseFrameConverter.
  convert_sequence` loop.  Tiers are total event bins per recording; the
  ≥ 3x acceptance gate is asserted at the 1024-bin tier.
* **merge** — frames-merged/sec of the segmented
  :meth:`~repro.frames.stack.FrameStack.merge_groups` dispatch kernel
  (all buckets reduced in one grouped pass) vs one
  :meth:`~repro.frames.sparse.SparseFrame.add_reference`
  (``np.unique`` + ``bincount`` round trip) per bucket.  Tiers are bucket
  counts per dispatch batch, in the paper's sparse regime (~0.6 %
  occupancy, merge buckets of 4); the ≥ 2x cAdd gate is asserted at the
  512-bucket tier.  cAverage is reported alongside without a gate.
* **fleet** — end-to-end events/sec of a seeded ``mixed_fleet`` DSFA
  scenario run through ``MultiStreamSimulator`` on the ``"stack"`` data
  plane (columnar ``(stack, index)`` transport, index-range merge buckets,
  stack-backed batches) vs the ``"reference"`` per-frame oracle transport
  driving :class:`~repro.runtime.legacy.ReferenceAggregator`.  Rendering
  is pre-cached outside the timed region on both sides, so the tier
  isolates the runtime transport.  Tiers are stream counts; the ≥ 2x gate
  is asserted at the 256-stream tier, along with a tracemalloc
  peak-allocation gate (the stack transport must not allocate more than
  the per-frame oracle at peak).

Every timed cell first asserts the fast path is bit-identical to its
oracle — a benchmark of a wrong kernel is worthless.  All sections write
into one committed ``BENCH_dataplane.json`` (rows tagged by section).

Environment knobs (used by the CI smoke job):

* ``DATAPLANE_RENDER_TIERS`` — comma-separated total-bin tiers (default
  ``256,1024``).  CI runs the smallest tiers only, which skips the gates.
* ``DATAPLANE_MERGE_TIERS`` — comma-separated bucket-count tiers (default
  ``128,512``).
* ``DATAPLANE_FLEET_TIERS`` — comma-separated stream-count tiers (default
  ``64,256``).
* ``DATAPLANE_REPEATS`` — timing repeats per cell (default 5).

All numbers are pure numpy: numba, when installed, accelerates the inner
reduction (see :mod:`repro.frames._jit`) but the gates hold without it.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

import tracemalloc

from bench_utils import write_bench_json
from repro.core import Event2SparseFrameConverter
from repro.events import EventStream, SensorGeometry
from repro.experiments import format_table
from repro.frames import HAS_NUMBA, FrameStack, SparseFrame
from repro.hw import jetson_xavier_agx
from repro.runtime import MultiStreamSimulator
from repro.scenarios import default_registry


def _tiers(env_var: str, default: str):
    return tuple(
        int(tier)
        for tier in os.environ.get(env_var, default).split(",")
        if tier.strip()
    )


RENDER_TIERS = _tiers("DATAPLANE_RENDER_TIERS", "256,1024")
MERGE_TIERS = _tiers("DATAPLANE_MERGE_TIERS", "128,512")
REPEATS = int(os.environ.get("DATAPLANE_REPEATS", "5"))

NUM_BINS = 4  # E2SF bins per grayscale interval
RENDER_GATE_TIER = 1024  # total bins
RENDER_GATE = 3.0
RENDER_EVENTS = 100_000
RENDER_GEOMETRY = (128, 128)  # (height, width)

MERGE_GATE_TIER = 512  # buckets per dispatch batch
MERGE_GATE = 2.0
MERGE_BUCKET_FRAMES = 4  # MBsize
MERGE_NNZ = 30  # active sites per frame: ~0.6 % of an 80x60 frame
MERGE_GEOMETRY = (60, 80)

FLEET_TIERS = _tiers("DATAPLANE_FLEET_TIERS", "64,256")
FLEET_GATE_TIER = 256  # streams
FLEET_GATE = 2.0
FLEET_SCENARIO = dict(duration=0.25, scale=0.1, num_bins=8, seed=42)


def _best(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _frames_bit_identical(a: SparseFrame, b: SparseFrame) -> bool:
    return (
        (a.height, a.width) == (b.height, b.width)
        and a.t_start == b.t_start
        and a.t_end == b.t_end
        and np.array_equal(a.rows, b.rows)
        and np.array_equal(a.cols, b.cols)
        and np.array_equal(a.pos, b.pos)
        and np.array_equal(a.neg, b.neg)
    )


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _render_workload(total_bins: int, seed: int = 0):
    height, width = RENDER_GEOMETRY
    geometry = SensorGeometry(width=width, height=height)
    rng = np.random.default_rng(seed)
    n = RENDER_EVENTS
    stream = EventStream(
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        np.sort(rng.uniform(0.0, 2.0, n)),
        rng.choice([-1, 1], n),
        geometry,
    )
    num_intervals = total_bins // NUM_BINS
    timestamps = np.linspace(0.0, 2.0, num_intervals + 1)
    return stream, timestamps


def _merge_workload(num_buckets: int, seed: int = 1):
    height, width = MERGE_GEOMETRY
    rng = np.random.default_rng(seed)
    frames = []
    for i in range(num_buckets * MERGE_BUCKET_FRAMES):
        nnz = int(rng.integers(max(1, MERGE_NNZ // 2), MERGE_NNZ + 1))
        flat = rng.choice(height * width, size=nnz, replace=False)
        frames.append(
            SparseFrame(
                (flat // width).astype(np.int32),
                (flat % width).astype(np.int32),
                rng.integers(0, 5, nnz).astype(np.float64),
                rng.integers(0, 5, nnz).astype(np.float64),
                height,
                width,
                i * 0.001,
                (i + 1) * 0.001,
            )
        )
    return [
        frames[i * MERGE_BUCKET_FRAMES : (i + 1) * MERGE_BUCKET_FRAMES]
        for i in range(num_buckets)
    ]


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------
def _render_rows(benchmark):
    converter = Event2SparseFrameConverter(NUM_BINS)
    rows = []
    for total_bins in RENDER_TIERS:
        stream, timestamps = _render_workload(total_bins)
        stack = converter.convert_stack(stream, timestamps)
        oracle = [
            f
            for interval in converter.convert_sequence(stream, list(timestamps))
            for f in interval
        ]
        assert len(stack) == len(oracle) == total_bins
        assert all(
            _frames_bit_identical(view, ref)
            for view, ref in zip(stack.frames(), oracle)
        ), f"render tier {total_bins}: stack path diverged from the oracle"

        if total_bins == max(RENDER_TIERS):
            benchmark.pedantic(
                lambda: converter.convert_stack(stream, timestamps),
                iterations=1,
                rounds=1,
            )
        t_stack = _best(lambda: converter.convert_stack(stream, timestamps))
        t_oracle = _best(
            lambda: converter.convert_sequence(stream, list(timestamps))
        )
        rows.append(
            {
                "section": "render",
                "tier": total_bins,
                "events": len(stream),
                "stack_ev_per_s": len(stream) / t_stack,
                "oracle_ev_per_s": len(stream) / t_oracle,
                "speedup": t_oracle / t_stack,
            }
        )
    return rows


def _merge_rows():
    rows = []
    for num_buckets in MERGE_TIERS:
        groups = _merge_workload(num_buckets)
        for frame in (f for group in groups for f in group):
            frame.flat_keys()  # warm the key caches (stack views carry them)
        num_frames = num_buckets * MERGE_BUCKET_FRAMES

        merged = FrameStack.merge_groups(groups)
        reference = [SparseFrame.add_reference(group) for group in groups]
        assert all(
            _frames_bit_identical(view, ref)
            for view, ref in zip(merged.frames(), reference)
        ), f"merge tier {num_buckets}: segmented kernel diverged from the oracle"
        averaged = FrameStack.merge_groups(groups, average=True)
        assert all(
            _frames_bit_identical(view, SparseFrame.average(group))
            for view, group in zip(averaged.frames(), groups)
        )

        t_segmented = _best(lambda: FrameStack.merge_groups(groups))
        t_oracle = _best(
            lambda: [SparseFrame.add_reference(group) for group in groups]
        )
        t_average = _best(lambda: FrameStack.merge_groups(groups, average=True))
        rows.append(
            {
                "section": "merge",
                "tier": num_buckets,
                "frames": num_frames,
                "cadd_frames_per_s": num_frames / t_segmented,
                "oracle_frames_per_s": num_frames / t_oracle,
                "caverage_frames_per_s": num_frames / t_average,
                "cadd_speedup": t_oracle / t_segmented,
            }
        )
    return rows


def _fleet_aggregates(report):
    return (
        report.num_streams,
        report.total_inferences,
        report.frames_generated,
        report.frames_dropped,
        report.total_energy,
        report.makespan,
        report.mean_latency,
        report.throughput,
    )


def _fleet_rows():
    registry = default_registry()
    platform = jetson_xavier_agx()
    rows = []
    for num_streams in FLEET_TIERS:
        overrides = dict(num_streams=num_streams, **FLEET_SCENARIO)
        # One source list per data plane (sources cache their rendered
        # stacks, and the reference transport additionally materialises the
        # per-frame view); rendering happens here, outside the timed region,
        # so the tier isolates the runtime transport.
        per_plane = {}
        for dataplane in ("stack", "reference"):
            sources = registry.compile("mixed_fleet", **overrides)
            for source in sources:
                source.generate_stack()
                if dataplane == "reference":
                    source.generate_frames()
            per_plane[dataplane] = sources

        def run(dataplane):
            return MultiStreamSimulator(
                platform, per_plane[dataplane], dataplane=dataplane
            ).run()

        stack_report = run("stack")
        oracle_report = run("reference")
        assert _fleet_aggregates(stack_report) == _fleet_aggregates(oracle_report), (
            f"fleet tier {num_streams}: stack transport diverged from the oracle"
        )
        events = stack_report.events_processed

        # Interleave the two planes' timing rounds: background load that
        # drifts over the measurement window then biases both baselines
        # equally instead of landing on whichever ran second.
        t_stack = t_oracle = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            run("stack")
            t_stack = min(t_stack, time.perf_counter() - start)
            start = time.perf_counter()
            run("reference")
            t_oracle = min(t_oracle, time.perf_counter() - start)

        # Peak-allocation comparison in a separate untimed pass: tracemalloc
        # slows execution, and getrusage's ru_maxrss is process-monotone so
        # it cannot compare two sections within one process.  Collecting
        # before each pass pins the GC phase, which otherwise shifts the
        # measured peak by a few percent between passes.
        peaks = {}
        for dataplane in ("stack", "reference"):
            gc.collect()
            tracemalloc.start()
            run(dataplane)
            _, peaks[dataplane] = tracemalloc.get_traced_memory()
            tracemalloc.stop()

        rows.append(
            {
                "section": "fleet",
                "tier": num_streams,
                "events": events,
                "stack_ev_per_s": events / t_stack,
                "oracle_ev_per_s": events / t_oracle,
                "speedup": t_oracle / t_stack,
                "stack_peak_alloc_bytes": peaks["stack"],
                "oracle_peak_alloc_bytes": peaks["reference"],
                "peak_alloc_ratio": peaks["stack"] / peaks["reference"],
            }
        )
    return rows


def test_dataplane_throughput(benchmark):
    render_rows = _render_rows(benchmark)
    merge_rows = _merge_rows()
    fleet_rows = _fleet_rows()

    print("\n=== Columnar render: events-rendered/sec (convert_stack vs loop) ===")
    print(
        format_table(
            render_rows,
            ["tier", "events", "stack_ev_per_s", "oracle_ev_per_s", "speedup"],
        )
    )
    print("\n=== DSFA merge: frames-merged/sec (merge_groups vs per-bucket) ===")
    print(
        format_table(
            merge_rows,
            [
                "tier",
                "frames",
                "cadd_frames_per_s",
                "oracle_frames_per_s",
                "caverage_frames_per_s",
                "cadd_speedup",
            ],
        )
    )

    print("\n=== Fleet: end-to-end events/sec (stack vs reference dataplane) ===")
    print(
        format_table(
            fleet_rows,
            [
                "tier",
                "events",
                "stack_ev_per_s",
                "oracle_ev_per_s",
                "speedup",
                "peak_alloc_ratio",
            ],
        )
    )

    for row in render_rows:
        assert row["stack_ev_per_s"] > 0
    for row in merge_rows:
        assert row["cadd_frames_per_s"] > 0
    for row in fleet_rows:
        assert row["stack_ev_per_s"] > 0

    # Acceptance gates, asserted only when the gate tier actually ran (the
    # CI smoke job runs reduced tiers and skips them).
    render_gate = next(
        (r["speedup"] for r in render_rows if r["tier"] == RENDER_GATE_TIER), None
    )
    if render_gate is not None:
        print(f"1024-bin render speedup: {render_gate:.2f}x (gate: >= {RENDER_GATE}x)")
        assert render_gate >= RENDER_GATE, (
            f"render@{RENDER_GATE_TIER} bins: {render_gate:.2f}x < {RENDER_GATE}x"
        )
    merge_gate = next(
        (r["cadd_speedup"] for r in merge_rows if r["tier"] == MERGE_GATE_TIER), None
    )
    if merge_gate is not None:
        print(f"512-bucket cAdd speedup: {merge_gate:.2f}x (gate: >= {MERGE_GATE}x)")
        assert merge_gate >= MERGE_GATE, (
            f"merge@{MERGE_GATE_TIER} buckets: {merge_gate:.2f}x < {MERGE_GATE}x"
        )
    fleet_gate_row = next(
        (r for r in fleet_rows if r["tier"] == FLEET_GATE_TIER), None
    )
    if fleet_gate_row is not None:
        fleet_gate = fleet_gate_row["speedup"]
        alloc_ratio = fleet_gate_row["peak_alloc_ratio"]
        print(
            f"256-stream fleet speedup: {fleet_gate:.2f}x (gate: >= {FLEET_GATE}x), "
            f"peak-alloc ratio: {alloc_ratio:.2f} (gate: <= 1.0)"
        )
        assert fleet_gate >= FLEET_GATE, (
            f"fleet@{FLEET_GATE_TIER} streams: {fleet_gate:.2f}x < {FLEET_GATE}x"
        )
        assert alloc_ratio <= 1.0, (
            f"fleet@{FLEET_GATE_TIER} streams: stack transport peaked at "
            f"{alloc_ratio:.2f}x the oracle's allocations"
        )

    write_bench_json(
        "dataplane",
        render_rows + merge_rows + fleet_rows,
        meta={
            "render_tiers": list(RENDER_TIERS),
            "merge_tiers": list(MERGE_TIERS),
            "fleet_tiers": list(FLEET_TIERS),
            "repeats": REPEATS,
            "num_bins": NUM_BINS,
            "render_events": RENDER_EVENTS,
            "render_geometry": list(RENDER_GEOMETRY),
            "merge_bucket_frames": MERGE_BUCKET_FRAMES,
            "merge_nnz_per_frame": MERGE_NNZ,
            "merge_geometry": list(MERGE_GEOMETRY),
            "render_gate": {"tier": RENDER_GATE_TIER, "min_speedup": RENDER_GATE},
            "merge_gate": {"tier": MERGE_GATE_TIER, "min_speedup": MERGE_GATE},
            "fleet_gate": {
                "tier": FLEET_GATE_TIER,
                "min_speedup": FLEET_GATE,
                "max_peak_alloc_ratio": 1.0,
            },
            "fleet_scenario": dict(FLEET_SCENARIO),
            "has_numba": HAS_NUMBA,
        },
    )
