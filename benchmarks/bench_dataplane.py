"""Benchmark: columnar COO data plane — render and DSFA-merge throughput.

Two sections, both measured against the per-frame oracle paths this PR
keeps alive (the :mod:`repro.runtime.legacy` pattern):

* **render** — events-rendered/sec of the one-pass
  :meth:`~repro.core.e2sf.Event2SparseFrameConverter.convert_stack`
  (single sort/group pass over the whole recording, zero-copy
  :class:`~repro.frames.stack.FrameStack` views) vs the per-interval ×
  per-bin :meth:`~repro.core.e2sf.Event2SparseFrameConverter.
  convert_sequence` loop.  Tiers are total event bins per recording; the
  ≥ 3x acceptance gate is asserted at the 1024-bin tier.
* **merge** — frames-merged/sec of the segmented
  :meth:`~repro.frames.stack.FrameStack.merge_groups` dispatch kernel
  (all buckets reduced in one grouped pass) vs one
  :meth:`~repro.frames.sparse.SparseFrame.add_reference`
  (``np.unique`` + ``bincount`` round trip) per bucket.  Tiers are bucket
  counts per dispatch batch, in the paper's sparse regime (~0.6 %
  occupancy, merge buckets of 4); the ≥ 2x cAdd gate is asserted at the
  512-bucket tier.  cAverage is reported alongside without a gate.

Every timed cell first asserts the fast path is bit-identical to its
oracle — a benchmark of a wrong kernel is worthless.  Both sections write
into one committed ``BENCH_dataplane.json`` (rows tagged by section).

Environment knobs (used by the CI smoke job):

* ``DATAPLANE_RENDER_TIERS`` — comma-separated total-bin tiers (default
  ``256,1024``).  CI runs the smallest tiers only, which skips the gates.
* ``DATAPLANE_MERGE_TIERS`` — comma-separated bucket-count tiers (default
  ``128,512``).
* ``DATAPLANE_REPEATS`` — timing repeats per cell (default 5).

All numbers are pure numpy: numba, when installed, accelerates the inner
reduction (see :mod:`repro.frames._jit`) but the gates hold without it.
"""

from __future__ import annotations

import os
import time

import numpy as np

from bench_utils import write_bench_json
from repro.core import Event2SparseFrameConverter
from repro.events import EventStream, SensorGeometry
from repro.experiments import format_table
from repro.frames import HAS_NUMBA, FrameStack, SparseFrame


def _tiers(env_var: str, default: str):
    return tuple(
        int(tier)
        for tier in os.environ.get(env_var, default).split(",")
        if tier.strip()
    )


RENDER_TIERS = _tiers("DATAPLANE_RENDER_TIERS", "256,1024")
MERGE_TIERS = _tiers("DATAPLANE_MERGE_TIERS", "128,512")
REPEATS = int(os.environ.get("DATAPLANE_REPEATS", "5"))

NUM_BINS = 4  # E2SF bins per grayscale interval
RENDER_GATE_TIER = 1024  # total bins
RENDER_GATE = 3.0
RENDER_EVENTS = 100_000
RENDER_GEOMETRY = (128, 128)  # (height, width)

MERGE_GATE_TIER = 512  # buckets per dispatch batch
MERGE_GATE = 2.0
MERGE_BUCKET_FRAMES = 4  # MBsize
MERGE_NNZ = 30  # active sites per frame: ~0.6 % of an 80x60 frame
MERGE_GEOMETRY = (60, 80)


def _best(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _frames_bit_identical(a: SparseFrame, b: SparseFrame) -> bool:
    return (
        (a.height, a.width) == (b.height, b.width)
        and a.t_start == b.t_start
        and a.t_end == b.t_end
        and np.array_equal(a.rows, b.rows)
        and np.array_equal(a.cols, b.cols)
        and np.array_equal(a.pos, b.pos)
        and np.array_equal(a.neg, b.neg)
    )


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _render_workload(total_bins: int, seed: int = 0):
    height, width = RENDER_GEOMETRY
    geometry = SensorGeometry(width=width, height=height)
    rng = np.random.default_rng(seed)
    n = RENDER_EVENTS
    stream = EventStream(
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        np.sort(rng.uniform(0.0, 2.0, n)),
        rng.choice([-1, 1], n),
        geometry,
    )
    num_intervals = total_bins // NUM_BINS
    timestamps = np.linspace(0.0, 2.0, num_intervals + 1)
    return stream, timestamps


def _merge_workload(num_buckets: int, seed: int = 1):
    height, width = MERGE_GEOMETRY
    rng = np.random.default_rng(seed)
    frames = []
    for i in range(num_buckets * MERGE_BUCKET_FRAMES):
        nnz = int(rng.integers(max(1, MERGE_NNZ // 2), MERGE_NNZ + 1))
        flat = rng.choice(height * width, size=nnz, replace=False)
        frames.append(
            SparseFrame(
                (flat // width).astype(np.int32),
                (flat % width).astype(np.int32),
                rng.integers(0, 5, nnz).astype(np.float64),
                rng.integers(0, 5, nnz).astype(np.float64),
                height,
                width,
                i * 0.001,
                (i + 1) * 0.001,
            )
        )
    return [
        frames[i * MERGE_BUCKET_FRAMES : (i + 1) * MERGE_BUCKET_FRAMES]
        for i in range(num_buckets)
    ]


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------
def _render_rows(benchmark):
    converter = Event2SparseFrameConverter(NUM_BINS)
    rows = []
    for total_bins in RENDER_TIERS:
        stream, timestamps = _render_workload(total_bins)
        stack = converter.convert_stack(stream, timestamps)
        oracle = [
            f
            for interval in converter.convert_sequence(stream, list(timestamps))
            for f in interval
        ]
        assert len(stack) == len(oracle) == total_bins
        assert all(
            _frames_bit_identical(view, ref)
            for view, ref in zip(stack.frames(), oracle)
        ), f"render tier {total_bins}: stack path diverged from the oracle"

        if total_bins == max(RENDER_TIERS):
            benchmark.pedantic(
                lambda: converter.convert_stack(stream, timestamps),
                iterations=1,
                rounds=1,
            )
        t_stack = _best(lambda: converter.convert_stack(stream, timestamps))
        t_oracle = _best(
            lambda: converter.convert_sequence(stream, list(timestamps))
        )
        rows.append(
            {
                "section": "render",
                "tier": total_bins,
                "events": len(stream),
                "stack_ev_per_s": len(stream) / t_stack,
                "oracle_ev_per_s": len(stream) / t_oracle,
                "speedup": t_oracle / t_stack,
            }
        )
    return rows


def _merge_rows():
    rows = []
    for num_buckets in MERGE_TIERS:
        groups = _merge_workload(num_buckets)
        for frame in (f for group in groups for f in group):
            frame.flat_keys()  # warm the key caches (stack views carry them)
        num_frames = num_buckets * MERGE_BUCKET_FRAMES

        merged = FrameStack.merge_groups(groups)
        reference = [SparseFrame.add_reference(group) for group in groups]
        assert all(
            _frames_bit_identical(view, ref)
            for view, ref in zip(merged.frames(), reference)
        ), f"merge tier {num_buckets}: segmented kernel diverged from the oracle"
        averaged = FrameStack.merge_groups(groups, average=True)
        assert all(
            _frames_bit_identical(view, SparseFrame.average(group))
            for view, group in zip(averaged.frames(), groups)
        )

        t_segmented = _best(lambda: FrameStack.merge_groups(groups))
        t_oracle = _best(
            lambda: [SparseFrame.add_reference(group) for group in groups]
        )
        t_average = _best(lambda: FrameStack.merge_groups(groups, average=True))
        rows.append(
            {
                "section": "merge",
                "tier": num_buckets,
                "frames": num_frames,
                "cadd_frames_per_s": num_frames / t_segmented,
                "oracle_frames_per_s": num_frames / t_oracle,
                "caverage_frames_per_s": num_frames / t_average,
                "cadd_speedup": t_oracle / t_segmented,
            }
        )
    return rows


def test_dataplane_throughput(benchmark):
    render_rows = _render_rows(benchmark)
    merge_rows = _merge_rows()

    print("\n=== Columnar render: events-rendered/sec (convert_stack vs loop) ===")
    print(
        format_table(
            render_rows,
            ["tier", "events", "stack_ev_per_s", "oracle_ev_per_s", "speedup"],
        )
    )
    print("\n=== DSFA merge: frames-merged/sec (merge_groups vs per-bucket) ===")
    print(
        format_table(
            merge_rows,
            [
                "tier",
                "frames",
                "cadd_frames_per_s",
                "oracle_frames_per_s",
                "caverage_frames_per_s",
                "cadd_speedup",
            ],
        )
    )

    for row in render_rows:
        assert row["stack_ev_per_s"] > 0
    for row in merge_rows:
        assert row["cadd_frames_per_s"] > 0

    # Acceptance gates, asserted only when the gate tier actually ran (the
    # CI smoke job runs reduced tiers and skips them).
    render_gate = next(
        (r["speedup"] for r in render_rows if r["tier"] == RENDER_GATE_TIER), None
    )
    if render_gate is not None:
        print(f"1024-bin render speedup: {render_gate:.2f}x (gate: >= {RENDER_GATE}x)")
        assert render_gate >= RENDER_GATE, (
            f"render@{RENDER_GATE_TIER} bins: {render_gate:.2f}x < {RENDER_GATE}x"
        )
    merge_gate = next(
        (r["cadd_speedup"] for r in merge_rows if r["tier"] == MERGE_GATE_TIER), None
    )
    if merge_gate is not None:
        print(f"512-bucket cAdd speedup: {merge_gate:.2f}x (gate: >= {MERGE_GATE}x)")
        assert merge_gate >= MERGE_GATE, (
            f"merge@{MERGE_GATE_TIER} buckets: {merge_gate:.2f}x < {MERGE_GATE}x"
        )

    write_bench_json(
        "dataplane",
        render_rows + merge_rows,
        meta={
            "render_tiers": list(RENDER_TIERS),
            "merge_tiers": list(MERGE_TIERS),
            "repeats": REPEATS,
            "num_bins": NUM_BINS,
            "render_events": RENDER_EVENTS,
            "render_geometry": list(RENDER_GEOMETRY),
            "merge_bucket_frames": MERGE_BUCKET_FRAMES,
            "merge_nnz_per_frame": MERGE_NNZ,
            "merge_geometry": list(MERGE_GEOMETRY),
            "render_gate": {"tier": RENDER_GATE_TIER, "min_speedup": RENDER_GATE},
            "merge_gate": {"tier": MERGE_GATE_TIER, "min_speedup": MERGE_GATE},
            "has_numba": HAS_NUMBA,
        },
    )
