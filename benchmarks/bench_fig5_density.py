"""Benchmark: Figure 5 — temporal event density of indoor_flying2."""

from repro.experiments import format_fig5, run_fig5


def test_fig5_density(benchmark, settings):
    result = benchmark(run_fig5, settings)
    print("\n=== Figure 5: temporal event density (indoor_flying2 stand-in) ===")
    print(format_fig5(result))
    # The sequence must exhibit the large temporal variance that motivates DSFA.
    assert result["peak_to_median_ratio"] > 2.0
    assert result["coefficient_of_variation"] > 0.3
