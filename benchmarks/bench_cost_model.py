"""Benchmark: layered per-layer-occupancy cost stack vs the scalar-keyed stack.

Runs one mixed-density DSFA fleet — many streams sharing a single network
signature but fed from scenes spanning a wide event-density range, so DSFA
merges and cross-stream batches hit the cost stack at many distinct input
occupancies — under three cost stacks:

* ``flat`` — the pre-profile scalar path (``cost_mode="flat"``): measured
  input occupancy on the first layer, static modelled sparsity deeper.
  Also the equivalence gate: the layered stack running a uniform (flat)
  profile must be **bit-identical** to the
  :class:`~repro.runtime.legacy.ScalarCostModel` oracle.
* ``profile/layered`` — per-layer occupancy propagation with per-layer
  bucketing (``cost_mode="profile"``): mixed-density inputs converge onto
  shared deep-layer cache cells within a few layers.
* ``profile/scalar-keyed`` — the same propagated semantics on the PR-4
  scalar-keyed architecture (:class:`~repro.runtime.legacy.ScalarCostModel`
  in profile mode): per-layer occupancies derive from the input bucket and
  are keyed raw, so every input bucket mints its own copy of every layer
  cell.

The acceptance gate asserts the layered stack's ``LayerCostTable`` cache
hit-rate beats the scalar-keyed stack's on this fleet, with no events/sec
collapse.

A second **DAG-fleet tier** (:func:`test_cost_model_dag_fleet`) runs the
same comparison on a fleet spanning the skip-connection networks of the
zoo (Spike-FlowNet, Fusion-FlowNet, E2Depth, HALSIE).  Under graph-aware
propagation, skip connections re-inject input-dependent occupancies deep
into the decoders, so deep-layer convergence is weaker than on serial
chains — the tier gates that per-layer bucketing *still* shares cache
cells better than the raw-keyed scalar stack on exactly the networks
where propagation does the most work.

Both tiers append their rows (tagged ``tier``) to the same
``BENCH_cost_model.json`` trajectory.

Environment knobs (used by the CI smoke job):

* ``COST_MODEL_STREAMS`` — mixed-density fleet size (default 32; CI smokes 12).
* ``COST_MODEL_DAG_STREAMS`` — DAG fleet size (default 16; CI smokes 8).
* ``COST_MODEL_REPEATS`` — timing repeats per stack (default 3).
"""

from __future__ import annotations

import os
import time

from bench_utils import write_bench_json
from repro.core import DSFAConfig, EvEdgeConfig, OptimizationLevel
from repro.events import generate_sequence
from repro.experiments import format_table
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.runtime import MultiStreamSimulator, StreamSource
from repro.runtime.legacy import ScalarCostModel

NUM_STREAMS = int(os.environ.get("COST_MODEL_STREAMS", "32"))
NUM_DAG_STREAMS = int(os.environ.get("COST_MODEL_DAG_STREAMS", "16"))
REPEATS = int(os.environ.get("COST_MODEL_REPEATS", "3"))

# Skip-connection networks: graph propagation combines occupancies at the
# decoder joins, so their deep layers stay input-dependent.
_DAG_NETWORKS = ("spikeflownet", "fusionflownet", "e2depth", "halsie")

# Rows from every tier that ran in this session, written together so the
# committed trajectory holds the whole benchmark regardless of tier count.
_TIER_ROWS = []


def _publish_rows(rows):
    _TIER_ROWS.extend(rows)
    write_bench_json(
        "cost_model",
        list(_TIER_ROWS),
        meta={
            "streams": NUM_STREAMS,
            "dag_streams": NUM_DAG_STREAMS,
            "repeats": REPEATS,
        },
    )

# Scenes chosen to span the density spectrum: calibration bars are nearly
# empty, the drone scenes are bursty, the driving scenes moderately dense.
_SCENES = (
    "calibration_bars",
    "indoor_flying1",
    "outdoor_day1",
    "high_speed_disk",
    "town10",
    "indoor_flying2",
)


def _mixed_density_fleet(num_streams: int):
    """N DSFA streams on one network signature, densities all over the map."""
    network = build_network("spikeflownet", 64, 64)
    config = EvEdgeConfig(
        num_bins=8,
        optimization=OptimizationLevel.E2SF_DSFA,
        dsfa=DSFAConfig(inference_queue_depth=4),
    )
    sources = []
    for i in range(num_streams):
        sequence = generate_sequence(
            _SCENES[i % len(_SCENES)], scale=0.08, duration=0.25, seed=11 + i
        )
        sources.append(
            StreamSource(
                name=f"mix{i:03d}",
                sequence=sequence,
                network=network,
                config=config,
                start_offset=0.0004 * i,
            )
        )
    return sources


def _timed_run(platform, sources, repeats=REPEATS, **sim_kwargs):
    best = float("inf")
    report = None
    cache_info = None
    for _ in range(repeats):
        simulator = MultiStreamSimulator(platform, sources, **sim_kwargs)
        start = time.perf_counter()
        report = simulator.run()
        best = min(best, time.perf_counter() - start)
        cache_info = report.cache_info
    return report, cache_info, best


def _reports_identical(a, b) -> bool:
    return (
        set(a.reports) == set(b.reports)
        and all(a.reports[k].records == b.reports[k].records for k in a.reports)
        and a.mean_latency == b.mean_latency
        and a.total_energy == b.total_energy
        and a.makespan == b.makespan
        and a.frames_dropped == b.frames_dropped
    )


def test_cost_model_stacks(benchmark):
    platform = jetson_xavier_agx()
    sources = _mixed_density_fleet(NUM_STREAMS)
    for source in sources:
        source.generate_frames()  # warm the per-source frame cache

    stacks = [
        ("flat", dict(cost_mode="flat")),
        ("profile/layered", dict(cost_mode="profile")),
        (
            "profile/scalar-keyed",
            dict(cost_mode="profile", cost_model_factory=ScalarCostModel),
        ),
    ]

    benchmark.pedantic(
        lambda: MultiStreamSimulator(platform, sources, cost_mode="profile").run(),
        iterations=1,
        rounds=1,
    )

    rows = []
    results = {}
    for label, kwargs in stacks:
        report, cache, elapsed = _timed_run(platform, sources, **kwargs)
        results[label] = (report, cache, elapsed)
        rows.append(
            {
                "tier": "mixed-density",
                "stack": label,
                "events": report.events_processed,
                "ev_per_s": report.events_processed / elapsed,
                "inferences": report.total_inferences,
                "mean_latency_ms": report.mean_latency * 1e3,
                "table_entries": cache["entries"],
                "cache_hit_rate": cache["hit_rate"],
            }
        )

    print(f"\n=== Cost stacks on a mixed-density DSFA fleet ({NUM_STREAMS} streams) ===")
    print(
        format_table(
            rows,
            [
                "stack",
                "events",
                "ev_per_s",
                "inferences",
                "mean_latency_ms",
                "table_entries",
                "cache_hit_rate",
            ],
        )
    )
    layered = results["profile/layered"]
    scalar = results["profile/scalar-keyed"]
    print(
        "LayerCostTable cache hit-rate: layered="
        f"{layered[1]['hit_rate']:.3f} vs scalar-keyed={scalar[1]['hit_rate']:.3f}"
    )

    # Equivalence gate: a uniform (flat) profile must be bit-identical to
    # the PR-4 scalar oracle on the same seeded fleet.
    flat_report, _, _ = results["flat"]
    oracle_report, _, _ = _timed_run(
        platform, sources, repeats=1, cost_mode="flat", cost_model_factory=ScalarCostModel
    )
    assert _reports_identical(flat_report, oracle_report), (
        "flat-profile stack must be bit-identical to the scalar cost oracle"
    )

    # The fleet must actually mix densities and merge, or the comparison is
    # vacuous.
    assert layered[0].total_inferences > 0
    occupancies = {
        round(r.occupancy, 4)
        for stream in layered[0].reports.values()
        for r in stream.records
    }
    assert len(occupancies) > 4, "fleet does not exercise mixed densities"

    # Acceptance gate: per-layer bucketing after propagation must beat the
    # scalar-keyed stack's cache hit-rate (deep-layer cells are shared
    # across input densities instead of re-minted per input bucket).
    assert layered[1]["hit_rate"] > scalar[1]["hit_rate"], (
        f"layered stack hit-rate {layered[1]['hit_rate']:.3f} must exceed "
        f"scalar-keyed {scalar[1]['hit_rate']:.3f}"
    )
    assert layered[1]["entries"] < scalar[1]["entries"]

    # Sanity: the layered stack must not collapse events/sec vs the flat
    # path (propagation work is memoized per input bucket).
    for row in rows:
        assert row["ev_per_s"] > 0
    _publish_rows(rows)


def _dag_fleet(num_streams: int):
    """Streams spread across the zoo's skip-connection networks.

    Streams sharing a network signature still merge/batch; the tier's
    point is the cache behaviour when graph propagation is doing real
    join work, so every DAG network in the zoo contributes a slice of
    the fleet at mixed densities.
    """
    networks = {name: build_network(name, 64, 64) for name in _DAG_NETWORKS}
    config = EvEdgeConfig(
        num_bins=8,
        optimization=OptimizationLevel.E2SF_DSFA,
        dsfa=DSFAConfig(inference_queue_depth=4),
    )
    sources = []
    for i in range(num_streams):
        name = _DAG_NETWORKS[i % len(_DAG_NETWORKS)]
        sequence = generate_sequence(
            _SCENES[i % len(_SCENES)], scale=0.08, duration=0.25, seed=37 + i
        )
        sources.append(
            StreamSource(
                name=f"dag{i:03d}",
                sequence=sequence,
                network=networks[name],
                config=config,
                start_offset=0.0004 * i,
            )
        )
    return sources


def test_cost_model_dag_fleet(benchmark):
    platform = jetson_xavier_agx()
    sources = _dag_fleet(NUM_DAG_STREAMS)
    for source in sources:
        source.generate_frames()

    benchmark.pedantic(
        lambda: MultiStreamSimulator(platform, sources, cost_mode="profile").run(),
        iterations=1,
        rounds=1,
    )

    stacks = [
        ("profile/layered", dict(cost_mode="profile")),
        (
            "profile/scalar-keyed",
            dict(cost_mode="profile", cost_model_factory=ScalarCostModel),
        ),
    ]
    rows = []
    results = {}
    for label, kwargs in stacks:
        report, cache, elapsed = _timed_run(platform, sources, **kwargs)
        results[label] = (report, cache, elapsed)
        rows.append(
            {
                "tier": "dag-fleet",
                "stack": label,
                "events": report.events_processed,
                "ev_per_s": report.events_processed / elapsed,
                "inferences": report.total_inferences,
                "mean_latency_ms": report.mean_latency * 1e3,
                "table_entries": cache["entries"],
                "cache_hit_rate": cache["hit_rate"],
            }
        )

    print(
        f"\n=== Cost stacks on a DAG fleet ({NUM_DAG_STREAMS} streams over "
        f"{len(_DAG_NETWORKS)} skip-connection networks) ==="
    )
    print(
        format_table(
            rows,
            [
                "stack",
                "events",
                "ev_per_s",
                "inferences",
                "mean_latency_ms",
                "table_entries",
                "cache_hit_rate",
            ],
        )
    )
    layered = results["profile/layered"]
    scalar = results["profile/scalar-keyed"]
    print(
        "DAG-fleet LayerCostTable cache hit-rate: layered="
        f"{layered[1]['hit_rate']:.3f} vs scalar-keyed={scalar[1]['hit_rate']:.3f}"
    )

    # The fleet must mix densities, or deep-layer sharing is vacuous.
    assert layered[0].total_inferences > 0
    occupancies = {
        round(r.occupancy, 4)
        for stream in layered[0].reports.values()
        for r in stream.records
    }
    assert len(occupancies) > 4, "DAG fleet does not exercise mixed densities"

    # Acceptance gate: even with skip joins keeping decoder occupancies
    # input-dependent, per-layer bucketing must share cache cells at least
    # as well as the raw-keyed scalar stack — here strictly better, since
    # the scalar stack mints every layer cell per raw input occupancy.
    assert layered[1]["hit_rate"] >= scalar[1]["hit_rate"], (
        f"DAG-fleet layered hit-rate {layered[1]['hit_rate']:.3f} must be at "
        f"least scalar-keyed {scalar[1]['hit_rate']:.3f}"
    )
    assert layered[1]["entries"] < scalar[1]["entries"]
    for row in rows:
        assert row["ev_per_s"] > 0
    _publish_rows(rows)
