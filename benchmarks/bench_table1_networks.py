"""Benchmark: Table 1 — network summary (layer counts vs the paper)."""

from repro.experiments import format_table1, run_table1


def test_table1_networks(benchmark):
    rows = benchmark(run_table1)
    print("\n=== Table 1: evaluated networks ===")
    print(format_table1(rows))
    # Every network's layer counts and SNN/ANN split match the paper exactly.
    for row in rows:
        assert row["layers_match"], row["network"]
    assert len(rows) == 6
