"""Benchmark: traffic scaling — stream count vs throughput and latency.

Sweeps 1, 4 and 16 concurrent heterogeneous streams multiplexed onto one
Jetson Xavier AGX model and reports aggregate throughput (processed frames
per simulated second), mean dispatch-to-completion latency and drop counts,
so future PRs have a traffic-scaling trajectory to compare against.
"""

from bench_utils import write_bench_json
from repro.experiments import format_table, traffic_mix
from repro.hw import jetson_xavier_agx
from repro.runtime import MultiStreamSimulator

STREAM_COUNTS = (1, 4, 16)


def _run_traffic(platform, sources):
    return MultiStreamSimulator(platform, sources).run()


def test_multistream_scaling(benchmark, settings):
    platform = jetson_xavier_agx()
    mixes = {n: traffic_mix(n, settings=settings) for n in STREAM_COUNTS}

    rows = []
    reports = {}
    for n in STREAM_COUNTS:
        if n == max(STREAM_COUNTS):
            report = benchmark.pedantic(
                _run_traffic, args=(platform, mixes[n]), iterations=1, rounds=1
            )
        else:
            report = _run_traffic(platform, mixes[n])
        reports[n] = report
        rows.append(
            {
                "streams": n,
                "inferences": report.total_inferences,
                "throughput_fps": report.throughput,
                "mean_latency_ms": report.mean_latency * 1e3,
                "frames_dropped": report.frames_dropped,
                "energy_j": report.total_energy,
                "cache_hit_rate": report.cache_info["hits"]
                / max(report.cache_info["hits"] + report.cache_info["misses"], 1),
            }
        )

    print("\n=== Traffic scaling: heterogeneous streams on one platform ===")
    print(
        format_table(
            rows,
            [
                "streams",
                "inferences",
                "throughput_fps",
                "mean_latency_ms",
                "frames_dropped",
                "energy_j",
                "cache_hit_rate",
            ],
        )
    )

    # Every stream must complete with its own report.
    for n in STREAM_COUNTS:
        assert len(reports[n].reports) == n
        assert all(r.frames_generated > 0 for r in reports[n].reports.values())
    # Multiplexing more streams must raise aggregate throughput: the bounded
    # per-stream queues shed load instead of letting the makespan blow up.
    assert reports[16].throughput > reports[1].throughput
    # The shared layer-cost table should be hitting heavily under traffic.
    assert rows[-1]["cache_hit_rate"] > 0.5
    write_bench_json("multistream", rows, meta={"stream_counts": list(STREAM_COUNTS)})
