"""Benchmark: Figure 9 — multi-task latency of NMP vs round-robin scheduling."""

from repro.experiments import format_fig9, run_fig9


def test_fig9_multi_task(benchmark, settings):
    rows = benchmark.pedantic(run_fig9, args=(settings,), iterations=1, rounds=1)
    print("\n=== Figure 9: multi-task latency — NMP vs RR-Network / RR-Layer / NMP-FP ===")
    print(format_fig9(rows))
    for row in rows:
        # NMP beats both round-robin baselines (paper: 1.43x-1.81x over
        # RR-Network and 1.24x-1.41x over RR-Layer).
        assert row["speedup_vs_rr_network"] > 1.0, row["config"]
        assert row["speedup_vs_rr_layer"] > 1.0, row["config"]
        # The full-precision variant is somewhat slower than mixed-precision
        # NMP but never faster (paper: 1.05x-1.22x slower).
        assert row["nmp_fp_slowdown"] >= 1.0, row["config"]
    mixed = next(r for r in rows if r["config"] == "mixed_snn_ann")
    # In the richest configuration the fine-grained RR-Layer policy beats the
    # coarse RR-Network policy, as in the paper.
    assert mixed["rr_layer_latency_ms"] <= mixed["rr_network_latency_ms"]
