"""Benchmark: fleet-scale kernel hot path — events-processed/sec vs fleet size.

Runs steady and churn fleets (compiled through the scenario registry) at
64/256/1024 streams on the refactored kernel — O(1) event routing, indexed
``SignatureServer`` pending queues, coalesced wake-ups — and compares
against two baselines at the tiers where it is affordable:

* ``legacy (warm)`` — the pre-refactor *data structures*
  (:class:`~repro.runtime.legacy.LegacyScanKernel` linear handler scan +
  :class:`~repro.runtime.legacy.LegacyListServer` O(queue) list scans and
  per-dispatch wake-up storms) with this PR's shared caches warm.  This
  isolates the routing/queue refactor and must produce **bit-identical**
  reports.
* ``pre-refactor`` — the same legacy structures with the per-run frame
  regeneration the pre-refactor runtime actually performed on every
  ``run()`` (``StreamSource`` frame caching is also part of this PR).  This
  is the end-to-end events/sec a PR-3 checkout delivered, and the number the
  ≥3x acceptance gate is asserted against at the 256-stream tier.

The sharded tiers (``test_kernel_scaling_sharded``) push past the single
process: 4096- and 10240-stream steady fleets partitioned by signature
across worker-process shards (see :mod:`repro.runtime.shard`), with a
single-process baseline at the smallest sharded tier.  On a >=4-core
runner the 4-shard aggregate events/sec must be >= 2x the single-process
kernel at equal stream count; on smaller machines the ratio is reported
but not asserted — worker processes cannot conjure cores.

Environment knobs (used by the CI smoke job):

* ``KERNEL_SCALING_TIERS`` — comma-separated fleet sizes (default
  ``64,256,1024``).  CI runs the smallest tier only.
* ``KERNEL_SCALING_REPEATS`` — timing repeats per cell (default 3).
* ``KERNEL_SCALING_SHARD_TIERS`` — comma-separated sharded fleet sizes
  (default ``4096,10240``; empty skips the sharded benchmark).
* ``KERNEL_SCALING_SHARDS`` — worker shard count (default 4).
* ``KERNEL_MEMORY_TIERS`` — comma-separated fleet sizes of the
  memory-attribution tier (default ``1024,4096``; empty skips it).

The memory-attribution tier (``test_kernel_memory_attribution``) compares
the lazy arrival-cursor discipline against the eager horizon-wide oracle
(``schedule_mode="eager"``): tracemalloc peak allocations and the kernel
heap's high-water mark at each tier (``retain_records=False``, so queued
events dominate), plus a doubled-horizon run showing the lazy heap is
independent of horizon length while the eager heap tracks total frames.
Its rows land in the same ``BENCH_kernel_scaling.json`` trajectory under
``section="memory"``.

Legacy baselines run only at tiers <= 256: the quadratic pending-list scans
make a 1024-stream legacy run take minutes, which is the point of the
refactor, not something worth waiting for in every benchmark run.
"""

from __future__ import annotations

import dataclasses
import os
import time
import tracemalloc

import pytest

from bench_utils import write_bench_json
from repro.core import DSFAConfig
from repro.experiments import format_table
from repro.hw import jetson_xavier_agx
from repro.runtime import MultiStreamSimulator
from repro.runtime.legacy import LegacyListServer, LegacyScanKernel
from repro.scenarios.registry import default_registry
from repro.scenarios.spec import ScenarioSpec


def _tiers(env_var: str, default: str):
    return tuple(
        int(tier)
        for tier in os.environ.get(env_var, default).split(",")
        if tier.strip()
    )


TIERS = _tiers("KERNEL_SCALING_TIERS", "64,256,1024")
REPEATS = int(os.environ.get("KERNEL_SCALING_REPEATS", "3"))
SHARD_TIERS = _tiers("KERNEL_SCALING_SHARD_TIERS", "4096,10240")
SHARDS = int(os.environ.get("KERNEL_SCALING_SHARDS", "4"))
MEMORY_TIERS = _tiers("KERNEL_MEMORY_TIERS", "1024,4096")
# Lazy heap budget per active stream (one queued FrameReady + one StreamEnd
# plus in-flight dispatch/completion events).
MEMORY_HEAP_FACTOR = 4
# Horizon-independence slack: doubling the horizon may jiggle the lazy
# high-water by a few in-flight events, never track the doubled frame count.
MEMORY_HORIZON_SLACK = 1.25
# Largest tier the O(streams)/O(queue) legacy baselines are run at.
LEGACY_TIER_CAP = 256
FAMILIES = ("steady", "churn")
QUEUE_DEPTH = 16
SPEEDUP_GATE_TIER = 256
SPEEDUP_GATE = 3.0
SHARD_SPEEDUP_GATE = 2.0


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _fleet(family: str, num_streams: int, duration: float = 0.2):
    """Compile one benchmark fleet through the scenario registry.

    The no-DSFA (``e2sf``) level sends every frame through the
    dispatch/backlog path — the kernel-bound regime this benchmark stresses
    — and a deeper inference queue keeps the pending queues populated.
    """
    spec = ScenarioSpec(
        name=f"kernel-scaling-{family}-{num_streams}-{duration}",
        family=family,
        num_streams=num_streams,
        duration=duration,
        scale=0.06,
        seed=7,
        params={"optimization": "e2sf"},
    )
    sources = default_registry().compile(spec)
    return [
        dataclasses.replace(
            source,
            config=dataclasses.replace(
                source.config, dsfa=DSFAConfig(inference_queue_depth=QUEUE_DEPTH)
            ),
        )
        for source in sources
    ]


def _timed_run(platform, sources, repeats=REPEATS, cold_frames=False, **sim_kwargs):
    """Best-of-``repeats`` wall-clock of one fleet simulation.

    ``cold_frames`` resets every source's frame cache before each repeat,
    reproducing the pre-refactor behaviour of regenerating frames inside
    every ``run()``.
    """
    best = float("inf")
    report = None
    for _ in range(repeats):
        if cold_frames:
            for source in sources:
                source._frames = None
        simulator = MultiStreamSimulator(platform, sources, **sim_kwargs)
        start = time.perf_counter()
        report = simulator.run()
        best = min(best, time.perf_counter() - start)
    return report, best


def _reports_identical(a, b) -> bool:
    """Bit-identical aggregates and per-stream records."""
    return (
        set(a.reports) == set(b.reports)
        and all(a.reports[k].records == b.reports[k].records for k in a.reports)
        and all(
            a.reports[k].frames_dropped == b.reports[k].frames_dropped
            for k in a.reports
        )
        and a.mean_latency == b.mean_latency
        and a.total_energy == b.total_energy
        and a.makespan == b.makespan
        and a.throughput == b.throughput
    )


def test_kernel_scaling(benchmark):
    platform = jetson_xavier_agx()
    # The baselines model pre-refactor checkouts, which had no lazy
    # arrival cursors: they run eager-primed (the report-identity assert
    # below then also pins the lazy-vs-eager equivalence across the
    # kernel-structure axis).
    legacy_kwargs = dict(
        kernel_factory=LegacyScanKernel,
        server_factory=LegacyListServer,
        schedule_mode="eager",
    )

    rows = []
    gate_speedups = {}
    for family in FAMILIES:
        for num_streams in TIERS:
            sources = _fleet(family, num_streams)
            for source in sources:
                source.generate_frames()  # warm the per-source frame cache
            if family == FAMILIES[0] and TIERS and num_streams == max(TIERS):
                benchmark.pedantic(
                    lambda: MultiStreamSimulator(platform, sources).run(),
                    iterations=1,
                    rounds=1,
                )
            # Every row's events/sec is measured the same way (best of
            # REPEATS, simulator construction outside the timed region).
            new_report, t_new = _timed_run(platform, sources)
            row = {
                "family": family,
                "streams": num_streams,
                "events": new_report.events_processed,
                "new_ev_per_s": new_report.events_processed / t_new,
                "dropped": new_report.frames_dropped,
            }
            if num_streams <= LEGACY_TIER_CAP:
                warm_report, t_warm = _timed_run(platform, sources, **legacy_kwargs)
                assert _reports_identical(new_report, warm_report), (
                    f"{family}/{num_streams}: legacy structures must be "
                    "report-identical"
                )
                cold_report, t_cold = _timed_run(
                    platform, sources, cold_frames=True, **legacy_kwargs
                )
                for source in sources:
                    source.generate_frames()
                row["legacy_warm_ev_per_s"] = warm_report.events_processed / t_warm
                row["pre_refactor_ev_per_s"] = cold_report.events_processed / t_cold
                row["speedup_structures"] = (
                    row["new_ev_per_s"] / row["legacy_warm_ev_per_s"]
                )
                row["speedup_pre_refactor"] = (
                    row["new_ev_per_s"] / row["pre_refactor_ev_per_s"]
                )
                if num_streams == SPEEDUP_GATE_TIER:
                    gate_speedups[family] = row["speedup_pre_refactor"]
            rows.append(row)

    print("\n=== Fleet-scale kernel hot path: events-processed/sec ===")
    print(
        format_table(
            rows,
            [
                "family",
                "streams",
                "events",
                "dropped",
                "new_ev_per_s",
                "legacy_warm_ev_per_s",
                "pre_refactor_ev_per_s",
                "speedup_structures",
                "speedup_pre_refactor",
            ],
        )
    )
    if gate_speedups:
        print(
            "256-stream events/sec vs pre-refactor kernel: "
            + ", ".join(f"{k}={v:.2f}x" for k, v in gate_speedups.items())
            + f" (gate: >= {SPEEDUP_GATE}x)"
        )

    # Every tier must simulate real traffic.
    for row in rows:
        assert row["events"] > 0
        assert row["new_ev_per_s"] > 0
    # Acceptance gate: >= 3x events/sec at the 256-stream tier vs the
    # pre-refactor kernel (linear scan + wake-up storms + per-run frame
    # regeneration).
    for family, speedup in gate_speedups.items():
        assert speedup >= SPEEDUP_GATE, (
            f"{family}@{SPEEDUP_GATE_TIER}: {speedup:.2f}x < {SPEEDUP_GATE}x"
        )
    write_bench_json(
        "kernel_scaling",
        rows,
        meta={"tiers": list(TIERS), "repeats": REPEATS, "families": list(FAMILIES)},
        section="scaling",
    )


def test_kernel_scaling_sharded(benchmark):
    """Sharded fleet tiers: aggregate events/sec past the single process.

    The smallest sharded tier also runs single-process to measure the
    shard speedup; larger tiers run sharded only (a 10k-stream
    single-process run is exactly what the shards exist to avoid timing).
    """
    if not SHARD_TIERS:
        pytest.skip("KERNEL_SCALING_SHARD_TIERS is empty")
    platform = jetson_xavier_agx()
    cores = _available_cores()

    rows = []
    for num_streams in SHARD_TIERS:
        sources = _fleet("steady", num_streams)
        for source in sources:
            source.generate_frames()  # warm caches before the workers fork
        if num_streams == max(SHARD_TIERS):
            benchmark.pedantic(
                lambda: MultiStreamSimulator(
                    platform, sources, shards=SHARDS
                ).run(),
                iterations=1,
                rounds=1,
            )
        sharded_report, t_sharded = _timed_run(platform, sources, shards=SHARDS)
        assert sharded_report.shards > 1
        assert sharded_report.total_inferences > 0
        row = {
            "family": "steady",
            "streams": num_streams,
            "shards": sharded_report.shards,
            "events": sharded_report.events_processed,
            "sharded_ev_per_s": sharded_report.events_processed / t_sharded,
            "dropped": sharded_report.frames_dropped,
        }
        if num_streams == min(SHARD_TIERS):
            single_report, t_single = _timed_run(platform, sources)
            row["single_ev_per_s"] = single_report.events_processed / t_single
            # Equal frames in, equal work out: sharding repartitions the
            # fleet, it must not change how much traffic gets simulated.
            assert sharded_report.frames_generated == single_report.frames_generated
            row["shard_speedup"] = (
                row["sharded_ev_per_s"] / row["single_ev_per_s"]
            )
        rows.append(row)

    print(f"\n=== Sharded kernel: {SHARDS}-shard aggregate events/sec ===")
    print(
        format_table(
            rows,
            [
                "family",
                "streams",
                "shards",
                "events",
                "dropped",
                "sharded_ev_per_s",
                "single_ev_per_s",
                "shard_speedup",
            ],
        )
    )
    print(f"cores={cores} (speedup gate applies at >= {SHARDS} cores)")

    for row in rows:
        assert row["events"] > 0
        assert row["sharded_ev_per_s"] > 0
    # Acceptance gate: on a machine with enough cores to actually run the
    # shards, aggregate events/sec must be >= 2x the single process at
    # equal stream count.
    gated = [row for row in rows if "shard_speedup" in row]
    if cores >= SHARDS:
        for row in gated:
            assert row["shard_speedup"] >= SHARD_SPEEDUP_GATE, (
                f"steady@{row['streams']}: {row['shard_speedup']:.2f}x "
                f"< {SHARD_SPEEDUP_GATE}x with {SHARDS} shards on {cores} cores"
            )
    write_bench_json(
        "kernel_scaling_sharded",
        rows,
        meta={
            "shard_tiers": list(SHARD_TIERS),
            "shards": SHARDS,
            "repeats": REPEATS,
            "cores": cores,
            "speedup_gate": SHARD_SPEEDUP_GATE,
            "gate_enforced": cores >= SHARDS,
        },
    )


def _traced_run(platform, sources, **sim_kwargs):
    """One warmed, tracemalloc-attributed fleet run.

    The warmup run renders every source cache (stacks, flat buffers,
    arrival lists) so the measured run's peak attributes the *runtime* —
    queued events, heap, pending queues — not the one-time render.
    """
    MultiStreamSimulator(platform, sources, **sim_kwargs).run()
    tracemalloc.start()
    try:
        report = MultiStreamSimulator(platform, sources, **sim_kwargs).run()
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return report, peak


def test_kernel_memory_attribution():
    """Memory attribution: lazy arrival cursors vs the eager oracle.

    Gates: at the largest tier the lazy discipline's tracemalloc peak must
    be strictly below eager (the horizon's FrameReady events dominate the
    eager peak once records are off), every tier's lazy heap high-water
    stays O(active streams) while eager's tracks total frames, and doubling
    the horizon at the smallest tier leaves the lazy high-water flat.
    """
    if not MEMORY_TIERS:
        pytest.skip("KERNEL_MEMORY_TIERS is empty")
    platform = jetson_xavier_agx()
    sim_kwargs = dict(retain_records=False)
    base_duration = 0.2

    rows = []
    peaks = {}
    marks = {}
    for num_streams in MEMORY_TIERS:
        sources = _fleet("steady", num_streams, duration=base_duration)
        for mode in ("lazy", "eager"):
            report, peak = _traced_run(
                platform, sources, schedule_mode=mode, **sim_kwargs
            )
            peaks[num_streams, mode] = peak
            marks[num_streams, mode, base_duration] = report.heap_high_water
            rows.append(
                {
                    "family": "steady",
                    "streams": num_streams,
                    "schedule_mode": mode,
                    "horizon_s": base_duration,
                    "events": report.events_processed,
                    "frames": report.frames_generated,
                    "tracemalloc_peak_bytes": peak,
                    "heap_high_water": report.heap_high_water,
                }
            )
    # Horizon-independence probe: double the horizon at the smallest tier
    # (heap high-water only — no warmup/tracemalloc pass needed).
    horizon_streams = min(MEMORY_TIERS)
    long_duration = base_duration * 2
    sources = _fleet("steady", horizon_streams, duration=long_duration)
    for mode in ("lazy", "eager"):
        report = MultiStreamSimulator(
            platform, sources, schedule_mode=mode, **sim_kwargs
        ).run()
        marks[horizon_streams, mode, long_duration] = report.heap_high_water
        rows.append(
            {
                "family": "steady",
                "streams": horizon_streams,
                "schedule_mode": mode,
                "horizon_s": long_duration,
                "events": report.events_processed,
                "frames": report.frames_generated,
                "tracemalloc_peak_bytes": None,
                "heap_high_water": report.heap_high_water,
            }
        )

    print("\n=== Memory attribution: lazy cursors vs eager horizon prime ===")
    print(
        format_table(
            rows,
            [
                "family",
                "streams",
                "schedule_mode",
                "horizon_s",
                "events",
                "frames",
                "tracemalloc_peak_bytes",
                "heap_high_water",
            ],
        )
    )
    top = max(MEMORY_TIERS)
    print(
        f"{top}-stream tracemalloc peak: lazy={peaks[top, 'lazy']} B "
        f"vs eager={peaks[top, 'eager']} B "
        f"({peaks[top, 'eager'] / max(peaks[top, 'lazy'], 1):.2f}x)"
    )

    frames = {
        (row["streams"], row["schedule_mode"], row["horizon_s"]): row["frames"]
        for row in rows
    }
    # Gate 1: the lazy peak is strictly below eager at the largest tier —
    # the horizon of queued FrameReady events is the allocation eager pays
    # and lazy never makes.
    assert peaks[top, "lazy"] < peaks[top, "eager"], (
        f"lazy peak {peaks[top, 'lazy']} B must be < eager "
        f"{peaks[top, 'eager']} B at {top} streams"
    )
    # Gate 2: heap high-water is O(active streams) lazily, O(total frames)
    # eagerly, at every tier.
    for num_streams in MEMORY_TIERS:
        lazy_hw = marks[num_streams, "lazy", base_duration]
        eager_hw = marks[num_streams, "eager", base_duration]
        assert lazy_hw <= MEMORY_HEAP_FACTOR * num_streams, (
            f"lazy heap high-water {lazy_hw} exceeds "
            f"{MEMORY_HEAP_FACTOR}x{num_streams} streams"
        )
        assert eager_hw >= frames[num_streams, "eager", base_duration]
        assert lazy_hw < eager_hw
    # Gate 3: doubling the horizon leaves the lazy high-water flat while
    # the eager one tracks the grown frame count.
    lazy_short = marks[horizon_streams, "lazy", base_duration]
    lazy_long = marks[horizon_streams, "lazy", long_duration]
    assert lazy_long <= lazy_short * MEMORY_HORIZON_SLACK, (
        f"lazy heap high-water grew with the horizon: "
        f"{lazy_short} -> {lazy_long}"
    )
    assert (
        marks[horizon_streams, "eager", long_duration]
        >= marks[horizon_streams, "eager", base_duration] * 1.5
    )
    write_bench_json(
        "kernel_scaling",
        rows,
        meta={
            "tiers": list(MEMORY_TIERS),
            "heap_factor": MEMORY_HEAP_FACTOR,
            "horizon_slack": MEMORY_HORIZON_SLACK,
            "retain_records": False,
        },
        section="memory",
    )
