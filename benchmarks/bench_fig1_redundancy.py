"""Benchmark: Figure 1 — event-frame occupancy and wasted operations."""

from repro.experiments import format_fig1, run_fig1


def test_fig1_redundancy(benchmark, settings):
    result = benchmark(run_fig1, settings)
    print("\n=== Figure 1: frame occupancy vs dense operations (Adaptive-SpikeNet, indoor_flying1) ===")
    print(format_fig1(result))
    # The paper's argument: event frames are extremely sparse, so the vast
    # majority of dense operations are wasted.
    assert result["mean_occupancy_percent"] < 30.0
    assert result["wasted_operation_fraction"] > 0.5
