"""Benchmark: Figure 3 — average event-frame occupancy per network."""

from repro.experiments import format_fig3, run_fig3


def test_fig3_sparsity(benchmark, settings):
    rows = benchmark(run_fig3, settings)
    print("\n=== Figure 3: average % events per event frame (MVSEC stand-in) ===")
    print(format_fig3(rows))
    by_network = {r["network"]: r["mean_occupancy_percent"] for r in rows}
    # Occupancy falls as the temporal discretisation gets finer, and stays in
    # the paper's 0.15 %-28.57 % band.
    assert by_network["adaptive_spikenet"] < by_network["spikeflownet"] < by_network["evflownet"]
    for value in by_network.values():
        assert 0.05 <= value <= 30.0
