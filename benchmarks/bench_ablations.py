"""Ablation benches for the design choices called out in DESIGN.md.

* E2SF bin count ``nB`` — temporal resolution vs. per-bin occupancy;
* DSFA merge-bucket size ``MBsize`` — number of inferences vs. latency;
* DSFA merge modes (cAdd / cAverage / cBatch);
* NMP population size — search quality for a fixed generation budget.
"""

import pytest

from repro.core import (
    DSFAConfig,
    DynamicSparseFrameAggregator,
    EvEdgeConfig,
    EvEdgePipeline,
    Event2SparseFrameConverter,
    MergeMode,
    NMPConfig,
    NetworkMapper,
    OptimizationLevel,
)
from repro.events import generate_sequence
from repro.experiments import ExperimentSettings
from repro.hw import PlatformProfiler, jetson_xavier_agx
from repro.models import build_network
from repro.nn import MultiTaskGraph, TaskSpec


def test_ablation_e2sf_bin_count(benchmark, settings):
    """More bins -> finer temporal resolution -> sparser individual frames."""
    sequence = generate_sequence(
        "indoor_flying1", scale=settings.scale, duration=settings.duration, seed=settings.seed
    )
    t0, t1 = sequence.frames[0].timestamp, sequence.frames[1].timestamp

    def sweep():
        occupancies = {}
        for bins in (1, 5, 10, 20):
            converter = Event2SparseFrameConverter(bins)
            frames = converter.convert(sequence.events, t0, t1)
            occupancies[bins] = converter.mean_occupancy(frames)
        return occupancies

    occupancies = benchmark(sweep)
    print("\n=== Ablation: E2SF bin count vs mean frame occupancy ===")
    for bins, occ in occupancies.items():
        print(f"  nB={bins:3d}  occupancy={occ:.4%}")
    assert occupancies[20] <= occupancies[5] <= occupancies[1]


def test_ablation_dsfa_bucket_size(benchmark, settings):
    """Larger merge buckets consolidate more frames into fewer inferences."""
    network = build_network("adaptive_spikenet", *settings.network_resolution)
    platform = jetson_xavier_agx()
    sequence = generate_sequence(
        "indoor_flying2", scale=settings.scale, duration=settings.duration, seed=settings.seed
    )

    def sweep():
        results = {}
        for bucket in (1, 2, 4, 8):
            config = EvEdgeConfig(
                num_bins=settings.num_bins,
                dsfa=DSFAConfig(event_buffer_size=8, merge_bucket_size=bucket),
                optimization=OptimizationLevel.E2SF_DSFA,
            )
            report = EvEdgePipeline(network, platform, config).run(sequence)
            results[bucket] = (report.num_inferences, report.mean_latency)
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\n=== Ablation: DSFA merge bucket size (MBsize) ===")
    for bucket, (inferences, latency) in results.items():
        print(f"  MBsize={bucket}  inferences={inferences}  mean latency={latency * 1e3:.2f} ms")
    # Every configuration processes the sequence; the bucket size trades the
    # number of inferences against per-inference latency.
    for inferences, latency in results.values():
        assert inferences > 0
        assert latency > 0


def test_ablation_dsfa_merge_modes(benchmark, settings):
    """cAdd and cAverage compact the buffer; cBatch preserves every frame."""
    sequence = generate_sequence(
        "high_speed_disk", scale=settings.scale, duration=min(settings.duration, 0.5), seed=settings.seed
    )
    converter = Event2SparseFrameConverter(settings.num_bins)
    t0, t1 = sequence.frames[0].timestamp, sequence.frames[-1].timestamp
    frames = converter.convert(sequence.events, t0, t1)

    def sweep():
        out = {}
        for mode in MergeMode:
            aggregator = DynamicSparseFrameAggregator(
                DSFAConfig(event_buffer_size=8, merge_bucket_size=4, merge_mode=mode)
            )
            for frame in frames:
                aggregator.push(frame)
            batch = aggregator.flush()
            out[mode.value] = len(batch) if batch is not None else 0
        return out

    sizes = benchmark(sweep)
    print("\n=== Ablation: DSFA merge modes ===")
    for mode, size in sizes.items():
        print(f"  {mode}: dispatched batch of {size} merged frames")
    assert sizes["cBatch"] >= sizes["cAdd"]


def test_ablation_nmp_population_size(benchmark, settings):
    """Bigger populations find better mappings for a fixed generation count."""
    graph = MultiTaskGraph(
        [TaskSpec(build_network(n, *settings.network_resolution)) for n in ("dotie", "halsie")]
    )
    platform = jetson_xavier_agx()
    profile = PlatformProfiler(platform).profile(graph, occupancy=0.1)

    def sweep():
        latencies = {}
        for population in (4, 16, 32):
            result = NetworkMapper(
                graph,
                platform,
                profile,
                NMPConfig(population_size=population, generations=8, seed=settings.seed),
            ).run()
            latencies[population] = result.best_latency
        return latencies

    latencies = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\n=== Ablation: NMP population size ===")
    for population, latency in latencies.items():
        print(f"  population={population:3d}  best latency={latency * 1e3:.2f} ms")
    assert latencies[32] <= latencies[4] * 1.2
