"""Benchmark: Table 2 — single-task accuracy, baseline vs Ev-Edge."""

from repro.experiments import format_table2, run_table2


def test_table2_accuracy(benchmark, settings):
    rows = benchmark.pedantic(run_table2, args=(settings,), iterations=1, rounds=1)
    print("\n=== Table 2: task accuracy, baseline vs Ev-Edge configuration ===")
    print(format_table2(rows))
    for row in rows:
        # Ev-Edge's aggregation + mixed precision cost at most a few percent
        # of accuracy (the paper reports 3-10 % changes in the metric).
        assert row["degradation"] <= 0.15, row["network"]
