"""Traffic streams and the multi-stream traffic simulator.

A :class:`StreamSource` wraps one traffic source — an
:class:`~repro.events.datasets.EventSequence`, the network that consumes it,
and its :class:`~repro.core.config.EvEdgeConfig` (plus an optional NMP
mapping and a start offset) — into something the simulation kernel can
schedule.  :class:`StreamClient` is the per-stream protocol driver: it turns
``FrameReady`` events into DSFA pushes (or the bounded-queue drop logic of
the no-DSFA path), emits ``DispatchBatch`` events and accounts the resulting
``InferenceDone`` records into a per-stream
:class:`~repro.runtime.sim.PipelineReport`.

Two executors give dispatches their hardware semantics (both live in
:mod:`repro.runtime.executor` and are re-exported here):

* :class:`SerialExecutor` — the whole platform is one serial accelerator
  (the seed pipeline's scalar ``busy_until``); dispatches queue behind each
  other.  ``EvEdgePipeline.run`` uses this to stay report-for-report
  identical with the seed.
* :class:`SignatureServer` — used by :class:`MultiStreamSimulator`; one
  server per distinct (network, mapping, config) signature, occupying the
  PEs its mapping touches.  Dispatches arriving while those PEs are busy
  wait in a bounded per-stream pending queue (oldest entries are evicted
  with ``QueueEvict`` once a stream exceeds its ``inference_queue_depth``)
  and are merged — cross-stream batching over at most ``max_merge_streams``
  *distinct* streams — into one batched inference when the devices free up.
  Pending work is indexed (per-client deques + an aggregate FIFO heap) so
  dispatch, eviction and merge selection stay O(1) amortized at fleet
  scale.

:class:`MultiStreamSimulator` multiplexes N heterogeneous streams onto one
:class:`~repro.hw.pe.Platform` with per-PE busy tracking, sharing a single
:class:`~repro.runtime.sim.LayerCostTable` across all streams.

**Online traffic-adaptive remapping.**  With a :class:`RemapPolicy` the
simulator reacts to traffic-mix changes: at every stream join (its
``start_offset``) and leave (its last frame) a :class:`RemapTriggered` event
fires, the :class:`AdaptiveMappingClient` re-runs a *budgeted* NMP search
(:class:`~repro.core.nmp.search.MapperEngine`) over the networks of the
streams that are active at that instant, and every affected
:class:`~repro.runtime.sim.NetworkCostModel` is rebound to the new mapping —
invalidating its memoized whole-network costs while keeping the shared
per-layer cost table warm.  Only streams whose optimization level uses NMP
(:attr:`~repro.core.config.OptimizationLevel.FULL`) participate; the search
itself is treated as instantaneous in simulated time (it runs on a host core
concurrently with inference in a real deployment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import EvEdgeConfig
from ..core.dsfa import DynamicSparseFrameAggregator
from ..core.e2sf import Event2SparseFrameConverter
from ..core.nmp.candidate import Assignment, MappingCandidate
from ..core.nmp.search import MapperEngine, NMPConfig, NMPResult, make_strategy
from ..events.datasets import EventSequence
from ..frames.sparse import SparseFrame, SparseFrameBatch
from ..frames.stack import FrameStack
from ..hw.energy import EnergyModel
from ..hw.latency import LatencyModel
from ..hw.pe import Platform
from ..hw.profiler import PlatformProfiler
from ..nn.graph import LayerGraph, MultiTaskGraph, TaskSpec
from ..nn.quantization import Precision
from .executor import SerialExecutor, SignatureServer
from .sim import (
    COST_MODES,
    DispatchBatch,
    FrameReady,
    InferenceDone,
    LayerCostTable,
    NetworkCostModel,
    PipelineReport,
    QueueEvict,
    RemapTriggered,
    SimulationKernel,
    StreamEnd,
)
from .tracer import KernelTrace

__all__ = [
    "DATAPLANES",
    "SCHEDULE_MODES",
    "StreamSource",
    "StreamClient",
    "SerialExecutor",
    "SignatureServer",
    "RemapPolicy",
    "RemapRecord",
    "AdaptiveMappingClient",
    "MultiStreamReport",
    "MultiStreamSimulator",
]

#: The runtime frame-transport modes.
#:
#: ``"stack"`` (default) — the columnar data plane: ``FrameReady`` events
#: carry ``(stack, index)`` references into the stream's rendered
#: :class:`~repro.frames.stack.FrameStack`, DSFA buffers index ranges
#: (:class:`~repro.core.dsfa.StackMergeBucket`) and dispatches stack-backed
#: :class:`~repro.frames.sparse.SparseFrameBatch` objects; no per-frame
#: Python object is created anywhere on the hot path.
#:
#: ``"frames"`` — the per-frame-object transport over the same columnar
#: render: events carry materialised zero-copy stack views, DSFA buffers
#: frame lists.  This was the default before the stack transport landed.
#:
#: ``"reference"`` — the fully per-frame oracle: the per-frame transport
#: driving :class:`~repro.runtime.legacy.ReferenceAggregator` (uncached
#: whole-bucket re-merges, per-bucket reference merges).  Equivalence tests
#: and ``benchmarks/bench_dataplane.py`` compare against it.
DATAPLANES = ("stack", "frames", "reference")

#: Arrival-scheduling disciplines.
#:
#: ``"lazy"`` (default) — per-stream arrival cursors: ``prime()`` schedules
#: only the stream's *next* ``FrameReady`` and the frame handler
#: self-reschedules the successor before processing, so the kernel heap
#: holds at most one arrival per live stream (plus in-flight dispatch /
#: completion events) — O(active streams) instead of O(total frames), and
#: every heap operation pays a correspondingly smaller log factor.  Each
#: stream pre-reserves its block of kernel sequence numbers
#: (:meth:`~repro.runtime.sim.SimulationKernel.reserve_sequences`), so
#: same-timestamp FIFO ordering — and therefore every report — is
#: bit-identical to the eager oracle.
#:
#: ``"eager"`` — the pre-cursor discipline kept as the selectable oracle:
#: every arrival of the horizon is heaped at prime time.  Equivalence tests
#: and the memory-attribution benchmark tier compare against it.
SCHEDULE_MODES = ("lazy", "eager")


@dataclass
class StreamSource:
    """One traffic source: an event sequence feeding one network.

    Attributes
    ----------
    name:
        Unique stream name within a simulation (e.g. ``"cam0:spikeflownet"``).
    sequence:
        The recorded/generated event sequence driving the stream.
    network:
        The network that consumes the stream's sparse frames.
    config:
        Pipeline configuration (optimization level, E2SF bins, DSFA knobs).
    mapping:
        Optional NMP mapping used when the config enables NMP.
    start_offset:
        Shift (seconds) applied to the stream's arrival times, so traffic
        from many sensors can be phase-staggered on one platform.
    stop_time:
        Optional kernel time at which the stream leaves the platform (stream
        churn): frames that would arrive after it are never generated and the
        stream's ``end_time`` is clamped to it.  Scenario specs with
        scheduled joins/leaves compile to ``(start_offset, stop_time)``
        windows.
    """

    name: str
    sequence: EventSequence
    network: LayerGraph
    config: EvEdgeConfig = field(default_factory=EvEdgeConfig)
    mapping: Optional[MappingCandidate] = None
    start_offset: float = 0.0
    stop_time: Optional[float] = None
    _frames: Optional[List[Tuple[float, SparseFrame]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _stack: Optional[Tuple[Optional[FrameStack], np.ndarray]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _arrival_times: Optional[List[float]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def generate_stack(self) -> Tuple[Optional[FrameStack], np.ndarray]:
        """Render the stream as a ``(stack, arrivals)`` column pair.

        The whole recording renders through the one-pass columnar converter
        (:meth:`~repro.core.e2sf.Event2SparseFrameConverter.convert_stack`)
        into one :class:`~repro.frames.stack.FrameStack`; the arrivals
        column is the stack's ``t_ends`` shifted by ``start_offset`` (a
        frame becomes available when its event bin closes).  Arrivals are
        non-decreasing by construction — the E2SF bin boundaries of a
        validated, strictly increasing timestamp grid — so a ``stop_time``
        churn window is a prefix cut: one ``searchsorted`` plus a zero-copy
        :meth:`~repro.frames.stack.FrameStack.slice`, matching the
        per-frame filter ``arrival <= stop_time`` exactly.

        An empty sequence yields ``(None, empty)``.  Rendering is a pure
        function of the (immutable) sequence and config, so the result is
        computed once and cached on the source; callers must not mutate
        the returned arrays.
        """
        if self._stack is not None:
            return self._stack
        if self.sequence.num_intervals > 0:
            converter = Event2SparseFrameConverter(self.config.num_bins)
            stack = converter.convert_stack(
                self.sequence.events, self.sequence.frame_timestamps
            )
            arrivals = stack.t_ends + self.start_offset
            if self.stop_time is not None:
                keep = int(np.searchsorted(arrivals, self.stop_time, side="right"))
                if keep < len(stack):
                    stack = stack.slice(0, keep)
                    arrivals = arrivals[:keep]
            # The flat key and density columns are part of the rendered
            # product: DSFA placement probes read both on the very first
            # push, so warming them here keeps the simulation loop free of
            # render work.
            stack.flat_buffer()
            stack.densities()
            stack.t_starts_list()
            stack.t_ends_list()
            stack.densities_list()
            # tolist() round-trips float64 exactly; the scheduling loop
            # reads python floats without a numpy scalar extraction per
            # frame, and the boxed floats are part of the rendered cache
            # rather than per-run allocations.
            self._arrival_times = arrivals.tolist()
            self._stack = (stack, arrivals)
        else:
            self._arrival_times = []
            self._stack = (None, np.zeros(0))
        return self._stack

    def arrival_times(self) -> List[float]:
        """Arrival times of :meth:`generate_stack` as cached python floats."""
        if self._arrival_times is None:
            self.generate_stack()
        return self._arrival_times

    def generate_frames(self) -> List[Tuple[float, SparseFrame]]:
        """Render the stream as ``(arrival_time, sparse_frame)`` pairs.

        The per-frame-object view of :meth:`generate_stack`: each pair holds
        a zero-copy view into the stream's rendered stack — bit-identical to
        the per-interval loop kept in :meth:`generate_frames_reference`.
        The ``"stack"`` data plane never calls this; the ``"frames"`` /
        ``"reference"`` transports (and a few analyses) do.  Cached like the
        stack; callers must not mutate the returned list.
        """
        if self._frames is not None:
            return self._frames
        stack, arrivals = self.generate_stack()
        out: List[Tuple[float, SparseFrame]] = []
        if stack is not None:
            out = [(float(arrivals[i]), stack.frame(i)) for i in range(len(stack))]
        self._frames = out
        return out

    def generate_frames_reference(self) -> List[Tuple[float, SparseFrame]]:
        """The pre-columnar per-interval render loop, kept as the oracle.

        Same protocol as :meth:`generate_frames` — one
        :meth:`~repro.core.e2sf.Event2SparseFrameConverter.convert` call per
        grayscale interval, one frame object per bin — uncached and
        deliberately unoptimized (the :mod:`repro.runtime.legacy` pattern).
        The equivalence tests assert the stack render is bit-identical;
        ``benchmarks/bench_dataplane.py`` measures the speedup against it.
        """
        converter = Event2SparseFrameConverter(self.config.num_bins)
        timestamps = self.sequence.frame_timestamps
        out: List[Tuple[float, SparseFrame]] = []
        for i in range(self.sequence.num_intervals):
            frames = converter.convert(
                self.sequence.events, float(timestamps[i]), float(timestamps[i + 1])
            )
            for frame in frames:
                arrival = frame.t_end + self.start_offset
                if self.stop_time is not None and arrival > self.stop_time:
                    continue
                out.append((arrival, frame))
        return out

    @property
    def end_time(self) -> float:
        """Kernel time at which the stream leaves the platform.

        The last grayscale frame anchor shifted by ``start_offset``, clamped
        to ``stop_time`` when a churn schedule ends the stream early (and
        never before the stream's own join time).
        """
        timestamps = self.sequence.frame_timestamps
        if timestamps.size == 0:
            end = self.start_offset
        else:
            end = float(timestamps[-1]) + self.start_offset
        if self.stop_time is not None:
            end = min(end, self.stop_time)
        return max(end, self.start_offset)


class StreamClient:
    """Per-stream protocol driver on the simulation kernel.

    Replays the exact frame-handling protocol of the seed pipeline: DSFA
    buffering with hardware-availability dispatch when enabled, otherwise
    per-frame execution with the bounded-backlog drop rule.

    ``dataplane`` selects the frame transport (:data:`DATAPLANES`): the
    columnar ``"stack"`` default schedules ``(stack, index)`` references
    and pushes indices into DSFA; ``"frames"`` / ``"reference"`` drive the
    per-frame oracle paths.  All three produce bit-identical reports.

    ``schedule_mode`` selects the arrival discipline (:data:`SCHEDULE_MODES`):
    the ``"lazy"`` default walks a per-stream cursor over the rendered
    arrivals, keeping at most one of this stream's ``FrameReady`` events in
    the kernel heap at any time; ``"eager"`` heaps the whole horizon at
    prime time (the oracle).  Both produce bit-identical reports.
    """

    def __init__(
        self,
        source: StreamSource,
        kernel: SimulationKernel,
        executor,
        cost_model: NetworkCostModel,
        keep_records: bool = True,
        dataplane: str = "stack",
        schedule_mode: str = "lazy",
        record_limit: Optional[int] = None,
    ) -> None:
        if dataplane not in DATAPLANES:
            raise ValueError(
                f"unknown dataplane {dataplane!r}; expected one of {DATAPLANES}"
            )
        if schedule_mode not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule_mode {schedule_mode!r}; "
                f"expected one of {SCHEDULE_MODES}"
            )
        self.source = source
        self.name = source.name
        self.kernel = kernel
        self.executor = executor
        self.cost_model = cost_model
        self.config = source.config
        self.dataplane = dataplane
        self.schedule_mode = schedule_mode
        self.queue_depth = source.config.dsfa.inference_queue_depth
        self.report = PipelineReport(
            keep_records=keep_records, record_limit=record_limit
        )
        self.report.cost_mode = cost_model.cost_mode
        # Arrival-cursor state, populated by prime(): the rendered transport
        # (stack or per-frame list, held on the client rather than closed
        # over by queued events), the scheduled-prefix length, the next
        # index to heap and the stream's reserved sequence-number base.
        self._stack: Optional[FrameStack] = None
        self._frame_seq: Optional[List[Tuple[float, SparseFrame]]] = None
        self._arrivals: Optional[List[float]] = None
        self._num_frames = 0
        self._cursor = 0
        self._seq_base = 0
        if not source.config.optimization.uses_dsfa:
            self.aggregator = None
        elif dataplane == "reference":
            # Local import: legacy hosts every reference implementation and
            # is only pulled in when an oracle path actually runs.
            from .legacy import ReferenceAggregator

            self.aggregator = ReferenceAggregator(source.config.dsfa)
        else:
            self.aggregator = DynamicSparseFrameAggregator(source.config.dsfa)
        self._last_duration = 0.0
        kernel.on(FrameReady, self._on_frame, stream=self.name)
        kernel.on(DispatchBatch, self._on_dispatch, stream=self.name)
        kernel.on(InferenceDone, self._on_done, stream=self.name)
        kernel.on(StreamEnd, self._on_stream_end, stream=self.name)

    # ------------------------------------------------------------------
    def _arrival(self, index: int) -> float:
        """Arrival time of frame ``index`` of the rendered transport."""
        if self._arrivals is not None:
            return self._arrivals[index]
        return self._frame_seq[index][0]

    def _frame_event(self, index: int) -> FrameReady:
        """Build the ``FrameReady`` for frame ``index`` on this transport."""
        if self._stack is not None:
            return FrameReady(
                time=self._arrivals[index],
                stream=self.name,
                stack=self._stack,
                index=index,
            )
        arrival, frame = self._frame_seq[index]
        return FrameReady(time=arrival, stream=self.name, frame=frame)

    def prime(self) -> None:
        """Schedule the stream's frame arrivals and end-of-stream flush.

        On the ``"stack"`` data plane the scheduled ``FrameReady`` events
        carry ``(stack, index)`` references straight out of the rendered
        stack — no frame objects are built; on the per-frame transports the
        rendered ``(arrival, frame)`` list is held on the client cursor and
        consumed index by index rather than closed over wholesale by queued
        events.  In ``"lazy"`` mode only the *first* arrival is heaped (the
        handler self-reschedules successors) after reserving the stream's
        contiguous sequence-number block, so heap ordering matches the eager
        oracle exactly.  ``StreamEnd`` is scheduled even for a stream that
        generates no frames (an empty sequence, or a churn window that
        closes before the first arrival): leave-side consumers — remap
        triggers, traces, per-stream accounting — rely on every stream
        announcing its end.
        """
        if self.dataplane == "stack":
            stack, _ = self.source.generate_stack()
            self._stack = stack
            self._frame_seq = None
            self._arrivals = self.source.arrival_times()
            count = 0 if stack is None else len(stack)
        else:
            self._stack = None
            self._frame_seq = self.source.generate_frames()
            self._arrivals = None
            count = len(self._frame_seq)
        stop = self.source.stop_time
        if self.schedule_mode == "lazy" and stop is not None:
            # Churn guard: the cursor must never advance past the stop
            # window.  Rendered arrivals are already prefix-cut against
            # stop_time (a searchsorted on the non-decreasing column), so
            # this normally trims nothing — but a transport whose cache was
            # seeded out of band keeps the invariant that no frame is
            # scheduled after the stream left the platform.
            while count and self._arrival(count - 1) > stop:
                count -= 1
        self._num_frames = count
        self.report.frames_generated += count
        last_arrival = self._arrival(count - 1) if count else self.source.start_offset
        if self.schedule_mode == "eager":
            self._cursor = count
            for i in range(count):
                self.kernel.schedule(self._frame_event(i))
        else:
            # Reserve the whole block even though only arrival 0 is heaped:
            # the successors stamped with base + i land on exactly the
            # (time, priority, seq) slots the eager path would have used.
            self._seq_base = self.kernel.reserve_sequences(count)
            self._cursor = 1 if count else 0
            if count:
                self.kernel.schedule(self._frame_event(0), seq=self._seq_base)
        # The last bin's computed t_end can differ from the final grayscale
        # timestamp by a few ulps; the flush must still come after every
        # frame arrival.
        self.kernel.schedule(
            StreamEnd(
                time=max(self.source.end_time, last_arrival), stream=self.name
            )
        )

    def note_dispatch(self, duration: float) -> None:
        """Record the duration of the stream's most recently started inference."""
        self._last_duration = duration

    @property
    def last_duration(self) -> float:
        """The stream's most recent per-dispatch service-time estimate.

        Executors stamp this onto enqueued dispatches so the server-side
        backlog estimate can include queued work without re-deriving costs.
        """
        return self._last_duration

    # ------------------------------------------------------------------
    def _on_frame(self, event: FrameReady) -> None:
        cursor = self._cursor
        if cursor < self._num_frames:
            # Lazy cursor: heap the successor *before* processing, so an
            # epoch barrier pausing the kernel mid-stream always finds the
            # next arrival already queued (eager mode primes everything up
            # front and never enters this branch).
            self._cursor = cursor + 1
            self.kernel.schedule(
                self._frame_event(cursor), seq=self._seq_base + cursor
            )
        arrival = event.time
        if self.aggregator is not None:
            hardware_available = arrival >= self.executor.busy_until(self)
            # DSFA's internal inference queue (and its discarded_frames
            # counter) is not consumed here: every dispatched batch executes
            # immediately, so its evictions are bookkeeping, not real drops.
            if event.stack is not None:
                batch = self.aggregator.push_index(
                    event.stack, event.index, hardware_available=hardware_available
                )
            else:
                batch = self.aggregator.push(
                    event.frame, hardware_available=hardware_available
                )
            if batch is not None:
                self.report.frames_merged += len(batch)
                self.kernel.schedule(
                    DispatchBatch(time=arrival, stream=self.name, batch=batch)
                )
            return
        # Without DSFA every frame is processed individually.  A real
        # deployment bounds its input queue, so when the backlog exceeds
        # ``inference_queue_depth`` inferences the oldest frame is dropped
        # instead of queued forever.  The executor's estimate covers both
        # the busy frontier and any work already sitting in a pending queue
        # — ``busy_until`` alone under-drops when many streams contend for
        # one server.
        backlog = self.executor.backlog_estimate(self, arrival)
        if backlog > self.queue_depth * max(self._last_duration, 1e-9):
            self.report.frames_dropped += 1
            self.kernel.schedule(
                QueueEvict(time=arrival, stream=self.name, num_frames=1, reason="backlog")
            )
            return
        if event.stack is not None:
            batch = SparseFrameBatch.from_stack(event.stack, event.index, event.index + 1)
        else:
            batch = SparseFrameBatch([event.frame])
        self.kernel.schedule(
            DispatchBatch(time=arrival, stream=self.name, batch=batch)
        )

    def _on_stream_end(self, event: StreamEnd) -> None:
        if self.aggregator is None:
            return
        batch = self.aggregator.flush()
        if batch is not None:
            self.report.frames_merged += len(batch)
            # The flush is anchored to the final grayscale timestamp (the
            # seed's behaviour), not to the possibly ulp-later flush event.
            self.kernel.schedule(
                DispatchBatch(
                    time=self.source.end_time, stream=self.name, batch=batch
                )
            )

    def _on_dispatch(self, event: DispatchBatch) -> None:
        self.executor.dispatch(self, event.batch, event.time)

    def _on_done(self, event: InferenceDone) -> None:
        self.report.add_records(event.records)


# ----------------------------------------------------------------------
# online traffic-adaptive remapping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RemapPolicy:
    """When and how hard to re-run the NMP search as the traffic mix changes.

    Attributes
    ----------
    nmp_config:
        The *budgeted* search configuration.  Online remaps run between
        inference batches, so the default budget is far smaller than the
        offline searches of Figures 9/10.
    strategy:
        Name of the registered search strategy
        (:data:`~repro.core.nmp.search.STRATEGIES`).
    remap_on_join / remap_on_leave:
        Which traffic-mix changes trigger a search.
    min_interval:
        Cooldown in simulated seconds between remaps (joins/leaves inside
        the cooldown window keep the current mapping).
    profile_occupancy:
        Activation occupancy assumed when profiling a network set for the
        search.
    warm_start:
        Seed the search with the currently deployed mapping (plus an all-GPU
        fallback), so a remap can only improve on the status quo.
    """

    nmp_config: NMPConfig = field(
        default_factory=lambda: NMPConfig(population_size=12, generations=8, seed=0)
    )
    strategy: str = "evolutionary"
    remap_on_join: bool = True
    remap_on_leave: bool = True
    min_interval: float = 0.0
    profile_occupancy: float = 0.1
    warm_start: bool = True


@dataclass(frozen=True)
class RemapRecord:
    """One executed remap: what triggered it and what the search found."""

    time: float
    reason: str
    active_streams: Tuple[str, ...]
    networks: Tuple[str, ...]
    best_latency: float
    evaluations: int
    strategy: str


class AdaptiveMappingClient:
    """Online remapping driver: budgeted NMP searches over the active mix.

    One :class:`~repro.core.nmp.search.MapperEngine` (and therefore one
    fitness cache, flattened schedule and profile table) is kept per distinct
    network set, so repeated joins/leaves of the same mix re-search with a
    warm cache.  The client is simulator-agnostic — it can also be used
    standalone to compute a mapping for an arbitrary set of networks.
    """

    def __init__(self, platform: Platform, policy: Optional[RemapPolicy] = None) -> None:
        self.platform = platform
        self.policy = policy or RemapPolicy()
        self._engines: Dict[Tuple[str, ...], MapperEngine] = {}
        self.records: List[RemapRecord] = []
        self._last_remap_time: Optional[float] = None

    # ------------------------------------------------------------------
    def reset_cooldown(self) -> None:
        """Forget the last remap time (call when a new simulation starts).

        Simulations share the client's engines and caches across runs, but
        the cooldown clock is per-run simulated time and must not leak.
        """
        self._last_remap_time = None

    def should_remap(self, time: float, reason: str) -> bool:
        """Policy gate: trigger switches plus the cooldown interval."""
        policy = self.policy
        if reason == "join" and not policy.remap_on_join:
            return False
        if reason == "leave" and not policy.remap_on_leave:
            return False
        if (
            self._last_remap_time is not None
            and time - self._last_remap_time < policy.min_interval
        ):
            return False
        return True

    def engine_for(self, networks: Sequence[LayerGraph]) -> MapperEngine:
        """The (cached) search engine for one set of networks."""
        key = tuple(sorted(net.name for net in networks))
        engine = self._engines.get(key)
        if engine is None:
            graph = MultiTaskGraph([TaskSpec(net) for net in networks])
            profile = PlatformProfiler(self.platform).profile(
                graph, occupancy=self.policy.profile_occupancy
            )
            engine = MapperEngine(
                graph, self.platform, profile, config=self.policy.nmp_config
            )
            self._engines[key] = engine
        return engine

    def _fallback_mapping(self, graph: MultiTaskGraph) -> Dict[str, Assignment]:
        gpu = self.platform.gpu()
        precision = (
            Precision.FP16
            if gpu.supports_precision(Precision.FP16)
            else gpu.highest_supported_precision()
        )
        return {
            node: Assignment(gpu.name, precision) for node in graph.compute_nodes()
        }

    def remap(
        self,
        networks: Sequence[LayerGraph],
        time: float = 0.0,
        reason: str = "join",
        current_assignments: Optional[Dict[str, object]] = None,
        stream_names: Tuple[str, ...] = (),
    ) -> Optional[NMPResult]:
        """Search a new mapping for ``networks`` and record the remap.

        ``current_assignments`` is the union of the deployed per-node
        assignments; with :attr:`RemapPolicy.warm_start` it seeds the search
        (missing nodes — e.g. of a newly joined network — fall back to the
        GPU).  Returns ``None`` when ``networks`` is empty.
        """
        unique: List[LayerGraph] = []
        seen = set()
        for net in networks:
            if net.name not in seen:
                unique.append(net)
                seen.add(net.name)
        if not unique:
            return None
        engine = self.engine_for(unique)
        graph = engine.graph
        fallback = self._fallback_mapping(graph)
        seeds = [MappingCandidate(fallback)]
        if self.policy.warm_start and current_assignments:
            warm = dict(fallback)
            for node, assignment in current_assignments.items():
                if node in warm:
                    warm[node] = assignment
            seeds.insert(0, MappingCandidate(warm))
        result = engine.run(
            make_strategy(self.policy.strategy), initial_candidates=seeds
        )
        self._last_remap_time = time
        self.records.append(
            RemapRecord(
                time=time,
                reason=reason,
                active_streams=tuple(stream_names),
                networks=tuple(net.name for net in unique),
                best_latency=result.best_latency,
                evaluations=result.requested_evaluations,
                strategy=self.policy.strategy,
            )
        )
        return result


# ----------------------------------------------------------------------
# multi-stream traffic simulation
# ----------------------------------------------------------------------
@dataclass
class MultiStreamReport:
    """Per-stream and aggregate statistics of one traffic simulation.

    ``shards`` counts the worker kernels that produced the report (1 for the
    single-process path); ``epochs`` carries the per-shard
    :class:`~repro.runtime.shard.EpochSummary` rows of a sharded run's
    epoch-barrier protocol (``None`` on the single-process path).
    """

    reports: Dict[str, PipelineReport]
    end_time: float
    trace: Optional[KernelTrace] = None
    cache_info: Optional[Dict[str, float]] = None
    remaps: List[RemapRecord] = field(default_factory=list)
    start_time: float = 0.0
    events_processed: int = 0
    cost_mode: str = "flat"
    shards: int = 1
    epochs: Optional[list] = None
    # Largest simultaneous kernel-heap population of the run (the max over
    # shards for a sharded run): the observable the lazy scheduling
    # discipline bounds at O(active streams).
    heap_high_water: int = 0

    @property
    def num_streams(self) -> int:
        """Number of simulated streams."""
        return len(self.reports)

    @property
    def total_inferences(self) -> int:
        """Network invocations across all streams (merged runs count once per stream)."""
        return sum(r.num_inferences for r in self.reports.values())

    @property
    def frames_generated(self) -> int:
        """Sparse frames produced across all streams."""
        return sum(r.frames_generated for r in self.reports.values())

    @property
    def frames_dropped(self) -> int:
        """Frames dropped by backlog bounds across all streams."""
        return sum(r.frames_dropped for r in self.reports.values())

    @property
    def total_energy(self) -> float:
        """Total energy in joules across all streams."""
        return float(sum(r.total_energy for r in self.reports.values()))

    @property
    def makespan(self) -> float:
        """Completion time of the last inference across all streams."""
        return max((r.total_time for r in self.reports.values()), default=0.0)

    @property
    def active_window(self) -> float:
        """Duration between the earliest stream join and the last completion.

        Using the absolute makespan instead would make a fleet that joins at
        ``t=100 s`` report near-zero throughput even though it is fully
        loaded for its whole life.
        """
        return max(self.makespan - self.start_time, 0.0)

    @property
    def throughput(self) -> float:
        """Processed (non-dropped) frames per second of *active* simulated time."""
        processed = self.frames_generated - self.frames_dropped
        window = self.active_window
        if window <= 0:
            return 0.0
        return processed / window

    @property
    def mean_latency(self) -> float:
        """Mean dispatch-to-completion latency across every inference.

        Computed from the per-stream streaming accumulators, so it works
        (and costs O(streams), not O(records)) even when the fleet ran with
        ``retain_records=False``.
        """
        count = 0
        latency_sum = 0.0
        for report in self.reports.values():
            stream_count, stream_latency, _, _, _ = report._accumulators()
            count += stream_count
            latency_sum += stream_latency
        if count == 0:
            return 0.0
        return latency_sum / count

    def merge(self, other: "MultiStreamReport") -> "MultiStreamReport":
        """Combine two reports over *disjoint* stream sets into a new one.

        This is the shard-composition operation: per-stream reports are
        unioned (a stream appearing in both inputs has its
        :class:`~repro.runtime.sim.PipelineReport` accumulators merged —
        partial shard reports of one stream compose too), the active window
        spans both inputs (``start_time`` min / ``end_time`` max), event and
        cache counters are summed, remap records are concatenated in time
        order and ``shards`` adds up.  Traces do not compose across kernels,
        so the merged report carries none.  Cost modes must agree: merging
        reports produced under different cost semantics would silently mix
        incomparable numbers.
        """
        if self.cost_mode != other.cost_mode:
            raise ValueError(
                f"cannot merge reports with different cost modes "
                f"({self.cost_mode!r} != {other.cost_mode!r})"
            )
        reports = dict(self.reports)
        for name, report in other.reports.items():
            existing = reports.get(name)
            reports[name] = report if existing is None else existing.merge(report)
        cache_info = None
        if self.cache_info is not None or other.cache_info is not None:
            cache_info = {"hits": 0.0, "misses": 0.0, "entries": 0.0}
            for info in (self.cache_info, other.cache_info):
                for key in ("hits", "misses", "entries"):
                    cache_info[key] += (info or {}).get(key, 0.0)
            lookups = cache_info["hits"] + cache_info["misses"]
            cache_info["hit_rate"] = cache_info["hits"] / lookups if lookups else 0.0
        epochs = None
        if self.epochs is not None or other.epochs is not None:
            epochs = list(self.epochs or []) + list(other.epochs or [])
        # A report with no streams is an identity element for the window
        # bounds: its (start, end) must not drag the merged window to 0.
        windows = [r for r in (self, other) if r.reports]
        return MultiStreamReport(
            reports=reports,
            end_time=max((r.end_time for r in windows), default=0.0),
            trace=None,
            cache_info=cache_info,
            remaps=sorted(
                list(self.remaps) + list(other.remaps), key=lambda r: r.time
            ),
            start_time=min((r.start_time for r in windows), default=0.0),
            events_processed=self.events_processed + other.events_processed,
            cost_mode=self.cost_mode,
            shards=self.shards + other.shards,
            epochs=epochs,
            heap_high_water=max(self.heap_high_water, other.heap_high_water),
        )

    @classmethod
    def merged(cls, reports: Sequence["MultiStreamReport"]) -> "MultiStreamReport":
        """Fold :meth:`merge` over a non-empty sequence of shard reports."""
        if not reports:
            raise ValueError("at least one report is required to merge")
        result = reports[0]
        for report in reports[1:]:
            result = result.merge(report)
        return result

    def per_stream_rows(self) -> List[Dict[str, object]]:
        """Table rows (one per stream) for the experiment harnesses."""
        return [
            {
                "stream": name,
                "inferences": report.num_inferences,
                "mean_latency_ms": report.mean_latency * 1e3,
                "frames_generated": report.frames_generated,
                "frames_dropped": report.frames_dropped,
                "energy_j": report.total_energy,
            }
            for name, report in self.reports.items()
        ]


class MultiStreamSimulator:
    """Multiplex N heterogeneous traffic streams onto one platform.

    Parameters
    ----------
    platform:
        The shared heterogeneous platform.
    sources:
        The traffic streams.  Stream names must be unique.  Each source's
        ``(start_offset, stop_time)`` window is its churn schedule: the
        stream joins at its offset and leaves at its (possibly truncated)
        end time, so scenario specs with scheduled joins/leaves need no
        extra plumbing here — joins/leaves also drive the remap triggers
        below.
    latency_model / energy_model:
        Shared hardware models (defaults match the pipeline's).
    occupancy_resolution:
        Occupancy bucket width of the shared :class:`LayerCostTable`.  The
        default (1/64) keeps the modelling error well below the run-to-run
        variation of real hardware while making the per-layer cache hit on
        virtually every inference under heavy traffic.
    max_merge_streams:
        Upper bound on cross-stream batching (1 disables merging).
    remap_policy:
        Optional online traffic-adaptive remapping policy.  When set, a
        :class:`RemapTriggered` event fires at every stream join/leave; the
        :class:`AdaptiveMappingClient` (exposed as :attr:`remap_client`)
        re-runs a budgeted NMP search over the networks active at that
        instant and rebinds the affected cost models.  Only streams whose
        optimization level uses NMP participate.
    retain_records:
        Keep the full per-inference record list on every stream report
        (default).  ``False`` keeps only the streaming aggregates — the
        memory-lean mode for very large fleets; traces still work, but
        per-record analyses need the default.
    record_limit:
        With ``retain_records=True``, bound every stream's retained record
        list to its most recent N :class:`~repro.runtime.sim.
        InferenceRecord` entries (``None`` = unbounded).  The streaming
        aggregates keep accounting every record, so report-level statistics
        are unchanged — only the inspectable tail is capped.
    schedule_mode:
        Arrival-scheduling discipline shared by every stream
        (:data:`SCHEDULE_MODES`).  ``"lazy"`` (default) walks per-stream
        arrival cursors — the kernel heap stays O(active streams);
        ``"eager"`` heaps the whole horizon at prime time, kept as the
        equivalence oracle.  Both produce bit-identical reports.
    shards:
        Number of worker kernels the fleet is partitioned across
        (default 1 = the in-process path, bit-identical to the unsharded
        kernel).  With ``shards > 1`` the sources are partitioned by
        ``shard_by``, each shard runs its own :class:`SimulationKernel` /
        :class:`SignatureServer` set / cost tables (in worker processes, or
        inline per ``shard_mode``), shards advance in lockstep through
        epoch barriers of ``epoch_length`` simulated seconds, and the
        per-shard reports are merged with :meth:`MultiStreamReport.merge`.
        See :mod:`repro.runtime.shard` for partitioning and equivalence
        semantics — cross-stream merging always stays within a shard.
    shard_by:
        Partition rule: ``"signature"`` (default) splits whole signature
        groups across shards and models each shard as its own platform
        replica (fleet-of-fleets); ``"platform_group"`` only splits
        PE-disjoint signature components, which keeps the merged report
        bit-identical to the single-process kernel by construction.
    epoch_length:
        Epoch-barrier interval in simulated seconds (``None`` = the fleet
        horizon divided by :data:`~repro.runtime.shard.DEFAULT_EPOCHS`).
    shard_mode:
        ``"process"`` (default) runs shards in worker processes —
        falling back to inline execution where children are unavailable
        (daemonic workers); ``"inline"`` runs the same epoch-lockstep
        protocol sequentially in-process (deterministic tests, 1-core
        machines).
    cost_mode:
        Cost-stack semantics shared by every stream
        (:data:`~repro.runtime.sim.COST_MODES`).  ``"flat"`` (default) is
        the pre-profile scalar path: measured input occupancy on the first
        layer, static modelled sparsity deeper.  ``"profile"`` propagates
        each input's density through the layers and buckets it per layer —
        the recommended mode for mixed-density fleets, where converging
        deep-layer profiles share cost-cache entries across streams and
        DSFA merges (see ``benchmarks/bench_cost_model.py``).
    dataplane:
        Frame transport shared by every stream (:data:`DATAPLANES`).
        ``"stack"`` (default) ships columnar ``(stack, index)`` references
        end to end; ``"frames"`` and ``"reference"`` are the per-frame
        oracle transports used by the equivalence tests and
        ``benchmarks/bench_dataplane.py``.  All three produce bit-identical
        reports.
    kernel_factory / server_factory / cost_model_factory:
        Alternative :class:`~repro.runtime.sim.SimulationKernel` /
        :class:`SignatureServer` / :class:`~repro.runtime.sim.
        NetworkCostModel` constructors.  These exist for the reference
        implementations in :mod:`repro.runtime.legacy` (the pre-refactor
        kernel/server and the scalar-keyed cost oracle) used by the
        equivalence tests and benchmarks; production code leaves them
        unset.
    """

    def __init__(
        self,
        platform: Platform,
        sources: Sequence[StreamSource],
        latency_model: Optional[LatencyModel] = None,
        energy_model: Optional[EnergyModel] = None,
        occupancy_resolution: Optional[float] = 1.0 / 64.0,
        max_merge_streams: int = 4,
        remap_policy: Optional[RemapPolicy] = None,
        retain_records: bool = True,
        record_limit: Optional[int] = None,
        cost_mode: str = "flat",
        dataplane: str = "stack",
        schedule_mode: str = "lazy",
        kernel_factory: Optional[Callable[..., SimulationKernel]] = None,
        server_factory: Optional[Callable[..., SignatureServer]] = None,
        cost_model_factory: Optional[Callable[..., NetworkCostModel]] = None,
        shards: int = 1,
        shard_by: str = "signature",
        epoch_length: Optional[float] = None,
        shard_mode: str = "process",
    ) -> None:
        if not sources:
            raise ValueError("at least one stream source is required")
        names = [s.name for s in sources]
        if len(set(names)) != len(names):
            raise ValueError("stream names must be unique")
        if cost_mode not in COST_MODES:
            raise ValueError(
                f"unknown cost_mode {cost_mode!r}; expected one of {COST_MODES}"
            )
        if dataplane not in DATAPLANES:
            raise ValueError(
                f"unknown dataplane {dataplane!r}; expected one of {DATAPLANES}"
            )
        if schedule_mode not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule_mode {schedule_mode!r}; "
                f"expected one of {SCHEDULE_MODES}"
            )
        if record_limit is not None and record_limit < 1:
            raise ValueError("record_limit must be >= 1 or None")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.shard_by = shard_by
        self.epoch_length = epoch_length
        self.shard_mode = shard_mode
        # The raw per-shard simulator configuration, forwarded verbatim to
        # every shard's MultiStreamSimulator by the sharded runner.
        self._shard_sim_kwargs = dict(
            latency_model=latency_model,
            energy_model=energy_model,
            occupancy_resolution=occupancy_resolution,
            max_merge_streams=max_merge_streams,
            remap_policy=remap_policy,
            retain_records=retain_records,
            record_limit=record_limit,
            cost_mode=cost_mode,
            dataplane=dataplane,
            schedule_mode=schedule_mode,
            kernel_factory=kernel_factory,
            server_factory=server_factory,
            cost_model_factory=cost_model_factory,
        )
        self.platform = platform
        self.sources = list(sources)
        self.table = LayerCostTable(
            latency_model, energy_model, occupancy_resolution=occupancy_resolution
        )
        self.max_merge_streams = max_merge_streams
        self.remap_policy = remap_policy
        self.retain_records = retain_records
        self.record_limit = record_limit
        self.cost_mode = cost_mode
        self.dataplane = dataplane
        self.schedule_mode = schedule_mode
        self.kernel_factory = kernel_factory or SimulationKernel
        self.server_factory = server_factory or SignatureServer
        self.cost_model_factory = cost_model_factory or NetworkCostModel
        self.remap_client = (
            AdaptiveMappingClient(platform, remap_policy)
            if remap_policy is not None
            else None
        )

    # ------------------------------------------------------------------
    def _schedule_remap_triggers(self, kernel: SimulationKernel) -> None:
        """One remap trigger per distinct join/leave instant."""
        triggers = {(source.start_offset, "join") for source in self.sources}
        triggers |= {(source.end_time, "leave") for source in self.sources}
        for time, reason in sorted(triggers):
            kernel.schedule(RemapTriggered(time=time, reason=reason))

    def _active_clients(
        self, clients: List[StreamClient], time: float
    ) -> List[StreamClient]:
        """NMP-enabled streams whose [start_offset, end_time) covers ``time``."""
        eps = 1e-12
        return [
            c
            for c in clients
            if c.config.optimization.uses_nmp
            and c.source.start_offset <= time + eps
            and c.source.end_time > time + eps
        ]

    def _on_remap(self, event: RemapTriggered, clients: List[StreamClient]) -> None:
        assert self.remap_client is not None
        if not self.remap_client.should_remap(event.time, event.reason):
            return
        active = self._active_clients(clients, event.time)
        if not active:
            return
        current: Dict[str, Assignment] = {}
        for client in active:
            deployed = client.cost_model.mapping
            if deployed is not None:
                current.update(deployed.assignments)
        result = self.remap_client.remap(
            [c.source.network for c in active],
            time=event.time,
            reason=event.reason,
            current_assignments=current,
            stream_names=tuple(c.name for c in active),
        )
        if result is None:
            return
        rebound = set()
        for client in active:
            model = client.cost_model
            if id(model) in rebound:
                continue
            model.rebind(result.best_candidate)
            rebound.add(id(model))

    def run(self, trace: Optional[KernelTrace] = None) -> MultiStreamReport:
        """Simulate all streams to completion and return the traffic report.

        With ``shards > 1`` the fleet is partitioned and run through the
        epoch-synced sharded runtime (:mod:`repro.runtime.shard`); the
        single-shard path below is untouched, so ``shards=1`` is
        bit-identical to the pre-sharding kernel.
        """
        if self.shards > 1:
            if trace is not None:
                raise ValueError(
                    "tracing is not supported with shards > 1: each shard "
                    "runs its own kernel and traces do not compose; run "
                    "shards=1 (or trace a shard's fleet separately) instead"
                )
            from .shard import ShardedSimulator  # local: shard imports streams

            return ShardedSimulator(
                self.platform,
                self.sources,
                shards=self.shards,
                shard_by=self.shard_by,
                epoch_length=self.epoch_length,
                mode=self.shard_mode,
                **self._shard_sim_kwargs,
            ).run()
        kernel, clients, remaps_before = self._setup(trace)
        end_time = kernel.run()
        return self._finalize(kernel, clients, remaps_before, trace, end_time)

    def _setup(
        self, trace: Optional[KernelTrace] = None
    ) -> Tuple[SimulationKernel, List[StreamClient], int]:
        """Build the kernel, servers and clients and prime every stream.

        Split out of :meth:`run` so the sharded runtime can drive the primed
        kernel epoch by epoch (``kernel.run(until=...)``) with exactly the
        construction sequence — and therefore exactly the event ordering —
        of the single-process path.
        """
        kernel = self.kernel_factory(trace=trace)
        cost_models: Dict[tuple, NetworkCostModel] = {}
        servers: Dict[tuple, SignatureServer] = {}
        clients: List[StreamClient] = []
        for source in self.sources:
            # Resolve the signature first: constructing (and resolving) a
            # full cost model per source just to discard it when the
            # signature already had a server wastes fleet start-up time.
            signature = NetworkCostModel.signature_for(
                source.network, source.config, source.mapping
            )
            if signature not in servers:
                cost_models[signature] = self.cost_model_factory(
                    source.network,
                    self.platform,
                    config=source.config,
                    mapping=source.mapping,
                    table=self.table,
                    cost_mode=self.cost_mode,
                )
                servers[signature] = self.server_factory(
                    kernel,
                    cost_models[signature],
                    name=f"server:{source.network.name}:{len(servers)}",
                    max_merge_streams=self.max_merge_streams,
                )
            clients.append(
                StreamClient(
                    source,
                    kernel,
                    executor=servers[signature],
                    cost_model=cost_models[signature],
                    keep_records=self.retain_records,
                    dataplane=self.dataplane,
                    schedule_mode=self.schedule_mode,
                    record_limit=self.record_limit,
                )
            )
        remaps_before = 0
        if self.remap_client is not None:
            remaps_before = len(self.remap_client.records)
            self.remap_client.reset_cooldown()
            kernel.on(
                RemapTriggered, lambda event: self._on_remap(event, clients)
            )
            self._schedule_remap_triggers(kernel)
        for client in clients:
            client.prime()
        return kernel, clients, remaps_before

    def _finalize(
        self,
        kernel: SimulationKernel,
        clients: List[StreamClient],
        remaps_before: int,
        trace: Optional[KernelTrace],
        end_time: float,
    ) -> MultiStreamReport:
        """Assemble the traffic report of a fully drained kernel."""
        remaps = (
            list(self.remap_client.records[remaps_before:])
            if self.remap_client is not None
            else []
        )
        return MultiStreamReport(
            reports={c.name: c.report for c in clients},
            end_time=end_time,
            trace=trace,
            cache_info=self.table.cache_info(),
            remaps=remaps,
            start_time=min(s.start_offset for s in self.sources),
            events_processed=kernel.events_processed,
            cost_mode=self.cost_mode,
            heap_high_water=kernel.heap_high_water,
        )
