"""Traffic streams and the multi-stream traffic simulator.

A :class:`StreamSource` wraps one traffic source — an
:class:`~repro.events.datasets.EventSequence`, the network that consumes it,
and its :class:`~repro.core.config.EvEdgeConfig` (plus an optional NMP
mapping and a start offset) — into something the simulation kernel can
schedule.  :class:`StreamClient` is the per-stream protocol driver: it turns
``FrameReady`` events into DSFA pushes (or the bounded-queue drop logic of
the no-DSFA path), emits ``DispatchBatch`` events and accounts the resulting
``InferenceDone`` records into a per-stream
:class:`~repro.runtime.sim.PipelineReport`.

Two executors give dispatches their hardware semantics:

* :class:`SerialExecutor` — the whole platform is one serial accelerator
  (the seed pipeline's scalar ``busy_until``); dispatches queue behind each
  other.  ``EvEdgePipeline.run`` uses this to stay report-for-report
  identical with the seed.
* :class:`SignatureServer` — used by :class:`MultiStreamSimulator`; one
  server per distinct (network, mapping, config) signature, occupying the
  PEs its mapping touches.  Dispatches arriving while those PEs are busy
  wait in a bounded per-stream pending queue (oldest entries are evicted
  with ``QueueEvict`` once a stream exceeds its ``inference_queue_depth``)
  and are merged — cross-stream batching — into one batched inference when
  the devices free up.

:class:`MultiStreamSimulator` multiplexes N heterogeneous streams onto one
:class:`~repro.hw.pe.Platform` with per-PE busy tracking, sharing a single
:class:`~repro.runtime.sim.LayerCostTable` across all streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import EvEdgeConfig
from ..core.dsfa import DynamicSparseFrameAggregator
from ..core.e2sf import Event2SparseFrameConverter
from ..core.nmp.candidate import MappingCandidate
from ..events.datasets import EventSequence
from ..frames.sparse import SparseFrame, SparseFrameBatch
from ..hw.energy import EnergyModel
from ..hw.latency import LatencyModel
from ..hw.pe import Platform
from ..nn.graph import LayerGraph
from .sim import (
    DispatchBatch,
    FrameReady,
    InferenceDone,
    InferenceRecord,
    LayerCostTable,
    NetworkCostModel,
    PipelineReport,
    QueueEvict,
    SimulationKernel,
    StreamEnd,
)
from .tracer import KernelTrace

__all__ = [
    "StreamSource",
    "StreamClient",
    "SerialExecutor",
    "SignatureServer",
    "MultiStreamReport",
    "MultiStreamSimulator",
]


@dataclass
class StreamSource:
    """One traffic source: an event sequence feeding one network.

    Attributes
    ----------
    name:
        Unique stream name within a simulation (e.g. ``"cam0:spikeflownet"``).
    sequence:
        The recorded/generated event sequence driving the stream.
    network:
        The network that consumes the stream's sparse frames.
    config:
        Pipeline configuration (optimization level, E2SF bins, DSFA knobs).
    mapping:
        Optional NMP mapping used when the config enables NMP.
    start_offset:
        Shift (seconds) applied to the stream's arrival times, so traffic
        from many sensors can be phase-staggered on one platform.
    """

    name: str
    sequence: EventSequence
    network: LayerGraph
    config: EvEdgeConfig = field(default_factory=EvEdgeConfig)
    mapping: Optional[MappingCandidate] = None
    start_offset: float = 0.0

    def generate_frames(self) -> List[Tuple[float, SparseFrame]]:
        """Render the stream as ``(arrival_time, sparse_frame)`` pairs.

        A frame becomes available when its event bin closes (``t_end``),
        shifted by the stream's ``start_offset``.
        """
        converter = Event2SparseFrameConverter(self.config.num_bins)
        timestamps = self.sequence.frame_timestamps
        out: List[Tuple[float, SparseFrame]] = []
        for i in range(self.sequence.num_intervals):
            frames = converter.convert(
                self.sequence.events, float(timestamps[i]), float(timestamps[i + 1])
            )
            for frame in frames:
                out.append((frame.t_end + self.start_offset, frame))
        return out

    @property
    def end_time(self) -> float:
        """Kernel time of the stream's last grayscale frame anchor."""
        timestamps = self.sequence.frame_timestamps
        if timestamps.size == 0:
            return self.start_offset
        return float(timestamps[-1]) + self.start_offset


class SerialExecutor:
    """Whole-platform serial accelerator (the seed's scalar ``busy_until``).

    Every dispatch is queued immediately: it starts at
    ``max(dispatch_time, busy_until)`` and occupies the single shared
    resource until it completes, regardless of which PEs the mapping uses —
    single-task execution is serial end to end.
    """

    def __init__(self, kernel: SimulationKernel, resource: str = "platform") -> None:
        self.kernel = kernel
        self.resource = resource

    def busy_until(self, client: "StreamClient") -> float:
        """Time the accelerator frees up."""
        return self.kernel.busy_until(self.resource)

    def dispatch(self, client: "StreamClient", batch: SparseFrameBatch, time: float) -> None:
        """Execute ``batch`` for ``client``, queuing behind earlier work."""
        occupancy = batch.mean_density if client.cost_model.uses_sparse else 1.0
        latency, energy = client.cost_model.inference_cost(
            max(occupancy, 1e-4), max(len(batch), 1)
        )
        start, end = self.kernel.acquire((self.resource,), time, latency)
        client.note_dispatch(latency)
        record = InferenceRecord(
            dispatch_time=time,
            start_time=start,
            end_time=end,
            num_frames=len(batch),
            occupancy=occupancy,
            energy=energy,
        )
        self.kernel.schedule(
            InferenceDone(time=end, stream=client.name, records=(record,))
        )


@dataclass
class _PendingDispatch:
    client: "StreamClient"
    batch: SparseFrameBatch
    time: float


class SignatureServer:
    """Serial server for all streams sharing one network signature.

    The server occupies the PEs its cost model's mapping uses.  A dispatch
    arriving while the server is idle executes immediately; otherwise it
    waits in a pending queue bounded per stream by that stream's
    ``inference_queue_depth`` (the oldest pending entry is evicted when the
    bound is exceeded).  When an inference completes, up to
    ``max_merge_streams`` pending dispatches are concatenated into one
    batched inference — cross-stream batching amortises kernel-launch and
    weight-traffic costs exactly like DSFA's within-stream merging.
    """

    def __init__(
        self,
        kernel: SimulationKernel,
        cost_model: NetworkCostModel,
        name: str,
        max_merge_streams: int = 4,
    ) -> None:
        if max_merge_streams < 1:
            raise ValueError("max_merge_streams must be >= 1")
        self.kernel = kernel
        self.cost_model = cost_model
        self.name = name
        self.max_merge_streams = max_merge_streams
        self.pending: List[_PendingDispatch] = []
        self.inferences = 0
        self.merged_dispatches = 0
        kernel.on(InferenceDone, self._on_done, stream=name)

    # ------------------------------------------------------------------
    def busy_until(self, client: "StreamClient") -> float:
        """Time every PE of this server's mapping frees up."""
        return self.kernel.busy_until(*self.cost_model.pes_used)

    def dispatch(self, client: "StreamClient", batch: SparseFrameBatch, time: float) -> None:
        """Execute immediately when idle, else enqueue (bounded per stream)."""
        busy = self.busy_until(client)
        if not self.pending and busy <= time:
            self._execute([_PendingDispatch(client, batch, time)], time)
            return
        mine = [p for p in self.pending if p.client is client]
        if len(mine) >= client.queue_depth:
            oldest = mine[0]
            self.pending.remove(oldest)
            client.report.frames_dropped += len(oldest.batch)
            self.kernel.schedule(
                QueueEvict(
                    time=time,
                    stream=client.name,
                    num_frames=len(oldest.batch),
                    reason="queue-full",
                )
            )
        self.pending.append(_PendingDispatch(client, batch, time))
        # The PEs may be held by a *different* server (shared devices), whose
        # completion events never reach this server's stream — schedule an
        # explicit wake-up at the busy frontier so the queue always drains.
        self.kernel.schedule(
            InferenceDone(time=max(busy, time), stream=self.name, records=())
        )

    # ------------------------------------------------------------------
    def _execute(self, members: List[_PendingDispatch], ready_time: float) -> None:
        combined = SparseFrameBatch.concatenate([m.batch for m in members])
        sparse = self.cost_model.uses_sparse
        occupancy = combined.mean_density if sparse else 1.0
        latency, energy = self.cost_model.inference_cost(
            max(occupancy, 1e-4), max(len(combined), 1)
        )
        start, end = self.kernel.acquire(self.cost_model.pes_used, ready_time, latency)
        self.inferences += 1
        if len(members) > 1:
            self.merged_dispatches += len(members)
        total_frames = max(len(combined), 1)
        for member in members:
            share = len(member.batch) / total_frames
            record = InferenceRecord(
                dispatch_time=member.time,
                start_time=start,
                end_time=end,
                num_frames=len(member.batch),
                occupancy=member.batch.mean_density if sparse else 1.0,
                energy=energy * share,
            )
            member.client.note_dispatch(latency)
            self.kernel.schedule(
                InferenceDone(time=end, stream=member.client.name, records=(record,))
            )
        # The server's own completion event drives pending-queue draining.
        self.kernel.schedule(InferenceDone(time=end, stream=self.name, records=()))

    def _on_done(self, event: InferenceDone) -> None:
        if not self.pending:
            return
        busy = self.busy_until(None)
        if busy > event.time:
            # A server sharing one of our PEs is still running; retry when
            # the devices free up.
            self.kernel.schedule(
                InferenceDone(time=busy, stream=self.name, records=())
            )
            return
        members = self.pending[: self.max_merge_streams]
        del self.pending[: self.max_merge_streams]
        self._execute(members, event.time)


class StreamClient:
    """Per-stream protocol driver on the simulation kernel.

    Replays the exact frame-handling protocol of the seed pipeline: DSFA
    buffering with hardware-availability dispatch when enabled, otherwise
    per-frame execution with the bounded-backlog drop rule.
    """

    def __init__(
        self,
        source: StreamSource,
        kernel: SimulationKernel,
        executor,
        cost_model: NetworkCostModel,
    ) -> None:
        self.source = source
        self.name = source.name
        self.kernel = kernel
        self.executor = executor
        self.cost_model = cost_model
        self.config = source.config
        self.queue_depth = source.config.dsfa.inference_queue_depth
        self.report = PipelineReport()
        self.aggregator = (
            DynamicSparseFrameAggregator(source.config.dsfa)
            if source.config.optimization.uses_dsfa
            else None
        )
        self._last_duration = 0.0
        kernel.on(FrameReady, self._on_frame, stream=self.name)
        kernel.on(DispatchBatch, self._on_dispatch, stream=self.name)
        kernel.on(InferenceDone, self._on_done, stream=self.name)
        kernel.on(StreamEnd, self._on_stream_end, stream=self.name)

    # ------------------------------------------------------------------
    def prime(self) -> None:
        """Schedule the stream's frame arrivals and end-of-stream flush."""
        frames = self.source.generate_frames()
        self.report.frames_generated += len(frames)
        for arrival, frame in frames:
            self.kernel.schedule(FrameReady(time=arrival, stream=self.name, frame=frame))
        if frames:
            # The last bin's computed t_end can differ from the final
            # grayscale timestamp by a few ulps; the flush must still come
            # after every frame arrival.
            last_arrival = frames[-1][0]
            self.kernel.schedule(
                StreamEnd(
                    time=max(self.source.end_time, last_arrival), stream=self.name
                )
            )

    def note_dispatch(self, duration: float) -> None:
        """Record the duration of the stream's most recently started inference."""
        self._last_duration = duration

    # ------------------------------------------------------------------
    def _on_frame(self, event: FrameReady) -> None:
        arrival = event.time
        frame = event.frame
        if self.aggregator is not None:
            hardware_available = arrival >= self.executor.busy_until(self)
            # DSFA's internal inference queue (and its discarded_frames
            # counter) is not consumed here: every dispatched batch executes
            # immediately, so its evictions are bookkeeping, not real drops.
            batch = self.aggregator.push(frame, hardware_available=hardware_available)
            if batch is not None:
                self.report.frames_merged += len(batch)
                self.kernel.schedule(
                    DispatchBatch(time=arrival, stream=self.name, batch=batch)
                )
            return
        # Without DSFA every frame is processed individually.  A real
        # deployment bounds its input queue, so when the backlog exceeds
        # ``inference_queue_depth`` inferences the oldest frame is dropped
        # instead of queued forever.
        backlog = self.executor.busy_until(self) - arrival
        if backlog > self.queue_depth * max(self._last_duration, 1e-9):
            self.report.frames_dropped += 1
            self.kernel.schedule(
                QueueEvict(time=arrival, stream=self.name, num_frames=1, reason="backlog")
            )
            return
        self.kernel.schedule(
            DispatchBatch(
                time=arrival, stream=self.name, batch=SparseFrameBatch([frame])
            )
        )

    def _on_stream_end(self, event: StreamEnd) -> None:
        if self.aggregator is None:
            return
        batch = self.aggregator.flush()
        if batch is not None:
            self.report.frames_merged += len(batch)
            # The flush is anchored to the final grayscale timestamp (the
            # seed's behaviour), not to the possibly ulp-later flush event.
            self.kernel.schedule(
                DispatchBatch(
                    time=self.source.end_time, stream=self.name, batch=batch
                )
            )

    def _on_dispatch(self, event: DispatchBatch) -> None:
        self.executor.dispatch(self, event.batch, event.time)

    def _on_done(self, event: InferenceDone) -> None:
        self.report.records.extend(event.records)


# ----------------------------------------------------------------------
# multi-stream traffic simulation
# ----------------------------------------------------------------------
@dataclass
class MultiStreamReport:
    """Per-stream and aggregate statistics of one traffic simulation."""

    reports: Dict[str, PipelineReport]
    end_time: float
    trace: Optional[KernelTrace] = None
    cache_info: Optional[Dict[str, int]] = None

    @property
    def num_streams(self) -> int:
        """Number of simulated streams."""
        return len(self.reports)

    @property
    def total_inferences(self) -> int:
        """Network invocations across all streams (merged runs count once per stream)."""
        return sum(r.num_inferences for r in self.reports.values())

    @property
    def frames_generated(self) -> int:
        """Sparse frames produced across all streams."""
        return sum(r.frames_generated for r in self.reports.values())

    @property
    def frames_dropped(self) -> int:
        """Frames dropped by backlog bounds across all streams."""
        return sum(r.frames_dropped for r in self.reports.values())

    @property
    def total_energy(self) -> float:
        """Total energy in joules across all streams."""
        return float(sum(r.total_energy for r in self.reports.values()))

    @property
    def makespan(self) -> float:
        """Completion time of the last inference across all streams."""
        return max((r.total_time for r in self.reports.values()), default=0.0)

    @property
    def throughput(self) -> float:
        """Processed (non-dropped) frames per second of simulated time."""
        processed = self.frames_generated - self.frames_dropped
        makespan = self.makespan
        if makespan <= 0:
            return 0.0
        return processed / makespan

    @property
    def mean_latency(self) -> float:
        """Mean dispatch-to-completion latency across every inference."""
        latencies = [
            r.latency for report in self.reports.values() for r in report.records
        ]
        if not latencies:
            return 0.0
        return float(np.mean(latencies))

    def per_stream_rows(self) -> List[Dict[str, object]]:
        """Table rows (one per stream) for the experiment harnesses."""
        return [
            {
                "stream": name,
                "inferences": report.num_inferences,
                "mean_latency_ms": report.mean_latency * 1e3,
                "frames_generated": report.frames_generated,
                "frames_dropped": report.frames_dropped,
                "energy_j": report.total_energy,
            }
            for name, report in self.reports.items()
        ]


class MultiStreamSimulator:
    """Multiplex N heterogeneous traffic streams onto one platform.

    Parameters
    ----------
    platform:
        The shared heterogeneous platform.
    sources:
        The traffic streams.  Stream names must be unique.
    latency_model / energy_model:
        Shared hardware models (defaults match the pipeline's).
    occupancy_resolution:
        Occupancy bucket width of the shared :class:`LayerCostTable`.  The
        default (1/64) keeps the modelling error well below the run-to-run
        variation of real hardware while making the per-layer cache hit on
        virtually every inference under heavy traffic.
    max_merge_streams:
        Upper bound on cross-stream batching (1 disables merging).
    """

    def __init__(
        self,
        platform: Platform,
        sources: Sequence[StreamSource],
        latency_model: Optional[LatencyModel] = None,
        energy_model: Optional[EnergyModel] = None,
        occupancy_resolution: Optional[float] = 1.0 / 64.0,
        max_merge_streams: int = 4,
    ) -> None:
        if not sources:
            raise ValueError("at least one stream source is required")
        names = [s.name for s in sources]
        if len(set(names)) != len(names):
            raise ValueError("stream names must be unique")
        self.platform = platform
        self.sources = list(sources)
        self.table = LayerCostTable(
            latency_model, energy_model, occupancy_resolution=occupancy_resolution
        )
        self.max_merge_streams = max_merge_streams

    def run(self, trace: Optional[KernelTrace] = None) -> MultiStreamReport:
        """Simulate all streams to completion and return the traffic report."""
        kernel = SimulationKernel(trace=trace)
        cost_models: Dict[tuple, NetworkCostModel] = {}
        servers: Dict[tuple, SignatureServer] = {}
        clients: List[StreamClient] = []
        for source in self.sources:
            model = NetworkCostModel(
                source.network,
                self.platform,
                config=source.config,
                mapping=source.mapping,
                table=self.table,
            )
            signature = model.signature()
            if signature not in servers:
                cost_models[signature] = model
                servers[signature] = SignatureServer(
                    kernel,
                    model,
                    name=f"server:{source.network.name}:{len(servers)}",
                    max_merge_streams=self.max_merge_streams,
                )
            clients.append(
                StreamClient(
                    source,
                    kernel,
                    executor=servers[signature],
                    cost_model=cost_models[signature],
                )
            )
        for client in clients:
            client.prime()
        end_time = kernel.run()
        return MultiStreamReport(
            reports={c.name: c.report for c in clients},
            end_time=end_time,
            trace=trace,
            cache_info=self.table.cache_info(),
        )
