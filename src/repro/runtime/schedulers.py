"""Baseline mapping policies: all-GPU, RR-Network and RR-Layer.

The paper compares the Network Mapper against

* an **all-GPU** implementation (the single-task baseline of Figure 8): every
  layer of every network runs on the GPU at full precision on dense frames;
* **RR-Network** (Figure 9): a coarse-grained round-robin policy that assigns
  each *network* to a processing element, cycling through the PEs;
* **RR-Layer** (Figure 9): a fine-grained round-robin policy that assigns
  each *layer* to a processing element in turn.

All three produce :class:`~repro.core.nmp.candidate.MappingCandidate` objects
so they can be evaluated by exactly the same list scheduler as NMP.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.nmp.candidate import Assignment, MappingCandidate
from ..hw.pe import Platform, ProcessingElement
from ..nn.graph import MultiTaskGraph
from ..nn.quantization import Precision

__all__ = ["all_gpu_mapping", "rr_network_mapping", "rr_layer_mapping"]


def _precision_on(pe: ProcessingElement, requested: Precision) -> Precision:
    """The requested precision if supported, else the device's highest."""
    if pe.supports_precision(requested):
        return requested
    return pe.highest_supported_precision()


def all_gpu_mapping(
    graph: MultiTaskGraph,
    platform: Platform,
    precision: Precision = Precision.FP32,
) -> MappingCandidate:
    """Map every compute layer to the GPU at the requested precision."""
    gpu = platform.gpu()
    chosen = _precision_on(gpu, precision)
    return MappingCandidate(
        {node: Assignment(gpu.name, chosen) for node in graph.compute_nodes()}
    )


def _round_robin_elements(
    platform: Platform, devices: Optional[List[str]]
) -> List[ProcessingElement]:
    """The devices a round-robin policy cycles through.

    By default all PEs are used; callers may restrict the cycle (e.g. to the
    GPU + DLA pair TensorRT deploys on) by naming the devices explicitly.
    """
    if devices is None:
        return list(platform)
    if not devices:
        raise ValueError("devices list must not be empty")
    return [platform.pe(name) for name in devices]


def rr_network_mapping(
    graph: MultiTaskGraph,
    platform: Platform,
    precision: Precision = Precision.FP32,
    devices: Optional[List[str]] = None,
) -> MappingCandidate:
    """Round-robin at network granularity.

    Each network is assigned to the next processing element in a cyclic
    order.  Layers a device cannot execute (spiking layers on the DLA) fall
    back to the GPU, which is what a practitioner would do on a real board.
    """
    gpu = platform.gpu()
    assignments: Dict[str, Assignment] = {}
    elements = _round_robin_elements(platform, devices)
    for index, task in enumerate(graph.tasks):
        pe = elements[index % len(elements)]
        for node in graph.compute_nodes():
            if graph.network_of(node) != task.name:
                continue
            spec = graph.spec(node)
            target = pe if pe.supports_layer(spec) else gpu
            assignments[node] = Assignment(target.name, _precision_on(target, precision))
    return MappingCandidate(assignments)


def rr_layer_mapping(
    graph: MultiTaskGraph,
    platform: Platform,
    precision: Precision = Precision.FP32,
    devices: Optional[List[str]] = None,
) -> MappingCandidate:
    """Round-robin at layer granularity.

    Layers are assigned to processing elements cyclically in topological
    order; layers the chosen device cannot execute move on to the next
    capable device in the cycle.
    """
    assignments: Dict[str, Assignment] = {}
    elements = _round_robin_elements(platform, devices)
    cursor = 0
    for node in graph.compute_nodes():
        spec = graph.spec(node)
        chosen: Optional[ProcessingElement] = None
        for offset in range(len(elements)):
            pe = elements[(cursor + offset) % len(elements)]
            if pe.supports_layer(spec):
                chosen = pe
                cursor = (cursor + offset + 1) % len(elements)
                break
        if chosen is None:
            chosen = platform.gpu()
        assignments[node] = Assignment(chosen.name, _precision_on(chosen, precision))
    return MappingCandidate(assignments)
