"""Sharded multiprocess runtime: epoch-synced worker kernels for 10k+ fleets.

One Python heap and one GIL cap how many streams a single
:class:`~repro.runtime.sim.SimulationKernel` can sustain regardless of
per-event cost.  This module partitions a fleet's
:class:`~repro.runtime.streams.StreamSource`s into *shards* that each own
their :class:`~repro.runtime.executor.SignatureServer`s,
:class:`~repro.runtime.sim.NetworkCostModel`s and
:class:`~repro.runtime.sim.LayerCostTable` outright, runs one kernel per
shard (worker processes, or inline), and merges the per-shard streaming
reports with :meth:`~repro.runtime.streams.MultiStreamReport.merge`.

**Partitioning rules.**  The unit of partitioning is the *signature group*
— every stream sharing one (network, mapping, config) signature — because
:class:`SignatureServer` only ever merges dispatches within a signature: a
signature-disjoint partition needs no cross-shard event traffic at all.
Two rules are available:

* ``by="signature"`` (default) — signature groups are greedily balanced
  across the requested shard count (largest group first onto the lightest
  shard; deterministic).  Each shard tracks busy time on its *own* kernel,
  so signatures that share a PE name but land on different shards stop
  contending: the shards model replicas of the platform (fleet-of-fleets),
  which is the scaling semantics the 10k-stream benchmark tiers measure.
* ``by="platform_group"`` — signature groups are first merged into
  connected components over shared PEs and only whole components are
  distributed.  Shards are then PE-disjoint by construction, so the merged
  report is **bit-identical** to the single-process kernel (the
  equivalence the seeded tests pin); the shard count is capped at the
  number of components.

**Epoch-barrier time sync.**  Shards must still agree on time for
platform-level accounting, so shards advance in lockstep through epochs of
``epoch_length`` simulated seconds: each shard runs its kernel up to the
epoch boundary, publishes an :class:`EpochSummary` (cumulative events /
inferences / drops plus its per-resource busy frontier) and blocks until
every shard reached the barrier.  The protocol is *conservative* — with a
signature-disjoint partition no cross-shard event can exist, so pausing a
kernel at a barrier never reorders its heap and the merged result is
independent of the epoch length (property-tested).  The summaries are the
hook later cross-shard consumers (fault events, admission control, global
telemetry) attach to; :func:`epoch_rows` folds them into one platform-level
per-epoch timeline.

**Limitations.**  Cross-stream merging stays within a shard (it already
stayed within a signature, and signatures never straddle shards).  Under
``by="signature"``, PE contention between different signatures is not
modelled across shards — use ``by="platform_group"`` when single-platform
fidelity matters more than scale.  Traces do not compose across kernels,
so sharded runs do not accept a trace.
"""

from __future__ import annotations

import math
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .sim import NetworkCostModel
from .streams import MultiStreamReport, MultiStreamSimulator, StreamSource

__all__ = [
    "DEFAULT_EPOCHS",
    "ShardPlan",
    "EpochSummary",
    "signature_groups",
    "partition_sources",
    "epoch_rows",
    "ShardedSimulator",
]

# Epochs a fleet's horizon is divided into when no epoch length is given:
# few enough barriers to stay off the hot path, frequent enough that the
# per-epoch platform accounting resolves the load curve.
DEFAULT_EPOCHS = 8

PARTITION_RULES = ("signature", "platform_group")


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """Deterministic fleet partition: source indices per shard.

    ``assignments[s]`` are the (ascending) indices into the source list
    owned by shard ``s``; every source appears in exactly one shard and
    streams sharing a signature always land together.  ``num_shards`` can
    be smaller than ``requested`` when there are fewer partition units
    (signature groups, or PE-connected components) than shards asked for.
    """

    assignments: Tuple[Tuple[int, ...], ...]
    by: str
    requested: int

    @property
    def num_shards(self) -> int:
        return len(self.assignments)

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(len(indices) for indices in self.assignments)


def signature_groups(sources: Sequence[StreamSource]) -> List[List[int]]:
    """Source indices grouped by cost-surface signature, in first-appearance
    order — the indivisible units of any shard partition."""
    groups: Dict[tuple, List[int]] = {}
    for index, source in enumerate(sources):
        signature = NetworkCostModel.signature_for(
            source.network, source.config, source.mapping
        )
        groups.setdefault(signature, []).append(index)
    return list(groups.values())


def _platform_group_units(
    sources: Sequence[StreamSource],
    groups: List[List[int]],
    platform,
) -> List[List[int]]:
    """Merge signature groups into connected components over shared PEs.

    Resolving one :class:`NetworkCostModel` per signature yields the PE set
    its mapping occupies; groups whose PE sets intersect are unioned.  Only
    whole components may move between shards, which is what makes a
    ``platform_group`` partition bit-identical to the single-process run.
    """
    pe_sets = []
    for group in groups:
        source = sources[group[0]]
        model = NetworkCostModel(
            source.network, platform, config=source.config, mapping=source.mapping
        )
        pe_sets.append(set(model.pes_used))
    parent = list(range(len(groups)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            if pe_sets[i] & pe_sets[j]:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[max(ri, rj)] = min(ri, rj)
    components: Dict[int, List[int]] = {}
    for i, group in enumerate(groups):
        components.setdefault(find(i), []).extend(group)
    return [components[root] for root in sorted(components)]


def partition_sources(
    sources: Sequence[StreamSource],
    shards: int,
    by: str = "signature",
    platform=None,
) -> ShardPlan:
    """Partition a fleet into at most ``shards`` balanced, disjoint shards.

    Units (signature groups, or PE-connected components for
    ``by="platform_group"``) are assigned largest-first onto the currently
    lightest shard — a pure function of the source list, so the same fleet
    always shards the same way in every process.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if by not in PARTITION_RULES:
        raise ValueError(f"unknown partition rule {by!r}; expected one of {PARTITION_RULES}")
    units = signature_groups(sources)
    if by == "platform_group":
        if platform is None:
            raise ValueError("platform_group partitioning requires the platform")
        units = _platform_group_units(sources, units, platform)
    num_shards = min(shards, len(units))
    order = sorted(range(len(units)), key=lambda u: (-len(units[u]), u))
    loads = [0] * num_shards
    buckets: List[List[int]] = [[] for _ in range(num_shards)]
    for u in order:
        target = min(range(num_shards), key=lambda s: (loads[s], s))
        buckets[target].extend(units[u])
        loads[target] += len(units[u])
    return ShardPlan(
        assignments=tuple(tuple(sorted(bucket)) for bucket in buckets),
        by=by,
        requested=shards,
    )


# ----------------------------------------------------------------------
# epoch-barrier protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EpochSummary:
    """One shard's state at an epoch barrier (cumulative counters).

    ``t_end`` is the nominal epoch boundary for interior epochs and the
    shard's actual final kernel time for the closing epoch; ``busy`` is the
    per-resource busy frontier — the platform-level occupancy exchange the
    barrier exists for.  Counters are cumulative since the start of the
    run; :func:`epoch_rows` differences them into per-epoch deltas.
    ``heap_high_water`` is the shard kernel's peak event-heap population so
    far — under lazy arrival cursors it stays O(the shard's active streams)
    at every barrier, and pausing at a barrier cannot lose a stream's
    cursor: the successor arrival is heaped *before* the current frame is
    processed, so the next event is always queued when the epoch closes.
    """

    shard: int
    epoch: int
    t_end: float
    events_processed: int
    inferences: int
    frames_dropped: int
    busy: Dict[str, float]
    heap_high_water: int = 0


def epoch_rows(summaries: Sequence[EpochSummary]) -> List[Dict[str, object]]:
    """Fold per-shard epoch summaries into one platform-level timeline.

    One row per epoch with the per-epoch (not cumulative) event/inference/
    drop totals across shards and the number of shards that reported.
    """
    previous: Dict[int, EpochSummary] = {}
    rows: Dict[int, Dict[str, object]] = {}
    for summary in sorted(summaries, key=lambda s: (s.epoch, s.shard)):
        prev = previous.get(summary.shard)
        row = rows.setdefault(
            summary.epoch,
            {
                "epoch": summary.epoch,
                "t_end": summary.t_end,
                "events": 0,
                "inferences": 0,
                "frames_dropped": 0,
                "shards": 0,
                "heap_high_water": 0,
            },
        )
        row["t_end"] = max(row["t_end"], summary.t_end)
        # Peak heap population is a max (not a delta): the row reports the
        # worst shard's high-water mark as of that barrier.
        row["heap_high_water"] = max(
            row["heap_high_water"], summary.heap_high_water
        )
        row["events"] += summary.events_processed - (prev.events_processed if prev else 0)
        row["inferences"] += summary.inferences - (prev.inferences if prev else 0)
        row["frames_dropped"] += summary.frames_dropped - (
            prev.frames_dropped if prev else 0
        )
        row["shards"] += 1
        previous[summary.shard] = summary
    return [rows[epoch] for epoch in sorted(rows)]


def _summarize(shard_id, epoch, t_end, kernel, clients) -> EpochSummary:
    """Snapshot one shard's cumulative counters at an epoch boundary."""
    inferences = 0
    dropped = 0
    for client in clients:
        inferences += client.report.num_inferences
        dropped += client.report.frames_dropped
    return EpochSummary(
        shard=shard_id,
        epoch=epoch,
        t_end=t_end,
        events_processed=kernel.events_processed,
        inferences=inferences,
        frames_dropped=dropped,
        busy=kernel.resource_busy_times(),
        heap_high_water=kernel.heap_high_water,
    )


def _shard_worker(conn, shard_id, platform, sources, sim_kwargs, boundaries):
    """Worker-process entry point: one shard's epoch-lockstep simulation.

    Runs the shard's kernel to each epoch boundary, sends the summary and
    blocks on the parent's ``"proceed"`` token (the barrier), then drains
    the kernel and ships the shard report.  Module-level so it is picklable
    under spawn start methods; under fork the sources arrive without any
    serialisation cost.
    """
    try:
        simulator = MultiStreamSimulator(platform, sources, **sim_kwargs)
        kernel, clients, remaps_before = simulator._setup(None)
        for epoch, boundary in enumerate(boundaries):
            kernel.run(until=boundary)
            conn.send(("epoch", _summarize(shard_id, epoch, boundary, kernel, clients)))
            token = conn.recv()
            if token != "proceed":
                raise RuntimeError(f"unexpected barrier token {token!r}")
        end_time = kernel.run()
        report = simulator._finalize(kernel, clients, remaps_before, None, end_time)
        final = _summarize(shard_id, len(boundaries), end_time, kernel, clients)
        conn.send(("done", report, final))
    except Exception:  # pragma: no cover - exercised via the parent's error path
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------
class ShardedSimulator:
    """Partition a fleet, run one kernel per shard, merge the reports.

    Parameters
    ----------
    platform:
        The platform model.  Every shard receives the same object (fork) or
        an identical copy (spawn); under ``by="signature"`` each shard's
        kernel tracks its own busy time, i.e. shards behave like platform
        replicas.
    sources:
        The full fleet; partitioned by :func:`partition_sources`.
    shards / shard_by:
        Requested shard count and partition rule.  The effective count may
        be lower (see :class:`ShardPlan`); with one effective shard the run
        collapses to a plain in-process :class:`MultiStreamSimulator` —
        bit-identical to the unsharded kernel.
    epoch_length:
        Barrier interval in simulated seconds; ``None`` divides the fleet
        horizon into :data:`DEFAULT_EPOCHS` epochs.
    mode:
        ``"process"`` — one worker process per shard, epoch barriers over
        pipes (falls back to inline inside daemonic processes, which may
        not fork children — e.g. sweep pool workers).  ``"inline"`` — the
        same lockstep protocol run sequentially in one process: identical
        results, no parallelism, no pickling.
    **sim_kwargs:
        Forwarded verbatim to every shard's :class:`MultiStreamSimulator`.
    """

    def __init__(
        self,
        platform,
        sources: Sequence[StreamSource],
        shards: int = 2,
        shard_by: str = "signature",
        epoch_length: Optional[float] = None,
        mode: str = "process",
        **sim_kwargs,
    ) -> None:
        if mode not in ("process", "inline"):
            raise ValueError(f"unknown shard mode {mode!r}; expected 'process' or 'inline'")
        if epoch_length is not None and epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        self.platform = platform
        self.sources = list(sources)
        self.plan = partition_sources(
            self.sources, shards, by=shard_by, platform=platform
        )
        self.epoch_length = epoch_length
        self.mode = mode
        self.sim_kwargs = dict(sim_kwargs)

    # ------------------------------------------------------------------
    def _boundaries(self) -> List[float]:
        """Interior epoch boundaries over the fleet horizon.

        The closing epoch is the final drain (no ``until``), so a fleet
        whose last events land ulps past the horizon still completes; with
        ``num_epochs <= 1`` there are no barriers at all.
        """
        horizon = max(source.end_time for source in self.sources)
        length = self.epoch_length
        if length is None:
            if horizon <= 0:
                return []
            length = horizon / DEFAULT_EPOCHS
        num_epochs = max(int(math.ceil(horizon / length)), 1)
        return [length * e for e in range(1, num_epochs)]

    def _shard_fleets(self) -> List[List[StreamSource]]:
        return [
            [self.sources[i] for i in indices] for indices in self.plan.assignments
        ]

    def run(self) -> MultiStreamReport:
        """Simulate every shard to completion and merge the shard reports."""
        if self.plan.num_shards == 1:
            return MultiStreamSimulator(
                self.platform, self.sources, **self.sim_kwargs
            ).run()
        boundaries = self._boundaries()
        fleets = self._shard_fleets()
        mode = self.mode
        if mode == "process" and multiprocessing.current_process().daemon:
            # Daemonic workers (e.g. sweep pool processes) may not have
            # children; the inline protocol produces identical results.
            mode = "inline"
        if mode == "inline":
            reports, summaries = self._run_inline(fleets, boundaries)
        else:
            reports, summaries = self._run_process(fleets, boundaries)
        merged = MultiStreamReport.merged(reports)
        merged.epochs = sorted(summaries, key=lambda s: (s.epoch, s.shard))
        return merged

    # ------------------------------------------------------------------
    def _run_inline(
        self, fleets: List[List[StreamSource]], boundaries: List[float]
    ) -> Tuple[List[MultiStreamReport], List[EpochSummary]]:
        """Sequential lockstep: every shard reaches epoch ``e`` before any
        shard enters epoch ``e + 1`` — the barrier, minus the processes."""
        simulators = [
            MultiStreamSimulator(self.platform, fleet, **self.sim_kwargs)
            for fleet in fleets
        ]
        states = [simulator._setup(None) for simulator in simulators]
        summaries: List[EpochSummary] = []
        for epoch, boundary in enumerate(boundaries):
            for shard_id, (kernel, clients, _) in enumerate(states):
                kernel.run(until=boundary)
                summaries.append(
                    _summarize(shard_id, epoch, boundary, kernel, clients)
                )
        reports = []
        for shard_id, (simulator, (kernel, clients, remaps_before)) in enumerate(
            zip(simulators, states)
        ):
            end_time = kernel.run()
            summaries.append(
                _summarize(shard_id, len(boundaries), end_time, kernel, clients)
            )
            reports.append(
                simulator._finalize(kernel, clients, remaps_before, None, end_time)
            )
        return reports, summaries

    def _run_process(
        self, fleets: List[List[StreamSource]], boundaries: List[float]
    ) -> Tuple[List[MultiStreamReport], List[EpochSummary]]:
        """One worker process per shard, barriers over duplex pipes."""
        ctx = multiprocessing.get_context()
        processes = []
        connections = []
        try:
            for shard_id, fleet in enumerate(fleets):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_shard_worker,
                    args=(
                        child_conn,
                        shard_id,
                        self.platform,
                        fleet,
                        self.sim_kwargs,
                        boundaries,
                    ),
                    name=f"shard-{shard_id}",
                    daemon=True,
                )
                process.start()
                child_conn.close()  # EOF in the parent when the worker dies
                processes.append(process)
                connections.append(parent_conn)
            summaries: List[EpochSummary] = []
            for _epoch in range(len(boundaries)):
                # Barrier: collect every shard's summary, then release all.
                for shard_id, conn in enumerate(connections):
                    kind, payload = self._recv(conn, shard_id)
                    if kind != "epoch":
                        raise RuntimeError(
                            f"shard {shard_id}: expected epoch summary, got {kind!r}"
                        )
                    summaries.append(payload)
                for conn in connections:
                    conn.send("proceed")
            reports: List[Optional[MultiStreamReport]] = [None] * len(fleets)
            for shard_id, conn in enumerate(connections):
                kind, *payload = self._recv(conn, shard_id, expect_done=True)
                if kind != "done":
                    raise RuntimeError(
                        f"shard {shard_id}: expected final report, got {kind!r}"
                    )
                reports[shard_id] = payload[0]
                summaries.append(payload[1])
            for process in processes:
                process.join(timeout=60.0)
            return [report for report in reports if report is not None], summaries
        finally:
            for conn in connections:
                conn.close()
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)

    @staticmethod
    def _recv(conn, shard_id: int, expect_done: bool = False):
        """Receive one protocol message, surfacing worker failures."""
        try:
            message = conn.recv()
        except EOFError:
            raise RuntimeError(
                f"shard {shard_id} worker exited without a result"
            ) from None
        if message[0] == "error":
            raise RuntimeError(f"shard {shard_id} worker failed:\n{message[1]}")
        return message
