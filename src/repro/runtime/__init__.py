"""Runtime execution engine: simulation kernel, traffic streams, schedulers."""

from .executor import ExecutionReport, MappedExecutor
from .schedulers import all_gpu_mapping, rr_layer_mapping, rr_network_mapping
from .sim import (
    DispatchBatch,
    FrameReady,
    InferenceDone,
    InferenceRecord,
    LayerCost,
    LayerCostTable,
    NetworkCostModel,
    PipelineReport,
    QueueEvict,
    SimEvent,
    SimulationKernel,
    StreamEnd,
)
from .streams import (
    MultiStreamReport,
    MultiStreamSimulator,
    SerialExecutor,
    SignatureServer,
    StreamClient,
    StreamSource,
)
from .tracer import (
    KernelTrace,
    TraceEntry,
    format_gantt,
    timeline_by_device,
    utilisation,
)

__all__ = [
    "MappedExecutor",
    "ExecutionReport",
    "all_gpu_mapping",
    "rr_network_mapping",
    "rr_layer_mapping",
    "SimEvent",
    "FrameReady",
    "DispatchBatch",
    "InferenceDone",
    "QueueEvict",
    "StreamEnd",
    "SimulationKernel",
    "LayerCost",
    "LayerCostTable",
    "NetworkCostModel",
    "InferenceRecord",
    "PipelineReport",
    "StreamSource",
    "StreamClient",
    "SerialExecutor",
    "SignatureServer",
    "MultiStreamReport",
    "MultiStreamSimulator",
    "KernelTrace",
    "TraceEntry",
    "timeline_by_device",
    "utilisation",
    "format_gantt",
]
