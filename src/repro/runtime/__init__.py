"""Runtime execution engine and baseline scheduling policies."""

from .executor import ExecutionReport, MappedExecutor
from .schedulers import all_gpu_mapping, rr_layer_mapping, rr_network_mapping
from .tracer import format_gantt, timeline_by_device, utilisation

__all__ = [
    "MappedExecutor",
    "ExecutionReport",
    "all_gpu_mapping",
    "rr_network_mapping",
    "rr_layer_mapping",
    "timeline_by_device",
    "utilisation",
    "format_gantt",
]
