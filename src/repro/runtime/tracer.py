"""Execution timelines: kernel event traces and schedule Gantt charts.

Two tracing surfaces live here:

* :class:`KernelTrace` records every event the simulation kernel processes
  (frame arrivals, dispatches, completions, evictions), so any kernel
  client — the single-stream pipeline or the multi-stream traffic
  simulator — gets a per-stream timeline for free.
* The Gantt helpers (:func:`timeline_by_device`, :func:`utilisation`,
  :func:`format_gantt`) render static list-scheduler results, convenient
  for inspecting why one mapping beats another without a plotting stack.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional

from ..core.nmp.scheduler import ScheduledNode, ScheduleResult

__all__ = [
    "TraceEntry",
    "KernelTrace",
    "timeline_by_device",
    "utilisation",
    "format_gantt",
]


@dataclass(frozen=True)
class TraceEntry:
    """One processed kernel event.

    ``profile`` is the resolved per-layer occupancy profile of an
    inference completion (``None`` for every other event kind and for
    server wake-ups) — kept as the event carried it, so calibration can
    re-fit firing fractions from a finished trace.
    """

    time: float
    kind: str
    stream: str
    detail: str = ""
    profile: Optional[tuple] = None


class KernelTrace:
    """Chronological record of the events a simulation kernel processed.

    Pass an instance as the kernel's ``trace`` (or to
    ``EvEdgePipeline.run`` / ``MultiStreamSimulator.run``); after the run it
    holds one :class:`TraceEntry` per processed event.

    Parameters
    ----------
    max_events:
        Ring-buffer bound on retained entries: the trace keeps the **last**
        ``max_events`` processed events and counts every older entry pushed
        out (or never retained) in ``entries_dropped`` — a long-horizon run
        always ends with its newest activity inspectable under a fixed
        memory cap.  ``None`` (the default) retains everything.
    record_details:
        Format each event's payload summary (the default).  ``False`` skips
        the per-event string formatting — the expensive part of tracing a
        large fleet — and stores empty details; timelines, per-stream
        grouping and event counts still work.
    """

    def __init__(
        self, max_events: Optional[int] = None, record_details: bool = True
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1 or None")
        # A bounded trace is a deque ring (appends past the cap evict the
        # oldest entry in O(1)); an unbounded trace stays a plain list.
        self.entries = [] if max_events is None else deque(maxlen=max_events)
        self.max_events = max_events
        self.record_details = record_details
        self.entries_dropped = 0

    @property
    def dropped_entries(self) -> int:
        """Backward-compatible alias of :attr:`entries_dropped`."""
        return self.entries_dropped

    def record(self, event) -> None:
        """Append one kernel event (called by the kernel itself).

        A full ring buffer evicts its oldest entry to make room and bumps
        ``entries_dropped`` — the newest ``max_events`` events are always
        the ones retained.
        """
        if self.max_events is not None and len(self.entries) == self.max_events:
            self.entries_dropped += 1
        profile = getattr(event, "profile", None)
        self.entries.append(
            TraceEntry(
                time=event.time,
                kind=type(event).__name__,
                stream=event.stream,
                detail=event.trace_detail() if self.record_details else "",
                profile=None if profile is None else tuple(profile),
            )
        )

    def __len__(self) -> int:
        return len(self.entries)

    def by_stream(self) -> Dict[str, List[TraceEntry]]:
        """Group entries by the stream that produced them."""
        grouped: Dict[str, List[TraceEntry]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.stream, []).append(entry)
        return grouped

    def counts(self) -> Dict[str, int]:
        """Number of processed events per event kind."""
        out: Dict[str, int] = {}
        for entry in self.entries:
            out[entry.kind] = out.get(entry.kind, 0) + 1
        return out

    def profiles(self) -> List[tuple]:
        """Resolved per-dispatch occupancy profiles, in completion order.

        One tuple per inference completion that carried a profile (server
        wake-ups and non-inference events are skipped) — the input
        :func:`repro.nn.calibration.fit_firing_fractions` consumes.
        """
        return [e.profile for e in self.entries if e.profile is not None]

    @staticmethod
    def _format_profile(profile: tuple) -> str:
        """Compact one-line rendering of a per-dispatch profile.

        Flat profiles show the single measured occupancy; propagated
        profiles show the head of the cascade and the converged deep
        value — the point where mixed-density dispatches start sharing
        deep-layer cache cells is visible as the entries flattening out.
        """
        if not profile:
            return ""
        if all(e is None for e in profile[1:]):
            first = profile[0]
            head = "none" if first is None else f"{first:.4f}"
            return f"occ[{head} flat x{len(profile)}]"
        shown = [f"{e:.4f}" if e is not None else "none" for e in profile[:3]]
        if len(profile) > 4:
            shown.append("..")
        if len(profile) > 3:
            last = profile[-1]
            shown.append(f"{last:.4f}" if last is not None else "none")
        return f"occ[{'>'.join(shown)} x{len(profile)}]"

    def format_log(self, max_rows: int = 40) -> str:
        """Render the first ``max_rows`` retained entries as an event log.

        Inference completions that carried a resolved occupancy profile
        get a compact per-dispatch profile column after the detail text.
        For a saturated ring buffer the retained window is the run's tail,
        so the log shows the oldest *retained* events and reports both the
        ring-evicted and beyond-``max_rows`` counts as hidden.
        """
        if not self.entries:
            return "(empty trace)"
        lines = []
        for entry in islice(self.entries, max_rows):
            detail = entry.detail
            if entry.profile is not None:
                column = self._format_profile(entry.profile)
                detail = f"{detail}  {column}" if detail else column
            lines.append(
                f"{entry.time * 1e3:10.3f} ms  {entry.kind:<14s} "
                f"{entry.stream:<24s} {detail}"
            )
        hidden = max(len(self.entries) - max_rows, 0) + self.entries_dropped
        if hidden > 0:
            lines.append(f"... {hidden} more events")
        return "\n".join(lines)


def timeline_by_device(result: ScheduleResult) -> Dict[str, List[ScheduledNode]]:
    """Group the schedule's timeline entries by execution queue."""
    grouped: Dict[str, List[ScheduledNode]] = {}
    for entry in sorted(result.timeline, key=lambda e: e.start):
        grouped.setdefault(entry.queue, []).append(entry)
    return grouped


def utilisation(result: ScheduleResult) -> Dict[str, float]:
    """Fraction of the makespan each queue spends busy."""
    makespan = result.makespan
    if makespan <= 0:
        return {}
    return {
        queue: busy / makespan for queue, busy in result.device_busy_time().items()
    }


def format_gantt(result: ScheduleResult, width: int = 60, max_rows: int = 40) -> str:
    """Render a simple fixed-width textual Gantt chart of the schedule."""
    makespan = result.makespan
    if makespan <= 0:
        return "(empty schedule)"
    lines = []
    for queue, entries in timeline_by_device(result).items():
        lines.append(f"{queue}:")
        for entry in entries[:max_rows]:
            start = int(width * entry.start / makespan)
            length = max(int(width * entry.duration / makespan), 1)
            bar = " " * start + "#" * length
            lines.append(f"  {bar:<{width + 2}} {entry.node} ({entry.duration * 1e3:.2f} ms)")
        if len(entries) > max_rows:
            lines.append(f"  ... {len(entries) - max_rows} more entries")
    return "\n".join(lines)
