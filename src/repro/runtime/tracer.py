"""Timeline (Gantt) extraction from schedule results.

The experiments and examples use these helpers to render a textual Gantt
chart of which layer ran where — convenient for inspecting why one mapping
beats another without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.nmp.scheduler import ScheduledNode, ScheduleResult

__all__ = ["timeline_by_device", "utilisation", "format_gantt"]


def timeline_by_device(result: ScheduleResult) -> Dict[str, List[ScheduledNode]]:
    """Group the schedule's timeline entries by execution queue."""
    grouped: Dict[str, List[ScheduledNode]] = {}
    for entry in sorted(result.timeline, key=lambda e: e.start):
        grouped.setdefault(entry.queue, []).append(entry)
    return grouped


def utilisation(result: ScheduleResult) -> Dict[str, float]:
    """Fraction of the makespan each queue spends busy."""
    makespan = result.makespan
    if makespan <= 0:
        return {}
    return {
        queue: busy / makespan for queue, busy in result.device_busy_time().items()
    }


def format_gantt(result: ScheduleResult, width: int = 60, max_rows: int = 40) -> str:
    """Render a simple fixed-width textual Gantt chart of the schedule."""
    makespan = result.makespan
    if makespan <= 0:
        return "(empty schedule)"
    lines = []
    for queue, entries in timeline_by_device(result).items():
        lines.append(f"{queue}:")
        for entry in entries[:max_rows]:
            start = int(width * entry.start / makespan)
            length = max(int(width * entry.duration / makespan), 1)
            bar = " " * start + "#" * length
            lines.append(f"  {bar:<{width + 2}} {entry.node} ({entry.duration * 1e3:.2f} ms)")
        if len(entries) > max_rows:
            lines.append(f"  ... {len(entries) - max_rows} more entries")
    return "\n".join(lines)
