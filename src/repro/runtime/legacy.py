"""Pre-refactor reference implementations of the kernel hot path.

The fleet-scale refactor (O(1) event routing in
:class:`~repro.runtime.sim.SimulationKernel`, indexed pending queues and
coalesced wake-ups in :class:`~repro.runtime.executor.SignatureServer`) is
required to be *report-identical*: the same fleet and seed must produce
bit-identical :class:`~repro.runtime.streams.MultiStreamReport` aggregates
before and after.  This module keeps the pre-refactor data structures alive
as oracles so that claim stays machine-checked:

* :class:`LegacyScanKernel` — linear handler-scan delivery: every event
  walks *all* registered handlers of its type and string-compares stream
  names, exactly as the kernel did before the routing table.
* :class:`LegacyListServer` — one flat pending list per server with
  O(queue) scans for enqueue bounding and distinct-stream merge selection,
  plus one scheduled wake-up per enqueued dispatch (the event storm the
  refactor coalesces).
* :class:`ScalarCostModel` — the PR-4 *scalar-keyed* cost stack.  In
  ``cost_mode="flat"`` it is the pre-profile path itself (measured input
  occupancy on the first layer, static modelled sparsity deeper) and must
  produce bit-identical ``MultiStreamReport`` aggregates to the layered
  stack running a uniform (flat) profile — the equivalence mode of the
  per-layer occupancy refactor.  In ``cost_mode="profile"`` it applies the
  *same* propagated semantics but keeps the old caching architecture:
  per-layer occupancies derive from the single quantized input bucket and
  are keyed **raw** (no per-layer bucketing), so every distinct input
  bucket mints its own copy of every layer cell — the memo-thrashing
  behaviour ``benchmarks/bench_cost_model.py`` quantifies against the
  layered stack.
* :class:`ChainCostModel` — the pre-graph *chain-propagated* cost stack
  on the layered caching architecture: profiles come from the serial topo
  chain walk instead of graph propagation.  The divergence tests use it
  to pin that graph propagation is bit-identical on serial networks and
  diverges exactly at DAG join nodes.
* :class:`ReferenceAggregator` — the fully per-frame DSFA driven by the
  ``"reference"`` data plane: placement probes re-merge whole frame lists
  per call (``SparseFrame.add_reference``) and every dispatch merges bucket
  by bucket, with no stack ranges or segmented grouped-reduce anywhere.

Both implement the *current* accounting semantics (per-member latency
shares, the queued-service backlog estimate) on the *old* data structures —
they isolate the performance refactor, not the accounting bugfixes, so the
equivalence tests compare like with like.  ``MultiStreamSimulator(...,
kernel_factory=LegacyScanKernel, server_factory=LegacyListServer)`` runs a
fleet on the legacy path; ``benchmarks/bench_kernel_scaling.py`` uses the
same hooks to report the refactor's speedup.

One oracle deliberately does *not* live here: the eager horizon-wide
arrival scheduler is selected with ``schedule_mode="eager"`` on
:class:`~repro.runtime.streams.StreamClient` /
:class:`~repro.runtime.streams.MultiStreamSimulator` rather than via a
factory, because scheduling discipline is orthogonal to the data
structures — the legacy kernel/server above inherit
:meth:`~repro.runtime.sim.SimulationKernel.schedule` and
:meth:`~repro.runtime.sim.SimulationKernel.reserve_sequences` unchanged and
run under either discipline (heap high-water tracking included), so the
equivalence grid composes freely across both axes.

Like :func:`~repro.core.nmp.scheduler.ExecutionScheduler.schedule_reference`
for the NMP fast path, this is deliberately unoptimized code kept for
verification — do not use it in production clients.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..core.dsfa import (
    BucketStatus,
    DynamicSparseFrameAggregator,
    MergeBucket,
    MergeMode,
)
from ..frames.sparse import SparseFrame, SparseFrameBatch
from ..nn.occupancy import OccupancyProfile
from .executor import SignatureServer, _PendingDispatch
from .sim import (
    InferenceDone,
    NetworkCostModel,
    QueueEvict,
    SimEvent,
    SimulationKernel,
)

__all__ = [
    "LegacyScanKernel",
    "LegacyListServer",
    "ScalarCostModel",
    "ChainCostModel",
    "ReferenceMergeBucket",
    "ReferenceAggregator",
]


class LegacyScanKernel(SimulationKernel):
    """Linear-scan event delivery (the pre-routing-table kernel)."""

    def __init__(self, trace: Optional[object] = None) -> None:
        super().__init__(trace=trace)
        self._legacy_handlers: Dict[
            type, List[Tuple[Optional[str], Callable[[SimEvent], None]]]
        ] = {}

    def on(
        self,
        event_type: type,
        handler: Callable[[SimEvent], None],
        stream: Optional[str] = None,
    ) -> None:
        self._legacy_handlers.setdefault(event_type, []).append((stream, handler))

    def run(self, until: Optional[float] = None) -> float:
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            time, _, _, event = heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            if self.trace is not None:
                self.trace.record(event)
            for stream, handler in self._legacy_handlers.get(type(event), []):
                if stream is None or stream == event.stream:
                    handler(event)
        return self.now


class LegacyListServer(SignatureServer):
    """Flat-list pending queue with per-dispatch wake-ups.

    The accounting operations (eviction order, service-estimate running
    sum, merge member order) are performed in exactly the same order as the
    indexed implementation, so the two produce bit-identical reports; only
    the data-structure costs differ.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pending_list: List[_PendingDispatch] = []
        self._legacy_seq = itertools.count()

    @property
    def pending_count(self) -> int:
        return len(self._pending_list)

    def pending_entries(self) -> List[_PendingDispatch]:
        return list(self._pending_list)

    def dispatch(self, client, batch, time: float) -> None:
        busy = self.busy_until(client)
        if not self._pending_list and busy <= time:
            self._execute([_PendingDispatch(client, batch, time)], time)
            return
        mine = [p for p in self._pending_list if p.client is client]
        if len(mine) >= client.queue_depth:
            oldest = mine[0]
            self._pending_list.remove(oldest)
            self._pending_service -= oldest.service_estimate
            client.report.frames_dropped += len(oldest.batch)
            self.kernel.schedule(
                QueueEvict(
                    time=time,
                    stream=client.name,
                    num_frames=len(oldest.batch),
                    reason="queue-full",
                )
            )
        entry = _PendingDispatch(
            client, batch, time, next(self._legacy_seq), max(client.last_duration, 0.0)
        )
        self._pending_list.append(entry)
        self._pending_service += entry.service_estimate
        # One wake-up per enqueued dispatch: the pre-refactor event storm.
        self.kernel.schedule(
            InferenceDone(time=max(busy, time), stream=self.name, records=())
        )

    def _on_done(self, event: InferenceDone) -> None:
        if not self._pending_list:
            return
        busy = self.busy_until()
        if busy > event.time:
            self.kernel.schedule(
                InferenceDone(time=busy, stream=self.name, records=())
            )
            return
        members: List[_PendingDispatch] = []
        remaining: List[_PendingDispatch] = []
        taken = set()
        for entry in self._pending_list:
            client_id = id(entry.client)
            if client_id not in taken and len(taken) < self.max_merge_streams:
                taken.add(client_id)
                members.append(entry)
            else:
                remaining.append(entry)
        self._pending_list = remaining
        for member in members:
            self._pending_service -= member.service_estimate
        self._execute(members, event.time)


class ScalarCostModel(NetworkCostModel):
    """The PR-4 scalar-keyed cost stack, kept alive as an oracle.

    Two roles:

    * **Equivalence oracle** (``cost_mode="flat"``, the default) — identical
      semantics to the layered stack running a uniform (flat) profile: the
      measured input occupancy drives the first layer and deeper layers use
      their static modelled sparsity, with the whole-network memo keyed on
      the single input bucket.  The report-equivalence tests assert
      bit-identical ``MultiStreamReport`` aggregates between this model and
      the default stack on seeded contended fleets.
    * **Thrash baseline** (``cost_mode="profile"``) — the propagated
      per-layer semantics implemented on the scalar-keyed architecture:
      profiles derive from the quantized input bucket but their entries are
      kept (and keyed) *raw*, with no per-layer bucketing.  Deep-layer
      occupancies of different input buckets are then distinct floats even
      when they have converged to well under a bucket width apart, so every
      input bucket mints its own copy of every layer cell.
      ``benchmarks/bench_cost_model.py`` measures the cache hit-rate gap
      between this stack and the layered one on a mixed-density DSFA fleet.

    Like the other legacy implementations this is deliberately
    unoptimized verification code — do not use it in production clients.
    """

    def _build_profile(self, occ_key):
        if self.cost_mode != "profile" or occ_key is None:
            return super()._build_profile(occ_key)
        if len(self._assignments) <= 1:
            return super()._build_profile(occ_key)
        # Same graph-propagated semantics as the layered stack — the two
        # models differ *only* in caching architecture — but raw entries:
        # no per-layer bucketing.
        return OccupancyProfile.from_graph(self.network, occ_key)

    def _bucket_profile(self, profile):
        # Merge-time combinations stay raw too: the scalar-keyed stack has
        # no per-layer quantization anywhere, including merged dispatches.
        if self.cost_mode == "profile":
            return profile
        return super()._bucket_profile(profile)

    @property
    def _quantize_layers(self) -> bool:
        # Flat mode must key layer cells exactly as PR-4 did (bucketed);
        # profile mode keys the raw propagated occupancies.
        return self.cost_mode != "profile"


class ChainCostModel(NetworkCostModel):
    """The pre-graph *chain-propagated* cost stack, kept alive as an oracle.

    Identical to :class:`~repro.runtime.sim.NetworkCostModel` in every
    architectural respect (per-layer bucketing, layered memoization) but
    builds its profiles with the serial chain walk
    (:func:`~repro.nn.occupancy.propagate_occupancy_chain`) instead of
    graph propagation.  The divergence tests pin the graph refactor's
    semantics against it:

    * **serial networks** — graph propagation must be bit-identical to
      this model (every node has at most one predecessor, so the walks
      run the same float ops);
    * **DAG networks** — the models *must* diverge exactly at the join
      nodes, where the chain walk dilates whichever spec happened to
      precede the join in topological order and ignores the other
      branches.

    Like the other legacy implementations this is deliberately
    unoptimized verification code — do not use it in production clients.
    """

    def _build_profile(self, occ_key):
        num_layers = len(self._assignments)
        if self.cost_mode == "flat" or occ_key is None or num_layers <= 1:
            return OccupancyProfile.flat(occ_key, num_layers)
        specs = [spec for spec, _, _ in self._assignments]
        raw = OccupancyProfile.propagate(specs, occ_key)
        return raw.bucketed(self.table.bucket)


class ReferenceMergeBucket(MergeBucket):
    """A merge bucket with every PR 5–8 merge optimization stripped.

    * density probes re-merge the *whole* frame list per :meth:`accepts`
      call through :meth:`SparseFrame.add_reference` (no incremental cache,
      no grouped-reduce kernel);
    * :meth:`merge` combines the list with ``add_reference`` as well,
      scaling for cAverage.

    Both are bit-identical to the production bucket — merging is associative
    on the support and ``add_reference`` is the proven oracle for ``add`` —
    just quadratic where the stack path is O(1) per probe.
    """

    def _merged_support(self) -> SparseFrame:
        return SparseFrame.add_reference(self.frames)

    def add(self, frame: SparseFrame) -> None:
        if self.is_full:
            raise RuntimeError("cannot add a frame to a FULL merge bucket")
        self.frames.append(frame)
        if self.occupancy >= self.capacity:
            self.status = BucketStatus.FULL

    def merge(self, mode: MergeMode) -> SparseFrame:
        if not self.frames:
            raise RuntimeError("cannot merge an empty bucket")
        merged = SparseFrame.add_reference(self.frames)
        if mode is MergeMode.AVERAGE:
            merged = merged.scale(1.0 / len(self.frames))
        return merged


class ReferenceAggregator(DynamicSparseFrameAggregator):
    """The fully per-frame DSFA: reference buckets, per-bucket merges.

    The ``"reference"`` data plane's aggregator
    (:data:`~repro.runtime.streams.DATAPLANES`): placement probes re-merge
    frame lists per call and every dispatch merges bucket by bucket through
    ``add_reference`` — no stack ranges, no segmented grouped-reduce pass.
    Dispatch decisions and merged values are bit-identical to the
    production aggregator; ``benchmarks/bench_dataplane.py`` measures the
    columnar transport's fleet speedup against it.
    """

    def _bucket_factory(self, capacity: int) -> MergeBucket:
        return ReferenceMergeBucket(capacity=capacity)

    def push_index(self, stack, index, hardware_available=False):
        # The reference transport materialises frames; an index push is
        # routed through the per-frame path so oracle buckets stay uniform.
        return self.push(stack.frame(index), hardware_available=hardware_available)

    def _merge_buckets(self) -> SparseFrameBatch:
        average = self.config.merge_mode is MergeMode.AVERAGE
        merged: List[SparseFrame] = []
        for bucket in self._buckets:
            if not bucket.occupancy:
                continue
            frame = SparseFrame.add_reference(bucket.frames)
            if average:
                frame = frame.scale(1.0 / len(bucket.frames))
            merged.append(frame)
        return SparseFrameBatch(merged)
