"""Mapped-graph execution on the simulated platform.

:class:`MappedExecutor` bundles the pieces a user needs to evaluate one
mapping policy end to end: it profiles the multi-task graph on the platform,
schedules it with the same list scheduler NMP uses internally, and reports
latency, energy and a device timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.nmp.candidate import MappingCandidate
from ..core.nmp.scheduler import ExecutionScheduler, ScheduleResult
from ..hw.energy import EnergyModel
from ..hw.latency import LatencyModel
from ..hw.pe import Platform
from ..hw.profiler import PlatformProfiler, ProfileTable
from ..nn.graph import MultiTaskGraph

__all__ = ["ExecutionReport", "MappedExecutor"]


@dataclass
class ExecutionReport:
    """Summary of one simulated execution of a mapped multi-task graph."""

    schedule: ScheduleResult
    mapping: MappingCandidate

    @property
    def latency(self) -> float:
        """Maximum task latency (the paper's optimisation objective)."""
        return self.schedule.max_task_latency

    @property
    def makespan(self) -> float:
        """End-to-end completion time across all tasks and transfers."""
        return self.schedule.makespan

    @property
    def energy(self) -> float:
        """Total energy in joules."""
        return self.schedule.energy

    @property
    def task_latencies(self) -> Dict[str, float]:
        """Per-task completion times."""
        return self.schedule.task_latencies


class MappedExecutor:
    """Profile once, then execute any number of mappings of the same graph."""

    def __init__(
        self,
        graph: MultiTaskGraph,
        platform: Platform,
        latency_model: Optional[LatencyModel] = None,
        energy_model: Optional[EnergyModel] = None,
        occupancy: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.platform = platform
        profiler = PlatformProfiler(platform, latency_model, energy_model)
        self.profile: ProfileTable = profiler.profile(graph, occupancy=occupancy)
        # One scheduler per sparse mode: each keeps the flattened form of the
        # graph, so repeated execute() calls skip re-flattening.
        self._schedulers: Dict[bool, ExecutionScheduler] = {}

    def execute(self, mapping: MappingCandidate, sparse: bool = False) -> ExecutionReport:
        """Simulate the execution of ``mapping`` and return its report."""
        scheduler = self._schedulers.get(sparse)
        if scheduler is None:
            scheduler = ExecutionScheduler(self.platform, self.profile, sparse=sparse)
            self._schedulers[sparse] = scheduler
        return ExecutionReport(schedule=scheduler.schedule(self.graph, mapping), mapping=mapping)
