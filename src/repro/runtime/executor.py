"""Execution backends: dispatch executors and mapped-graph execution.

Two families of executors live here:

* **Kernel dispatch executors** — the objects a
  :class:`~repro.runtime.streams.StreamClient` hands its batches to.
  :class:`SerialExecutor` models the whole platform as one serial
  accelerator (the seed pipeline's scalar ``busy_until``);
  :class:`SignatureServer` serves every stream sharing one (network,
  mapping, config) signature with indexed per-client pending queues,
  cross-stream batching and O(1) amortized dispatch/evict/merge — the
  fleet-scale hot path of :class:`~repro.runtime.streams.
  MultiStreamSimulator`.
* :class:`MappedExecutor` — static mapped-graph execution: profiles a
  multi-task graph on the platform, schedules it with the same list
  scheduler NMP uses internally, and reports latency, energy and a device
  timeline.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.nmp.candidate import MappingCandidate
from ..core.nmp.scheduler import ExecutionScheduler, ScheduleResult
from ..frames.sparse import SparseFrameBatch
from ..hw.energy import EnergyModel
from ..hw.latency import LatencyModel
from ..hw.pe import Platform
from ..hw.profiler import PlatformProfiler, ProfileTable
from ..nn.graph import MultiTaskGraph
from .sim import (
    InferenceDone,
    InferenceRecord,
    NetworkCostModel,
    QueueEvict,
    SimulationKernel,
)

__all__ = [
    "SerialExecutor",
    "SignatureServer",
    "ExecutionReport",
    "MappedExecutor",
]


# ----------------------------------------------------------------------
# kernel dispatch executors
# ----------------------------------------------------------------------
class SerialExecutor:
    """Whole-platform serial accelerator (the seed's scalar ``busy_until``).

    Every dispatch is queued immediately: it starts at
    ``max(dispatch_time, busy_until)`` and occupies the single shared
    resource until it completes, regardless of which PEs the mapping uses —
    single-task execution is serial end to end.
    """

    def __init__(self, kernel: SimulationKernel, resource: str = "platform") -> None:
        self.kernel = kernel
        self.resource = resource

    def busy_until(self, client: Optional["object"] = None) -> float:
        """Time the accelerator frees up."""
        return self.kernel.busy_until(self.resource)

    def backlog_estimate(self, client, time: float) -> float:
        """Backlog behind ``client``'s next dispatch at ``time``.

        A serial executor has no pending queue — every dispatch is placed on
        the busy timeline immediately — so the backlog is exactly the busy
        frontier's lead over ``time`` (the seed pipeline's drop-rule input).
        """
        return self.kernel.busy_until(self.resource) - time

    def dispatch(self, client, batch: SparseFrameBatch, time: float) -> None:
        """Execute ``batch`` for ``client``, queuing behind earlier work."""
        cost_model = client.cost_model
        occupancy = batch.mean_density if cost_model.uses_sparse else 1.0
        profile = cost_model.batch_profile(batch, occupancy)
        latency, energy = cost_model.profile_cost(profile, max(len(batch), 1))
        start, end = self.kernel.acquire((self.resource,), time, latency)
        client.note_dispatch(latency)
        record = InferenceRecord(
            dispatch_time=time,
            start_time=start,
            end_time=end,
            num_frames=len(batch),
            occupancy=occupancy,
            energy=energy,
        )
        self.kernel.schedule(
            InferenceDone(
                time=end, stream=client.name, records=(record,), profile=profile
            )
        )


class _PendingDispatch:
    """One queued dispatch: who sent it, what it carries, when, and its
    position in the server's aggregate FIFO order (``seq``).

    ``service_estimate`` is the sender's per-dispatch service-time estimate
    stamped at enqueue time; the server keeps a running sum of these so the
    no-DSFA backlog drop rule can include queued work without scanning.
    """

    __slots__ = ("client", "batch", "time", "seq", "service_estimate")

    def __init__(self, client, batch, time, seq=0, service_estimate=0.0) -> None:
        self.client = client
        self.batch = batch
        self.time = time
        self.seq = seq
        self.service_estimate = service_estimate


class SignatureServer:
    """Serial server for all streams sharing one network signature.

    The server occupies the PEs its cost model's mapping uses.  A dispatch
    arriving while the server is idle executes immediately; otherwise it
    waits in a pending queue bounded per stream by that stream's
    ``inference_queue_depth`` (the oldest pending entry is evicted when the
    bound is exceeded).  When an inference completes, the oldest pending
    dispatch of each of up to ``max_merge_streams`` *distinct* streams is
    concatenated into one batched inference — cross-stream batching amortises
    kernel-launch and weight-traffic costs exactly like DSFA's within-stream
    merging, and no single stream can consume more than one slot of the merge
    budget (``max_merge_streams=1`` disables merging entirely).

    **Fleet-scale hot path.**  Pending work lives in one deque per client
    plus a lazy min-heap over each queue's head sequence number (the
    aggregate FIFO order), so enqueue, per-stream eviction and the
    distinct-stream merge selection are all O(1) amortized instead of the
    O(queue) list scans of the original implementation.  Wake-ups are
    coalesced: instead of scheduling one kernel event per enqueued dispatch,
    the server keeps at most one outstanding wake-up (the earliest busy
    frontier it needs to re-examine), which removes the event-count blow-up
    a backlogged 1000-stream fleet used to generate.
    """

    def __init__(
        self,
        kernel: SimulationKernel,
        cost_model: NetworkCostModel,
        name: str,
        max_merge_streams: int = 4,
    ) -> None:
        if max_merge_streams < 1:
            raise ValueError("max_merge_streams must be >= 1")
        self.kernel = kernel
        self.cost_model = cost_model
        self.name = name
        self.max_merge_streams = max_merge_streams
        self.inferences = 0
        self.merged_dispatches = 0
        # client name -> that client's pending dispatches (FIFO).
        self._queues: Dict[str, Deque[_PendingDispatch]] = {}
        # Lazy min-heap of (head seq, client) pairs: one live entry per
        # non-empty queue; stale entries (their seq no longer heads the
        # queue) are discarded when popped.
        self._order: List[Tuple[int, object]] = []
        self._seq = itertools.count()
        self._pending_count = 0
        self._pending_service = 0.0
        self._next_wakeup: Optional[float] = None
        kernel.on(InferenceDone, self._on_done, stream=name)

    # ------------------------------------------------------------------
    def busy_until(self, client: Optional["object"] = None) -> float:
        """Time every PE of this server's mapping frees up."""
        return self.kernel.busy_until(*self.cost_model.pes_used)

    @property
    def pending_count(self) -> int:
        """Number of dispatches waiting in the pending queues."""
        return self._pending_count

    def pending_entries(self) -> List[_PendingDispatch]:
        """Pending dispatches in aggregate FIFO order (debug/test helper)."""
        entries = [e for queue in self._queues.values() for e in queue]
        entries.sort(key=lambda e: e.seq)
        return entries

    def queued_service_estimate(self) -> float:
        """Estimated total service time of all pending dispatches."""
        return self._pending_service

    def backlog_estimate(self, client, time: float) -> float:
        """Backlog behind ``client``'s next dispatch at ``time``.

        The busy frontier's lead over ``time`` *plus* the estimated service
        time of the work already sitting in the pending queues: a dispatch
        enqueued now runs after both, so a drop rule that looked only at
        ``busy_until`` systematically under-dropped under contention.
        """
        return max(self.busy_until(client) - time, 0.0) + self._pending_service

    def dispatch(self, client, batch: SparseFrameBatch, time: float) -> None:
        """Execute immediately when idle, else enqueue (bounded per stream)."""
        busy = self.busy_until(client)
        if self._pending_count == 0 and busy <= time:
            self._execute([_PendingDispatch(client, batch, time)], time)
            return
        queue = self._queues.get(client.name)
        if queue is None:
            queue = self._queues[client.name] = deque()
        if len(queue) >= client.queue_depth:
            oldest = queue.popleft()
            self._pending_count -= 1
            self._pending_service -= oldest.service_estimate
            client.report.frames_dropped += len(oldest.batch)
            self.kernel.schedule(
                QueueEvict(
                    time=time,
                    stream=client.name,
                    num_frames=len(oldest.batch),
                    reason="queue-full",
                )
            )
            if queue:
                # The evicted head's heap entry is now stale; the next
                # entry becomes this queue's head candidate.
                heapq.heappush(self._order, (queue[0].seq, client))
        entry = _PendingDispatch(
            client, batch, time, next(self._seq), max(client.last_duration, 0.0)
        )
        if not queue:
            heapq.heappush(self._order, (entry.seq, client))
        queue.append(entry)
        self._pending_count += 1
        self._pending_service += entry.service_estimate
        # The PEs may be held by a *different* server (shared devices), whose
        # completion events never reach this server's stream — make sure a
        # wake-up exists at the busy frontier so the queue always drains.
        self._schedule_wakeup(max(busy, time))

    # ------------------------------------------------------------------
    def _schedule_wakeup(self, time: float) -> None:
        """Keep at most one outstanding wake-up, at the earliest frontier."""
        if self._next_wakeup is not None and self._next_wakeup <= time:
            return
        self._next_wakeup = time
        self.kernel.schedule(InferenceDone(time=time, stream=self.name, records=()))

    def _take_members(self) -> List[_PendingDispatch]:
        """Pop the merge set: the oldest pending dispatch of each of the
        first ``max_merge_streams`` distinct streams, in aggregate FIFO
        order over each stream's oldest entry."""
        members: List[_PendingDispatch] = []
        taken_clients: List[object] = []
        order = self._order
        while order and len(members) < self.max_merge_streams:
            seq, client = order[0]
            queue = self._queues.get(client.name)
            if not queue or queue[0].seq != seq:
                heapq.heappop(order)  # stale head candidate
                continue
            heapq.heappop(order)
            entry = queue.popleft()
            self._pending_count -= 1
            self._pending_service -= entry.service_estimate
            members.append(entry)
            taken_clients.append(client)
        # Only after the selection is complete may a taken stream's next
        # entry become a head candidate — pushing it inside the loop would
        # let one stream fill several slots of the distinct-stream budget.
        for client in taken_clients:
            queue = self._queues.get(client.name)
            if queue:
                heapq.heappush(order, (queue[0].seq, client))
        return members

    def _execute(self, members: List[_PendingDispatch], ready_time: float) -> None:
        sparse = self.cost_model.uses_sparse
        num_frames = sum(len(m.batch) for m in members)
        # The members' density columns drive the costing directly — no
        # concatenated batch (and no per-frame view) is materialised for a
        # cross-stream merge.  Flattening the per-member columns preserves
        # the exact values and order a concatenated batch would expose, so
        # the mean and the combined profile are bit-identical.
        if sparse:
            densities = [d for m in members for d in m.batch.frame_densities()]
            occupancy = float(np.mean(densities)) if densities else 0.0
        else:
            densities = []
            occupancy = 1.0
        # The dispatch path hands the cost stack a per-layer occupancy
        # profile, not a scalar: under ``cost_mode="profile"`` the merged
        # batch's profile is the entry-wise combination of its members'
        # propagated profiles (flat mode reduces to the scalar path).
        profile = self.cost_model.densities_profile(densities, occupancy)
        latency, energy = self.cost_model.profile_cost(profile, max(num_frames, 1))
        start, end = self.kernel.acquire(self.cost_model.pes_used, ready_time, latency)
        self.inferences += 1
        if len(members) > 1:
            self.merged_dispatches += len(members)
        total_frames = max(num_frames, 1)
        for member in members:
            share = len(member.batch) / total_frames
            record = InferenceRecord(
                dispatch_time=member.time,
                start_time=start,
                end_time=end,
                num_frames=len(member.batch),
                occupancy=member.batch.mean_density if sparse else 1.0,
                energy=energy * share,
            )
            # Attribute each member its *share* of the batched latency: the
            # full latency would inflate every member's per-dispatch service
            # estimate (StreamClient._last_duration) after a cross-stream
            # merge and distort the backlog drop rule.
            member.client.note_dispatch(latency * share)
            self.kernel.schedule(
                InferenceDone(
                    time=end,
                    stream=member.client.name,
                    records=(record,),
                    profile=profile,
                )
            )
        # The server's own completion event drives pending-queue draining.
        self.kernel.schedule(InferenceDone(time=end, stream=self.name, records=()))

    def _on_done(self, event: InferenceDone) -> None:
        if self._next_wakeup is not None and event.time >= self._next_wakeup - 1e-15:
            self._next_wakeup = None
        if self._pending_count == 0:
            return
        busy = self.busy_until()
        if busy > event.time:
            # A server sharing one of our PEs is still running; retry when
            # the devices free up.
            self._schedule_wakeup(busy)
            return
        self._execute(self._take_members(), event.time)


# ----------------------------------------------------------------------
# mapped-graph execution
# ----------------------------------------------------------------------


@dataclass
class ExecutionReport:
    """Summary of one simulated execution of a mapped multi-task graph."""

    schedule: ScheduleResult
    mapping: MappingCandidate

    @property
    def latency(self) -> float:
        """Maximum task latency (the paper's optimisation objective)."""
        return self.schedule.max_task_latency

    @property
    def makespan(self) -> float:
        """End-to-end completion time across all tasks and transfers."""
        return self.schedule.makespan

    @property
    def energy(self) -> float:
        """Total energy in joules."""
        return self.schedule.energy

    @property
    def task_latencies(self) -> Dict[str, float]:
        """Per-task completion times."""
        return self.schedule.task_latencies


class MappedExecutor:
    """Profile once, then execute any number of mappings of the same graph."""

    def __init__(
        self,
        graph: MultiTaskGraph,
        platform: Platform,
        latency_model: Optional[LatencyModel] = None,
        energy_model: Optional[EnergyModel] = None,
        occupancy: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.platform = platform
        profiler = PlatformProfiler(platform, latency_model, energy_model)
        self.profile: ProfileTable = profiler.profile(graph, occupancy=occupancy)
        # One scheduler per sparse mode: each keeps the flattened form of the
        # graph, so repeated execute() calls skip re-flattening.
        self._schedulers: Dict[bool, ExecutionScheduler] = {}

    def execute(self, mapping: MappingCandidate, sparse: bool = False) -> ExecutionReport:
        """Simulate the execution of ``mapping`` and return its report."""
        scheduler = self._schedulers.get(sparse)
        if scheduler is None:
            scheduler = ExecutionScheduler(self.platform, self.profile, sparse=sparse)
            self._schedulers[sparse] = scheduler
        return ExecutionReport(schedule=scheduler.schedule(self.graph, mapping), mapping=mapping)
