"""Event-driven simulation kernel shared by every Ev-Edge execution client.

The seed had two disjoint simulation paths: :class:`~repro.core.pipeline.
EvEdgePipeline` hand-rolled an inline arrival loop for single-task streaming
and the multi-task path went through a static list scheduler.  This module
extracts the common substrate both (and any future traffic scenario) build
on:

* **Typed events** — :class:`FrameReady`, :class:`DispatchBatch`,
  :class:`InferenceDone`, :class:`QueueEvict`, :class:`StreamEnd` and
  :class:`RemapTriggered` — each carrying its simulation time and the name
  of the traffic stream it belongs to.
* :class:`SimulationKernel` — a priority-queue event loop.  Events at the
  same timestamp are ordered by a per-type priority (completions free their
  devices before new frames are examined, dispatches run before later
  arrivals) and FIFO within a type, which is exactly the ordering the seed's
  inline loop produced implicitly.  The kernel also owns per-resource busy
  tracking (``busy_until`` / ``acquire``) so clients share one notion of
  device occupancy.
* :class:`LayerCostTable` — a memo table for per-layer latency/energy keyed
  on ``(layer, pe, precision, sparse, occupancy-bucket, batch)``, and
  :class:`NetworkCostModel`, which resolves a network's layer→(PE, precision)
  assignment once and memoizes whole-network inference costs so the hot path
  stops re-walking the layer graph for every inference.

Single-stream clients (``EvEdgePipeline.run``) and the multi-stream traffic
simulator (:mod:`repro.runtime.streams`) are both thin protocol drivers on
top of this kernel.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.config import EvEdgeConfig
from ..core.nmp.candidate import MappingCandidate
from ..frames.sparse import SparseFrame, SparseFrameBatch
from ..hw.energy import EnergyModel
from ..hw.latency import LatencyModel
from ..hw.pe import Platform, ProcessingElement
from ..nn.graph import LayerGraph
from ..nn.layers import LayerSpec
from ..nn.quantization import Precision

__all__ = [
    "SimEvent",
    "FrameReady",
    "DispatchBatch",
    "InferenceDone",
    "QueueEvict",
    "StreamEnd",
    "RemapTriggered",
    "SimulationKernel",
    "LayerCost",
    "LayerCostTable",
    "NetworkCostModel",
    "InferenceRecord",
    "PipelineReport",
]


# ----------------------------------------------------------------------
# reports (shared by the single-stream pipeline and the traffic simulator)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InferenceRecord:
    """One simulated inference: which frames it covered and its timing."""

    dispatch_time: float
    start_time: float
    end_time: float
    num_frames: int
    occupancy: float
    energy: float

    @property
    def latency(self) -> float:
        """Completion time minus the time the newest covered frame was ready."""
        return self.end_time - self.dispatch_time


@dataclass
class PipelineReport:
    """Aggregate statistics of one pipeline run over a sequence."""

    records: List[InferenceRecord] = field(default_factory=list)
    frames_generated: int = 0
    frames_merged: int = 0
    frames_dropped: int = 0

    @property
    def num_inferences(self) -> int:
        """Number of network invocations performed."""
        return len(self.records)

    @property
    def total_time(self) -> float:
        """Wall-clock completion time of the last inference."""
        return max((r.end_time for r in self.records), default=0.0)

    @property
    def mean_latency(self) -> float:
        """Mean per-inference latency (dispatch to completion), seconds."""
        if not self.records:
            return 0.0
        return float(np.mean([r.latency for r in self.records]))

    @property
    def total_energy(self) -> float:
        """Total energy in joules."""
        return float(sum(r.energy for r in self.records))

    @property
    def mean_occupancy(self) -> float:
        """Mean input occupancy across inferences."""
        if not self.records:
            return 0.0
        return float(np.mean([r.occupancy for r in self.records]))


# ----------------------------------------------------------------------
# typed events
# ----------------------------------------------------------------------
@dataclass
class SimEvent:
    """Base class of all kernel events.

    ``PRIORITY`` orders events scheduled at the same timestamp: completions
    (which free devices) are processed first, then queue evictions, then
    batch dispatches, then new frame arrivals, and finally end-of-stream
    flushes.  Within one priority class events are FIFO.
    """

    time: float
    stream: str = ""

    PRIORITY = 5

    def trace_detail(self) -> str:
        """Short human-readable payload summary for the kernel trace."""
        return ""


@dataclass
class InferenceDone(SimEvent):
    """An inference finished; carries the per-stream records it produced."""

    records: Tuple[InferenceRecord, ...] = ()

    PRIORITY = 0

    def trace_detail(self) -> str:
        frames = sum(r.num_frames for r in self.records)
        return f"records={len(self.records)} frames={frames}"


@dataclass
class QueueEvict(SimEvent):
    """Frames were evicted from a bounded queue (backlog or staleness)."""

    num_frames: int = 1
    reason: str = "backlog"

    PRIORITY = 1

    def trace_detail(self) -> str:
        return f"frames={self.num_frames} reason={self.reason}"


@dataclass
class DispatchBatch(SimEvent):
    """A merged batch was handed to the inference queue of its stream."""

    batch: Optional[SparseFrameBatch] = None

    PRIORITY = 2

    def trace_detail(self) -> str:
        return f"frames={len(self.batch) if self.batch is not None else 0}"


@dataclass
class FrameReady(SimEvent):
    """A sparse frame became available on a traffic stream."""

    frame: Optional[SparseFrame] = None

    PRIORITY = 3

    def trace_detail(self) -> str:
        if self.frame is None:
            return ""
        return f"density={self.frame.density:.4f}"


@dataclass
class StreamEnd(SimEvent):
    """A traffic stream produced its last frame (triggers a final flush)."""

    PRIORITY = 4


@dataclass
class RemapTriggered(SimEvent):
    """The traffic mix changed (a stream joined or left); remapping may run.

    Scheduled by the multi-stream simulator at every stream join/leave point
    when a remap policy is active.  Processed after completions (so freed
    devices are visible) but before same-time dispatches and frame arrivals,
    so a join's first frame already executes under the adapted mapping.
    """

    reason: str = "join"  # "join" or "leave"

    PRIORITY = 1

    def trace_detail(self) -> str:
        return f"reason={self.reason}"


# ----------------------------------------------------------------------
# kernel
# ----------------------------------------------------------------------
class SimulationKernel:
    """Priority-queue event loop with per-resource busy tracking.

    Parameters
    ----------
    trace:
        Optional event sink (e.g. :class:`repro.runtime.tracer.KernelTrace`);
        every processed event is passed to ``trace.record(event)``.
    """

    def __init__(self, trace: Optional[object] = None) -> None:
        self._heap: List[Tuple[float, int, int, SimEvent]] = []
        self._seq = itertools.count()
        self._handlers: Dict[type, List[Tuple[Optional[str], Callable[[SimEvent], None]]]] = {}
        self._busy: Dict[str, float] = {}
        self.now = 0.0
        self.events_processed = 0
        self.trace = trace

    # -- scheduling ----------------------------------------------------
    def schedule(self, event: SimEvent) -> None:
        """Enqueue ``event``; scheduling into the past is a client bug."""
        if event.time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule {type(event).__name__} at t={event.time} "
                f"before kernel time t={self.now}"
            )
        heapq.heappush(self._heap, (event.time, event.PRIORITY, next(self._seq), event))

    def on(
        self,
        event_type: type,
        handler: Callable[[SimEvent], None],
        stream: Optional[str] = None,
    ) -> None:
        """Register ``handler`` for events of ``event_type``.

        With ``stream`` given, only events carrying that stream name are
        delivered; handlers registered with ``stream=None`` see every event
        of the type.
        """
        self._handlers.setdefault(event_type, []).append((stream, handler))

    def run(self, until: Optional[float] = None) -> float:
        """Process events in time/priority order; return the final time."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            time, _, _, event = heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            if self.trace is not None:
                self.trace.record(event)
            for stream, handler in self._handlers.get(type(event), []):
                if stream is None or stream == event.stream:
                    handler(event)
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    # -- resources -----------------------------------------------------
    def busy_until(self, *resources: str) -> float:
        """Latest time any of ``resources`` is occupied (0 when never used)."""
        if not resources:
            return 0.0
        return max(self._busy.get(r, 0.0) for r in resources)

    def acquire(
        self, resources: Tuple[str, ...], ready_time: float, duration: float
    ) -> Tuple[float, float]:
        """Reserve ``resources`` for ``duration`` starting when all are free.

        Returns ``(start, end)`` with ``start = max(ready_time, busy)``; the
        caller is queued behind earlier reservations, which is how the
        kernel models serial accelerator occupancy.
        """
        start = max(ready_time, self.busy_until(*resources))
        end = start + duration
        for r in resources:
            self._busy[r] = end
        return start, end

    def resource_busy_times(self) -> Dict[str, float]:
        """Snapshot of each resource's busy-until time."""
        return dict(self._busy)


# ----------------------------------------------------------------------
# memoized cost models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LayerCost:
    """Memoized latency/energy of one layer execution."""

    latency: float
    energy: float


class LayerCostTable:
    """Memo table for per-layer latency and energy.

    Entries are keyed on ``(layer, pe, precision, sparse, occupancy-bucket,
    batch)``.  With ``occupancy_resolution=None`` (the default) the bucket is
    the exact occupancy value — results are bit-for-bit identical to calling
    the latency/energy models directly, and repeated occupancies (the dense
    path always passes 1.0) still hit the cache.  A positive resolution
    quantizes the occupancy to that grid before *both* keying and computing,
    trading a bounded modelling error for a much higher hit rate under heavy
    multi-stream traffic.
    """

    def __init__(
        self,
        latency_model: Optional[LatencyModel] = None,
        energy_model: Optional[EnergyModel] = None,
        occupancy_resolution: Optional[float] = None,
    ) -> None:
        if occupancy_resolution is not None and not 0 < occupancy_resolution <= 1:
            raise ValueError("occupancy_resolution must be in (0, 1] or None")
        self.latency_model = latency_model or LatencyModel()
        self.energy_model = energy_model or EnergyModel(self.latency_model)
        self.occupancy_resolution = occupancy_resolution
        self._cache: Dict[tuple, LayerCost] = {}
        self.hits = 0
        self.misses = 0

    def bucket(self, occupancy: Optional[float]) -> Optional[float]:
        """Quantize an occupancy to its bucket representative (clamped [0, 1])."""
        if occupancy is None:
            return None
        occupancy = min(max(float(occupancy), 0.0), 1.0)
        if not self.occupancy_resolution:
            return occupancy
        steps = round(occupancy / self.occupancy_resolution)
        return min(steps * self.occupancy_resolution, 1.0)

    def layer_cost(
        self,
        layer: LayerSpec,
        pe: ProcessingElement,
        precision: Precision,
        sparse: bool = False,
        occupancy: Optional[float] = None,
        batch: int = 1,
    ) -> LayerCost:
        """Memoized ``(latency, energy)`` of one layer execution."""
        occ = self.bucket(occupancy)
        key = (layer, pe.name, precision, sparse, occ, batch)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        latency = self.latency_model.layer_latency(
            layer, pe, precision, sparse=sparse, occupancy=occ, batch=batch
        ).total
        energy = self.energy_model.layer_energy(
            layer, pe, precision, sparse=sparse, occupancy=occ, batch=batch
        ).total
        cost = LayerCost(latency, energy)
        self._cache[key] = cost
        return cost

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters and current table size."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._cache)}


class NetworkCostModel:
    """Whole-network inference cost under one fixed mapping and config.

    The layer→(PE, precision) assignment is resolved once at construction
    (the same rules the seed pipeline applied per call: NMP mapping when
    enabled, GPU + baseline precision otherwise, GPU fallback for layers the
    assigned device cannot run).  Inference costs are memoized on
    ``(occupancy-bucket, batch)`` so the layer graph is walked once per
    distinct operating point instead of once per inference.
    """

    def __init__(
        self,
        network: LayerGraph,
        platform: Platform,
        config: Optional[EvEdgeConfig] = None,
        mapping: Optional[MappingCandidate] = None,
        table: Optional[LayerCostTable] = None,
    ) -> None:
        self.network = network
        self.platform = platform
        self.config = config or EvEdgeConfig()
        self.mapping = mapping
        self.table = table or LayerCostTable()
        self._specs = [spec for spec in network.layers() if spec.kind.is_compute]
        self._cache: Dict[tuple, Tuple[float, float]] = {}
        self._resolve()

    def _resolve(self) -> None:
        """Resolve the layer→(PE, precision) assignment under the active mapping."""
        self._assignments: List[Tuple[LayerSpec, ProcessingElement, Precision]] = []
        for spec in self._specs:
            pe, precision = self._assignment_for(spec.name)
            if not pe.supports_layer(spec):
                pe = self.platform.gpu()
            self._assignments.append((spec, pe, precision))
        seen: List[str] = []
        for _, pe, _ in self._assignments:
            if pe.name not in seen:
                seen.append(pe.name)
        self._pes_used = tuple(seen)

    def rebind(self, mapping: Optional[MappingCandidate]) -> None:
        """Swap the NMP mapping and invalidate every memoized inference cost.

        Used by online traffic-adaptive remapping: the per-layer costs in the
        shared :class:`LayerCostTable` stay valid (they are keyed on the
        layer/PE/precision, not on the mapping), but the resolved assignment
        list, the occupied-PE set and the whole-network cost memo are all
        mapping-dependent and must be rebuilt.  Note that an execution
        server's *grouping* of streams (its :meth:`signature` at construction
        time) is intentionally not revisited — streams that shared a cost
        surface before a remap still share the rebound one.
        """
        self.mapping = mapping
        self._resolve()
        self._cache.clear()

    # ------------------------------------------------------------------
    def _assignment_for(self, node_name: str) -> Tuple[ProcessingElement, Precision]:
        """(pe, precision) of one layer under the active mapping."""
        gpu = self.platform.gpu()
        if self.mapping is None or not self.config.optimization.uses_nmp:
            return gpu, self.config.baseline_precision
        full_node = f"{self.network.name}.{node_name}"
        if full_node in self.mapping:
            assignment = self.mapping[full_node]
        elif node_name in self.mapping:
            assignment = self.mapping[node_name]
        else:
            return gpu, self.config.baseline_precision
        return self.platform.pe(assignment.pe), assignment.precision

    @property
    def pes_used(self) -> Tuple[str, ...]:
        """Names of the processing elements this network's mapping occupies."""
        return self._pes_used

    @property
    def uses_sparse(self) -> bool:
        """True when the configured optimization level executes sparse kernels."""
        return self.config.optimization.uses_sparse

    def signature(self) -> tuple:
        """Identity of the (network, mapping, config) cost surface.

        Streams with equal signatures run the same computation and may be
        batched together by the traffic simulator.  The layer specs are part
        of the identity: two networks that share a name but differ
        structurally (e.g. the same zoo model built at two resolutions) must
        not share a cost model or an execution server.
        """
        mapping_key = None if self.mapping is None else self.mapping.key()
        return (
            self.network.name,
            tuple(self._specs),
            mapping_key,
            self.config.optimization,
            self.config.baseline_precision,
        )

    # ------------------------------------------------------------------
    def inference_cost(self, occupancy: float, batch: int) -> Tuple[float, float]:
        """Memoized latency and energy of one network invocation.

        The measured occupancy of the merged input drives the first layer;
        deeper layers use their modelled activation sparsity.  When producer
        and consumer layers sit on different devices a unified-memory
        transfer is added (execution is serial, so transfers are summed).
        """
        occ_key = self.table.bucket(occupancy)
        key = (occ_key, batch)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        sparse = self.uses_sparse
        total_latency = 0.0
        total_energy = 0.0
        previous_pe = None
        previous_spec = None
        previous_precision = None
        first = True
        for spec, pe, precision in self._assignments:
            occ = occ_key if first else None
            layer_sparse = sparse and pe.supports_sparse
            cost = self.table.layer_cost(
                spec, pe, precision, sparse=layer_sparse, occupancy=occ, batch=batch
            )
            total_latency += cost.latency
            total_energy += cost.energy
            if previous_pe is not None and previous_pe.name != pe.name:
                transfer_bytes = previous_spec.output_bytes(previous_precision) * batch
                total_latency += self.platform.transfer_time(
                    transfer_bytes, previous_pe.name, pe.name
                )
                total_energy += self.table.energy_model.transfer_energy(transfer_bytes)
            previous_pe, previous_spec, previous_precision = pe, spec, precision
            first = False
        result = (total_latency, total_energy)
        self._cache[key] = result
        return result
