"""Event-driven simulation kernel shared by every Ev-Edge execution client.

The seed had two disjoint simulation paths: :class:`~repro.core.pipeline.
EvEdgePipeline` hand-rolled an inline arrival loop for single-task streaming
and the multi-task path went through a static list scheduler.  This module
extracts the common substrate both (and any future traffic scenario) build
on:

* **Typed events** — :class:`FrameReady`, :class:`DispatchBatch`,
  :class:`InferenceDone`, :class:`QueueEvict`, :class:`StreamEnd` and
  :class:`RemapTriggered` — each carrying its simulation time and the name
  of the traffic stream it belongs to.  Events are ``__slots__`` value
  objects: a fleet-scale run allocates hundreds of thousands of them, so
  they carry no per-instance ``__dict__``.
* :class:`SimulationKernel` — a priority-queue event loop.  Events at the
  same timestamp are ordered by a per-type priority (completions free their
  devices before new frames are examined, dispatches run before later
  arrivals) and FIFO within a type, which is exactly the ordering the seed's
  inline loop produced implicitly.  Delivery is O(1) in the number of
  registered handlers: handlers live in a routing table keyed on
  ``(event_type, stream)`` with a wildcard bucket per type, so a
  1024-stream fleet no longer pays a linear scan over every stream's
  handlers for every event.  The kernel also owns per-resource busy
  tracking (``busy_until`` / ``acquire``) so clients share one notion of
  device occupancy.
* **Layered cost stack** — :class:`LayerCostTable` holds per-layer cost
  cells keyed on ``(layer, pe, precision, sparse, layer-bucket, batch)``;
  :class:`NetworkCostModel` resolves a network's layer→(PE, precision)
  assignment once and composes the cells into memoized whole-network costs.
  Costs are driven by an :class:`~repro.nn.occupancy.OccupancyProfile` —
  one occupancy per layer.  In ``cost_mode="flat"`` (the default) the
  profile carries the measured input occupancy in its first slot and defers
  to each deeper layer's static modelled sparsity, which is bit-identical
  to the pre-profile scalar path.  In ``cost_mode="profile"`` the input
  density is *propagated* layer by layer (support dilation + activation
  sparsification) and bucketed per layer **after** propagation, so
  mixed-density traffic converges onto shared deep-layer cache cells
  instead of thrashing the memo per input bucket.

Single-stream clients (``EvEdgePipeline.run``) and the multi-stream traffic
simulator (:mod:`repro.runtime.streams`) are both thin protocol drivers on
top of this kernel.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import EvEdgeConfig
from ..core.nmp.candidate import MappingCandidate
from ..frames.sparse import SparseFrame, SparseFrameBatch
from ..hw.energy import EnergyModel
from ..hw.latency import LatencyModel
from ..hw.pe import Platform, ProcessingElement
from ..nn.graph import LayerGraph
from ..nn.layers import LayerSpec
from ..nn.occupancy import OccupancyProfile
from ..nn.quantization import Precision

__all__ = [
    "SimEvent",
    "FrameReady",
    "DispatchBatch",
    "InferenceDone",
    "QueueEvict",
    "StreamEnd",
    "RemapTriggered",
    "SimulationKernel",
    "LayerCost",
    "LayerCostTable",
    "NetworkCostModel",
    "OccupancyProfile",
    "COST_MODES",
    "InferenceRecord",
    "PipelineReport",
]


# ----------------------------------------------------------------------
# reports (shared by the single-stream pipeline and the traffic simulator)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InferenceRecord:
    """One simulated inference: which frames it covered and its timing."""

    dispatch_time: float
    start_time: float
    end_time: float
    num_frames: int
    occupancy: float
    energy: float

    @property
    def latency(self) -> float:
        """Completion time minus the time the newest covered frame was ready."""
        return self.end_time - self.dispatch_time


class PipelineReport:
    """Aggregate statistics of one pipeline run over a sequence.

    Aggregates (latency/energy/occupancy sums, completion time) are
    maintained as *streaming accumulators* updated by :meth:`add_records`,
    so reading a property never materializes an array over the full record
    list — a fleet-scale run reads these per stream without touching its
    (possibly huge) record history.  With ``keep_records=False`` the record
    list itself is not retained either: only the accumulators survive, which
    is the memory-lean mode the large-fleet benchmarks run in.  The default
    keeps full records, which traces and the per-record regression tests
    rely on.

    ``records`` stays a plain mutable list for backward compatibility; a
    report whose list was appended to directly (bypassing
    :meth:`add_records`) falls back to recomputing its aggregates from the
    records with the same sequential formulas.

    ``record_limit`` bounds the retained list to the *most recent* N
    records (oldest entries are discarded as new ones arrive) while the
    streaming aggregates keep accounting every record — the middle ground
    between full retention and ``keep_records=False`` for long-horizon
    fleets that still want a tail of records for inspection.  A limited
    report never takes the direct-mutation recompute fallback: its list is
    intentionally shorter than ``_num_records``.
    """

    __slots__ = (
        "records",
        "frames_generated",
        "frames_merged",
        "frames_dropped",
        "keep_records",
        "record_limit",
        "cost_mode",
        "_num_records",
        "_latency_sum",
        "_energy_sum",
        "_occupancy_sum",
        "_max_end_time",
    )

    def __init__(
        self, keep_records: bool = True, record_limit: Optional[int] = None
    ) -> None:
        if record_limit is not None and record_limit < 1:
            raise ValueError("record_limit must be >= 1 or None")
        self.records: List[InferenceRecord] = []
        self.frames_generated = 0
        self.frames_merged = 0
        self.frames_dropped = 0
        self.keep_records = keep_records
        self.record_limit = record_limit
        # Cost-stack semantics the run was costed under ("flat"/"profile");
        # stamped by the stream client, None until a cost model is attached.
        self.cost_mode: Optional[str] = None
        self._num_records = 0
        self._latency_sum = 0.0
        self._energy_sum = 0.0
        self._occupancy_sum = 0.0
        self._max_end_time = 0.0

    def add_records(self, records) -> None:
        """Account ``records`` into the streaming aggregates (and the list)."""
        for record in records:
            self._num_records += 1
            self._latency_sum += record.latency
            self._energy_sum += record.energy
            self._occupancy_sum += record.occupancy
            if record.end_time > self._max_end_time:
                self._max_end_time = record.end_time
        if self.keep_records:
            self.records.extend(records)
            limit = self.record_limit
            if limit is not None and len(self.records) > limit:
                del self.records[: len(self.records) - limit]

    def merge(self, other: "PipelineReport") -> "PipelineReport":
        """Combine two reports into a new one (shard-report composition).

        Frame counters and streaming accumulators are summed, the completion
        time is the max of the two, and records are concatenated when *both*
        inputs retained them (a lean report anywhere in the merge keeps the
        result lean — the accumulators are the part that composes at fleet
        scale).  Neither input is mutated.
        """
        limits = [
            part.record_limit
            for part in (self, other)
            if part.record_limit is not None
        ]
        merged = PipelineReport(
            keep_records=self.keep_records and other.keep_records,
            record_limit=min(limits) if limits else None,
        )
        merged.cost_mode = (
            self.cost_mode if self.cost_mode == other.cost_mode else "mixed"
        )
        merged.frames_generated = self.frames_generated + other.frames_generated
        merged.frames_merged = self.frames_merged + other.frames_merged
        merged.frames_dropped = self.frames_dropped + other.frames_dropped
        for part in (self, other):
            count, latency, energy, occupancy, max_end = part._accumulators()
            merged._num_records += count
            merged._latency_sum += latency
            merged._energy_sum += energy
            merged._occupancy_sum += occupancy
            if max_end > merged._max_end_time:
                merged._max_end_time = max_end
        if merged.keep_records:
            merged.records = self.records + other.records
            limit = merged.record_limit
            if limit is not None and len(merged.records) > limit:
                del merged.records[: len(merged.records) - limit]
        return merged

    def _accumulators(self) -> Tuple[int, float, float, float, float]:
        """(count, latency_sum, energy_sum, occupancy_sum, max_end_time).

        Recomputed from ``records`` when the list was mutated directly —
        never for a ``record_limit``-bounded report, whose trimmed list is
        legitimately shorter than the accounted record count.
        """
        if (
            self.keep_records
            and self.record_limit is None
            and len(self.records) != self._num_records
        ):
            latency = energy = occupancy = max_end = 0.0
            for record in self.records:
                latency += record.latency
                energy += record.energy
                occupancy += record.occupancy
                if record.end_time > max_end:
                    max_end = record.end_time
            return len(self.records), latency, energy, occupancy, max_end
        return (
            self._num_records,
            self._latency_sum,
            self._energy_sum,
            self._occupancy_sum,
            self._max_end_time,
        )

    @property
    def num_inferences(self) -> int:
        """Number of network invocations performed."""
        return self._accumulators()[0]

    @property
    def total_time(self) -> float:
        """Wall-clock completion time of the last inference."""
        return self._accumulators()[4]

    @property
    def mean_latency(self) -> float:
        """Mean per-inference latency (dispatch to completion), seconds."""
        count, latency_sum, _, _, _ = self._accumulators()
        if count == 0:
            return 0.0
        return latency_sum / count

    @property
    def total_energy(self) -> float:
        """Total energy in joules."""
        return self._accumulators()[2]

    @property
    def mean_occupancy(self) -> float:
        """Mean input occupancy across inferences."""
        count, _, _, occupancy_sum, _ = self._accumulators()
        if count == 0:
            return 0.0
        return occupancy_sum / count


# ----------------------------------------------------------------------
# typed events
# ----------------------------------------------------------------------
class SimEvent:
    """Base class of all kernel events.

    ``PRIORITY`` orders events scheduled at the same timestamp: completions
    (which free devices) are processed first, then queue evictions, then
    batch dispatches, then new frame arrivals, and finally end-of-stream
    flushes.  Within one priority class events are FIFO.

    Events are plain ``__slots__`` classes rather than dataclasses: a
    fleet-scale run creates one object per frame arrival, dispatch and
    completion, and the per-instance ``__dict__`` was a measurable share of
    the kernel's allocation traffic.
    """

    __slots__ = ("time", "stream")

    PRIORITY = 5

    def __init__(self, time: float, stream: str = "") -> None:
        self.time = time
        self.stream = stream

    def __repr__(self) -> str:
        return f"{type(self).__name__}(time={self.time!r}, stream={self.stream!r})"

    def trace_detail(self) -> str:
        """Short human-readable payload summary for the kernel trace."""
        return ""


class InferenceDone(SimEvent):
    """An inference finished; carries the per-stream records it produced.

    ``profile`` is the resolved per-layer occupancy profile the dispatch
    was costed at (``None`` for bookkeeping wake-ups that carry no
    records) — the raw material of trace-driven firing-fraction
    calibration (:mod:`repro.nn.calibration`).
    """

    __slots__ = ("records", "profile")

    PRIORITY = 0

    def __init__(
        self,
        time: float,
        stream: str = "",
        records: Tuple[InferenceRecord, ...] = (),
        profile: Optional["OccupancyProfile"] = None,
    ) -> None:
        super().__init__(time, stream)
        self.records = records
        self.profile = profile

    def trace_detail(self) -> str:
        frames = sum(r.num_frames for r in self.records)
        return f"records={len(self.records)} frames={frames}"


class QueueEvict(SimEvent):
    """Frames were evicted from a bounded queue (backlog or staleness)."""

    __slots__ = ("num_frames", "reason")

    PRIORITY = 1

    def __init__(
        self,
        time: float,
        stream: str = "",
        num_frames: int = 1,
        reason: str = "backlog",
    ) -> None:
        super().__init__(time, stream)
        self.num_frames = num_frames
        self.reason = reason

    def trace_detail(self) -> str:
        return f"frames={self.num_frames} reason={self.reason}"


class DispatchBatch(SimEvent):
    """A merged batch was handed to the inference queue of its stream."""

    __slots__ = ("batch",)

    PRIORITY = 2

    def __init__(
        self,
        time: float,
        stream: str = "",
        batch: Optional[SparseFrameBatch] = None,
    ) -> None:
        super().__init__(time, stream)
        self.batch = batch

    def trace_detail(self) -> str:
        return f"frames={len(self.batch) if self.batch is not None else 0}"


class FrameReady(SimEvent):
    """A sparse frame became available on a traffic stream.

    Two transports share this event.  The columnar (default) data plane
    carries a ``(stack, index)`` reference into the stream's rendered
    :class:`~repro.frames.stack.FrameStack` — no per-frame object exists
    unless a consumer reads :attr:`frame`, which materialises (and caches)
    a zero-copy view.  The per-frame oracle paths carry a materialised
    ``frame`` directly and leave ``stack`` as ``None``.
    """

    __slots__ = ("_frame", "stack", "index")

    PRIORITY = 3

    def __init__(
        self,
        time: float,
        stream: str = "",
        frame: Optional[SparseFrame] = None,
        stack=None,
        index: int = -1,
    ) -> None:
        super().__init__(time, stream)
        self._frame = frame
        self.stack = stack
        self.index = index

    @property
    def frame(self) -> Optional[SparseFrame]:
        """The frame, materialised lazily for stack-referenced events."""
        if self._frame is None and self.stack is not None:
            self._frame = self.stack.frame(self.index)
        return self._frame

    def trace_detail(self) -> str:
        if self.stack is not None:
            return f"density={self.stack.frame_density(self.index):.4f}"
        if self._frame is None:
            return ""
        return f"density={self._frame.density:.4f}"


class StreamEnd(SimEvent):
    """A traffic stream produced its last frame (triggers a final flush)."""

    __slots__ = ()

    PRIORITY = 4


class RemapTriggered(SimEvent):
    """The traffic mix changed (a stream joined or left); remapping may run.

    Scheduled by the multi-stream simulator at every stream join/leave point
    when a remap policy is active.  Processed after completions (so freed
    devices are visible) but before same-time dispatches and frame arrivals,
    so a join's first frame already executes under the adapted mapping.
    """

    __slots__ = ("reason",)

    PRIORITY = 1

    def __init__(self, time: float, stream: str = "", reason: str = "join") -> None:
        super().__init__(time, stream)
        self.reason = reason  # "join" or "leave"

    def trace_detail(self) -> str:
        return f"reason={self.reason}"


# ----------------------------------------------------------------------
# kernel
# ----------------------------------------------------------------------
class SimulationKernel:
    """Priority-queue event loop with per-resource busy tracking.

    Handler delivery is O(1) in the number of registered handlers: the
    kernel keeps a routing table keyed on ``(event_type, stream)`` plus a
    wildcard bucket per type (handlers registered with ``stream=None``).
    The first event of a given ``(type, stream)`` builds that key's route —
    the exact and wildcard handler lists merged by registration order — and
    later registrations patch every built route they belong to, so handlers
    registered mid-run are delivered exactly as the pre-routing linear scan
    would have: FIFO by registration order within an event's priority class.

    Parameters
    ----------
    trace:
        Optional event sink (e.g. :class:`repro.runtime.tracer.KernelTrace`);
        every processed event is passed to ``trace.record(event)``.
    """

    def __init__(self, trace: Optional[object] = None) -> None:
        self._heap: List[Tuple[float, int, int, SimEvent]] = []
        # Plain int rather than itertools.count: lazy schedulers reserve
        # contiguous sequence blocks up front (reserve_sequences), which an
        # opaque counter cannot hand out.
        self._seq = 0
        self._heap_high_water = 0
        # Registration tokens order handlers globally; routes merge the
        # exact and wildcard lists by token.
        self._reg = itertools.count()
        self._exact: Dict[Tuple[type, str], List[Tuple[int, Callable[[SimEvent], None]]]] = {}
        self._wild: Dict[type, List[Tuple[int, Callable[[SimEvent], None]]]] = {}
        self._routes: Dict[Tuple[type, str], List[Callable[[SimEvent], None]]] = {}
        self._routed_streams: Dict[type, set] = {}
        self._busy: Dict[str, float] = {}
        self.now = 0.0
        self.events_processed = 0
        self.trace = trace

    # -- scheduling ----------------------------------------------------
    def schedule(self, event: SimEvent, seq: Optional[int] = None) -> None:
        """Enqueue ``event``; scheduling into the past is a client bug.

        ``seq`` is the event's FIFO tie-break within its ``(time, priority)``
        class.  Left as ``None`` (the normal case) it is drawn from the
        kernel's monotone counter at call time.  Lazy arrival schedulers pass
        a sequence number pre-reserved via :meth:`reserve_sequences` so that
        events scheduled *during* the run occupy exactly the heap slots the
        eager oracle would have assigned at prime time — same-timestamp
        ordering, and therefore every downstream report, stays bit-identical
        between the two scheduling modes.
        """
        if event.time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule {type(event).__name__} at t={event.time} "
                f"before kernel time t={self.now}"
            )
        if seq is None:
            seq = self._seq
            self._seq = seq + 1
        heap = self._heap
        heapq.heappush(heap, (event.time, event.PRIORITY, seq, event))
        if len(heap) > self._heap_high_water:
            self._heap_high_water = len(heap)

    def reserve_sequences(self, count: int) -> int:
        """Reserve ``count`` consecutive sequence numbers; return the first.

        The caller owns ``[base, base + count)`` and stamps them onto events
        via ``schedule(event, seq=base + i)``.  Reserving advances the
        counter exactly as ``count`` immediate ``schedule`` calls would, so
        every later auto-assigned sequence number is unchanged versus an
        eager scheduler that enqueued the whole block up front.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        base = self._seq
        self._seq = base + count
        return base

    def on(
        self,
        event_type: type,
        handler: Callable[[SimEvent], None],
        stream: Optional[str] = None,
    ) -> None:
        """Register ``handler`` for events of ``event_type``.

        With ``stream`` given, only events carrying that stream name are
        delivered; handlers registered with ``stream=None`` see every event
        of the type.
        """
        token = next(self._reg)
        if stream is None:
            self._wild.setdefault(event_type, []).append((token, handler))
            # A wildcard handler belongs to every stream's route of this
            # type; the new token is the largest so far, so appending keeps
            # each built route sorted by registration order.
            for routed in self._routed_streams.get(event_type, ()):
                self._routes[(event_type, routed)].append(handler)
        else:
            self._exact.setdefault((event_type, stream), []).append((token, handler))
            if stream in self._routed_streams.get(event_type, ()):
                self._routes[(event_type, stream)].append(handler)

    def _build_route(
        self, event_type: type, stream: str
    ) -> List[Callable[[SimEvent], None]]:
        """Merge exact and wildcard handlers of one key by registration order."""
        entries = list(self._exact.get((event_type, stream), ()))
        entries += self._wild.get(event_type, ())
        entries.sort(key=lambda entry: entry[0])
        route = [handler for _, handler in entries]
        self._routes[(event_type, stream)] = route
        self._routed_streams.setdefault(event_type, set()).add(stream)
        return route

    def run(self, until: Optional[float] = None) -> float:
        """Process events in time/priority order; return the final time."""
        heap = self._heap
        routes = self._routes
        while heap:
            if until is not None and heap[0][0] > until:
                break
            time, _, _, event = heapq.heappop(heap)
            self.now = time
            self.events_processed += 1
            if self.trace is not None:
                self.trace.record(event)
            route = routes.get((event.__class__, event.stream))
            if route is None:
                route = self._build_route(event.__class__, event.stream)
            for handler in route:
                handler(event)
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    @property
    def heap_high_water(self) -> int:
        """Largest number of events ever queued at once.

        The memory-plane health metric of the scheduling discipline: eager
        horizon-wide priming pushes this to O(total frames in the fleet),
        the lazy arrival cursors keep it at O(active streams) plus in-flight
        dispatch/completion events — independent of horizon length.
        """
        return self._heap_high_water

    # -- resources -----------------------------------------------------
    def busy_until(self, *resources: str) -> float:
        """Latest time any of ``resources`` is occupied (0 when never used)."""
        if len(resources) == 1:  # single-PE mappings dominate the hot path
            return self._busy.get(resources[0], 0.0)
        if not resources:
            return 0.0
        return max(self._busy.get(r, 0.0) for r in resources)

    def acquire(
        self, resources: Tuple[str, ...], ready_time: float, duration: float
    ) -> Tuple[float, float]:
        """Reserve ``resources`` for ``duration`` starting when all are free.

        Returns ``(start, end)`` with ``start = max(ready_time, busy)``; the
        caller is queued behind earlier reservations, which is how the
        kernel models serial accelerator occupancy.
        """
        start = max(ready_time, self.busy_until(*resources))
        end = start + duration
        for r in resources:
            self._busy[r] = end
        return start, end

    def resource_busy_times(self) -> Dict[str, float]:
        """Snapshot of each resource's busy-until time."""
        return dict(self._busy)


# ----------------------------------------------------------------------
# memoized cost models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LayerCost:
    """Memoized latency/energy of one layer execution."""

    latency: float
    energy: float


class LayerCostTable:
    """Memo table for per-layer latency and energy.

    Entries are keyed on ``(layer, pe, precision, sparse, occupancy-bucket,
    batch)``.  With ``occupancy_resolution=None`` (the default) the bucket is
    the exact occupancy value — results are bit-for-bit identical to calling
    the latency/energy models directly, and repeated occupancies (the dense
    path always passes 1.0) still hit the cache.  A positive resolution
    quantizes the occupancy to that grid before *both* keying and computing,
    trading a bounded modelling error for a much higher hit rate under heavy
    multi-stream traffic.
    """

    def __init__(
        self,
        latency_model: Optional[LatencyModel] = None,
        energy_model: Optional[EnergyModel] = None,
        occupancy_resolution: Optional[float] = None,
    ) -> None:
        if occupancy_resolution is not None and not 0 < occupancy_resolution <= 1:
            raise ValueError("occupancy_resolution must be in (0, 1] or None")
        self.latency_model = latency_model or LatencyModel()
        self.energy_model = energy_model or EnergyModel(self.latency_model)
        self.occupancy_resolution = occupancy_resolution
        self._cache: Dict[tuple, LayerCost] = {}
        self.hits = 0
        self.misses = 0

    def bucket(self, occupancy: Optional[float]) -> Optional[float]:
        """Quantize an occupancy to its bucket representative (clamped [0, 1]).

        Nonzero occupancies round *up* to at least the first bucket: a small
        positive density (e.g. ``1e-4`` with the default 1/64 resolution)
        must not quantize to ``0.0``, which would zero the dense
        memory-traffic term in the latency model and clamp sparse costs down
        to the ``min_sparse_fraction`` floor regardless of the actual input.
        """
        if occupancy is None:
            return None
        occupancy = min(max(float(occupancy), 0.0), 1.0)
        if not self.occupancy_resolution:
            return occupancy
        steps = round(occupancy / self.occupancy_resolution)
        if steps == 0 and occupancy > 0.0:
            steps = 1
        return min(steps * self.occupancy_resolution, 1.0)

    def layer_cost(
        self,
        layer: LayerSpec,
        pe: ProcessingElement,
        precision: Precision,
        sparse: bool = False,
        occupancy: Optional[float] = None,
        batch: int = 1,
        quantize: bool = True,
    ) -> LayerCost:
        """Memoized ``(latency, energy)`` of one layer execution.

        With ``quantize=False`` the occupancy is used (and keyed) exactly as
        given instead of being snapped to its bucket.  The scalar-keyed
        oracle in :mod:`repro.runtime.legacy` uses this to model the
        pre-profile stack, whose cells had no per-layer quantization —
        production callers leave it enabled.
        """
        if quantize:
            occ = self.bucket(occupancy)
        elif occupancy is None:
            occ = None
        else:
            occ = min(max(float(occupancy), 0.0), 1.0)
        key = (layer, pe.name, precision, sparse, occ, batch)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        latency = self.latency_model.layer_latency(
            layer, pe, precision, sparse=sparse, occupancy=occ, batch=batch
        ).total
        energy = self.energy_model.layer_energy(
            layer, pe, precision, sparse=sparse, occupancy=occ, batch=batch
        ).total
        cost = LayerCost(latency, energy)
        self._cache[key] = cost
        return cost

    def cache_info(self) -> Dict[str, float]:
        """Hit/miss counters, hit-rate and current table size."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._cache),
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }


# Supported cost-stack semantics: "flat" reproduces the pre-profile scalar
# path bit for bit (measured occupancy on the first layer, static modelled
# sparsity deeper); "profile" propagates the input density layer by layer and
# buckets it per layer after propagation.
COST_MODES = ("flat", "profile")


class NetworkCostModel:
    """Whole-network inference cost under one fixed mapping and config.

    The layer→(PE, precision) assignment is resolved once at construction
    (the same rules the seed pipeline applied per call: NMP mapping when
    enabled, GPU + baseline precision otherwise, GPU fallback for layers the
    assigned device cannot run).

    The model is a *layered cost stack*: every inference is costed from an
    :class:`~repro.nn.occupancy.OccupancyProfile` (one occupancy per
    resolved layer) whose per-layer entries index the shared
    :class:`LayerCostTable` cells; the composed whole-network result is
    memoized on ``(profile, batch)``.  ``cost_mode`` selects how profiles
    are built:

    * ``"flat"`` (default) — the measured input occupancy drives the first
      layer, deeper layers use their static modelled sparsity.  Semantics
      (and results) are bit-identical to the pre-profile scalar path kept
      as :class:`repro.runtime.legacy.ScalarCostModel`.
    * ``"profile"`` — the input density is propagated through the layers
      (support dilation + activation sparsification, see
      :mod:`repro.nn.occupancy`) and bucketed **per layer after
      propagation**.  Mixed-density traffic converges onto the same deep
      buckets within a few layers, so DSFA merges and heterogeneous
      streams share every deep-layer cache cell instead of thrashing the
      memo per input bucket.
    """

    def __init__(
        self,
        network: LayerGraph,
        platform: Platform,
        config: Optional[EvEdgeConfig] = None,
        mapping: Optional[MappingCandidate] = None,
        table: Optional[LayerCostTable] = None,
        cost_mode: str = "flat",
    ) -> None:
        if cost_mode not in COST_MODES:
            raise ValueError(
                f"unknown cost_mode {cost_mode!r}; expected one of {COST_MODES}"
            )
        self.network = network
        self.platform = platform
        self.config = config or EvEdgeConfig()
        self.mapping = mapping
        self.table = table or LayerCostTable()
        self.cost_mode = cost_mode
        self._specs = [spec for spec in network.layers() if spec.kind.is_compute]
        self._cache: Dict[tuple, Tuple[float, float]] = {}
        # Input bucket -> built profile.  Profiles depend only on the layer
        # structure (never on the mapping), so rebind() leaves this intact.
        self._profiles: Dict[Optional[float], OccupancyProfile] = {}
        self._resolve()

    def _resolve(self) -> None:
        """Resolve the layer→(PE, precision) assignment under the active mapping."""
        self._assignments: List[Tuple[LayerSpec, ProcessingElement, Precision]] = []
        for spec in self._specs:
            pe, precision = self._assignment_for(spec.name)
            if not pe.supports_layer(spec):
                pe = self.platform.gpu()
            self._assignments.append((spec, pe, precision))
        seen: List[str] = []
        for _, pe, _ in self._assignments:
            if pe.name not in seen:
                seen.append(pe.name)
        self._pes_used = tuple(seen)

    def rebind(self, mapping: Optional[MappingCandidate]) -> None:
        """Swap the NMP mapping and invalidate every memoized inference cost.

        Used by online traffic-adaptive remapping: the per-layer costs in the
        shared :class:`LayerCostTable` stay valid (they are keyed on the
        layer/PE/precision, not on the mapping), but the resolved assignment
        list, the occupied-PE set and the whole-network cost memo are all
        mapping-dependent and must be rebuilt.  Note that an execution
        server's *grouping* of streams (its :meth:`signature` at construction
        time) is intentionally not revisited — streams that shared a cost
        surface before a remap still share the rebound one.
        """
        self.mapping = mapping
        self._resolve()
        self._cache.clear()

    # ------------------------------------------------------------------
    def _assignment_for(self, node_name: str) -> Tuple[ProcessingElement, Precision]:
        """(pe, precision) of one layer under the active mapping."""
        gpu = self.platform.gpu()
        if self.mapping is None or not self.config.optimization.uses_nmp:
            return gpu, self.config.baseline_precision
        full_node = f"{self.network.name}.{node_name}"
        if full_node in self.mapping:
            assignment = self.mapping[full_node]
        elif node_name in self.mapping:
            assignment = self.mapping[node_name]
        else:
            return gpu, self.config.baseline_precision
        return self.platform.pe(assignment.pe), assignment.precision

    @property
    def pes_used(self) -> Tuple[str, ...]:
        """Names of the processing elements this network's mapping occupies."""
        return self._pes_used

    @property
    def uses_sparse(self) -> bool:
        """True when the configured optimization level executes sparse kernels."""
        return self.config.optimization.uses_sparse

    @staticmethod
    def signature_for(
        network: LayerGraph,
        config: Optional[EvEdgeConfig] = None,
        mapping: Optional[MappingCandidate] = None,
    ) -> tuple:
        """Signature of the cost surface *without* constructing a model.

        The traffic simulator uses this to decide whether a stream joins an
        existing :class:`NetworkCostModel` (and execution server) before
        paying for a full assignment resolution — constructing a model per
        source just to discard it when the signature already had a server
        was a measurable share of fleet start-up time.
        """
        config = config or EvEdgeConfig()
        mapping_key = None if mapping is None else mapping.key()
        return (
            network.name,
            tuple(spec for spec in network.layers() if spec.kind.is_compute),
            mapping_key,
            config.optimization,
            config.baseline_precision,
        )

    def signature(self) -> tuple:
        """Identity of the (network, mapping, config) cost surface.

        Streams with equal signatures run the same computation and may be
        batched together by the traffic simulator.  The layer specs are part
        of the identity: two networks that share a name but differ
        structurally (e.g. the same zoo model built at two resolutions) must
        not share a cost model or an execution server.

        Delegates to :meth:`signature_for` so the model-free and model-bound
        identity definitions cannot drift apart.
        """
        return NetworkCostModel.signature_for(self.network, self.config, self.mapping)

    # ------------------------------------------------------------------
    # occupancy profiles
    # ------------------------------------------------------------------
    def _build_profile(self, occ_key: Optional[float]) -> OccupancyProfile:
        """Profile for one *bucketed* input occupancy (subclass hook).

        Propagation follows the network *graph*: multi-input layers see the
        combined support of all their predecessors rather than whichever
        spec happened to precede them in topological order.  The entries
        come back in the same topo order the assignments were resolved in
        (``network.layers()`` filtered to compute specs), so memoization
        keys and per-layer bucketing are unchanged — and for purely serial
        networks the result is bit-identical to the chain walk.
        """
        num_layers = len(self._assignments)
        if self.cost_mode == "flat" or occ_key is None or num_layers <= 1:
            return OccupancyProfile.flat(occ_key, num_layers)
        raw = OccupancyProfile.from_graph(self.network, occ_key)
        return raw.bucketed(self.table.bucket)

    def occupancy_profile(self, occupancy: Optional[float]) -> OccupancyProfile:
        """The (cached) per-layer profile for one measured input occupancy."""
        occ_key = self.table.bucket(occupancy)
        profile = self._profiles.get(occ_key)
        if profile is None:
            profile = self._build_profile(occ_key)
            self._profiles[occ_key] = profile
        return profile

    def batch_profile(
        self,
        batch: SparseFrameBatch,
        occupancy: Optional[float] = None,
    ) -> OccupancyProfile:
        """Input profile of one (possibly merged) dispatched batch.

        ``occupancy`` is the caller's already-computed mean input density
        (the scalar stamped on the inference record); when omitted it is
        derived from the batch.  In ``"flat"`` mode the batch is costed at
        that single density — exactly the scalar path.  In ``"profile"``
        mode each frame of the batch is propagated independently and the
        member profiles are combined entry-wise (merge-time profile
        combination): a batched inference runs every member through the
        same layers, so the batch's per-layer occupancy is the mean of the
        members' per-layer occupancies — not the propagation of their mean,
        which differs because propagation is nonlinear.
        """
        if occupancy is None:
            occupancy = batch.mean_density if self.uses_sparse else 1.0
        if (
            self.cost_mode == "flat"
            or not self.uses_sparse
            or len(batch) <= 1
        ):
            return self.occupancy_profile(max(float(occupancy), 1e-4))
        return self.densities_profile(batch.frame_densities(), occupancy)

    def densities_profile(
        self, densities: Sequence[float], occupancy: float
    ) -> OccupancyProfile:
        """Input profile from an explicit per-frame density sequence.

        The density-column form of :meth:`batch_profile`: cross-stream
        merges hand the member batches' density columns straight to the
        cost stack, so no concatenated batch (and no per-frame view) is
        ever materialised for costing.
        """
        occupancy = max(float(occupancy), 1e-4)
        if self.cost_mode == "flat" or not self.uses_sparse or len(densities) <= 1:
            return self.occupancy_profile(occupancy)
        members = [
            self.occupancy_profile(max(density, 1e-4)) for density in densities
        ]
        return self._bucket_profile(OccupancyProfile.combine(members))

    def _bucket_profile(self, profile: OccupancyProfile) -> OccupancyProfile:
        """Per-layer quantization of a freshly combined profile.

        Subclass hook: the layered stack snaps every entry to its table
        bucket; the scalar-keyed oracle keeps combined entries raw, matching
        its no-per-layer-bucketing architecture.
        """
        return profile.bucketed(self.table.bucket)

    # ------------------------------------------------------------------
    def profile_cost(
        self, profile: OccupancyProfile, batch: int
    ) -> Tuple[float, float]:
        """Memoized latency and energy of one invocation at ``profile``.

        Composes the per-layer cost cells of the shared
        :class:`LayerCostTable` into a network total: each resolved layer is
        costed at its profile entry (``None`` = static modelled sparsity),
        and a unified-memory transfer is added whenever producer and
        consumer sit on different devices (execution is serial, so
        transfers are summed).  The composed result is memoized on
        ``(profile, batch)`` — profiles that converge onto the same
        per-layer buckets share one entry.
        """
        key = (profile.key(), batch)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if len(profile) != len(self._assignments):
            raise ValueError(
                "profile length does not match the resolved layer count "
                f"({len(profile)} != {len(self._assignments)})"
            )
        sparse = self.uses_sparse
        quantize = self._quantize_layers
        total_latency = 0.0
        total_energy = 0.0
        previous_pe = None
        previous_spec = None
        previous_precision = None
        for (spec, pe, precision), occ in zip(self._assignments, profile):
            layer_sparse = sparse and pe.supports_sparse
            cost = self.table.layer_cost(
                spec,
                pe,
                precision,
                sparse=layer_sparse,
                occupancy=occ,
                batch=batch,
                quantize=quantize,
            )
            total_latency += cost.latency
            total_energy += cost.energy
            if previous_pe is not None and previous_pe.name != pe.name:
                transfer_bytes = previous_spec.output_bytes(previous_precision) * batch
                total_latency += self.platform.transfer_time(
                    transfer_bytes, previous_pe.name, pe.name
                )
                total_energy += self.table.energy_model.transfer_energy(transfer_bytes)
            previous_pe, previous_spec, previous_precision = pe, spec, precision
        result = (total_latency, total_energy)
        self._cache[key] = result
        return result

    # Whether profile entries are snapped to table buckets when costing a
    # layer.  The layered stack always quantizes (entries are bucket
    # representatives already, so this mirrors the pre-profile double
    # bucketing bit for bit); the scalar-keyed oracle overrides it.
    _quantize_layers = True

    def inference_cost(self, occupancy: float, batch: int) -> Tuple[float, float]:
        """Memoized latency and energy of one network invocation.

        Convenience wrapper: builds the occupancy profile for the measured
        input density and composes it through :meth:`profile_cost`.
        """
        return self.profile_cost(self.occupancy_profile(occupancy), batch)
