"""Sensor noise models for simulated DVS streams.

Real event cameras exhibit background activity (spurious events without a
brightness change), hot pixels (pixels firing at an abnormally high rate) and
event drop under bus saturation.  The paper's datasets contain such noise;
the Ev-Edge optimizations (E2SF/DSFA) must be robust to it, so we provide
composable noise injectors that operate on :class:`~repro.events.types.EventStream`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .types import EventStream, SensorGeometry, concatenate_streams

__all__ = [
    "BackgroundActivityNoise",
    "HotPixelNoise",
    "EventDropNoise",
    "NoisePipeline",
]


class BackgroundActivityNoise:
    """Uniform spurious events across the array at a fixed rate.

    Parameters
    ----------
    rate_hz:
        Total spurious events per second across the whole sensor.
    seed:
        RNG seed for reproducibility.
    """

    def __init__(self, rate_hz: float = 1000.0, seed: Optional[int] = None) -> None:
        if rate_hz < 0:
            raise ValueError("rate_hz must be non-negative")
        self.rate_hz = rate_hz
        self._rng = np.random.default_rng(seed)

    def apply(self, stream: EventStream) -> EventStream:
        """Return a copy of ``stream`` with background activity merged in."""
        duration = stream.duration
        if duration <= 0 or self.rate_hz == 0:
            return stream.copy()
        geometry = stream.geometry
        n_noise = self._rng.poisson(self.rate_hz * duration)
        if n_noise == 0:
            return stream.copy()
        x = self._rng.integers(0, geometry.width, n_noise)
        y = self._rng.integers(0, geometry.height, n_noise)
        t = self._rng.uniform(stream.t_start, stream.t_end, n_noise)
        p = self._rng.choice(np.array([-1, 1], dtype=np.int8), n_noise)
        noise = EventStream(x, y, np.sort(t), p, geometry)
        return concatenate_streams([stream, noise])


class HotPixelNoise:
    """A small set of pixels that fire continuously at a high rate."""

    def __init__(
        self,
        num_hot_pixels: int = 5,
        pixel_rate_hz: float = 2000.0,
        seed: Optional[int] = None,
    ) -> None:
        if num_hot_pixels < 0:
            raise ValueError("num_hot_pixels must be non-negative")
        if pixel_rate_hz < 0:
            raise ValueError("pixel_rate_hz must be non-negative")
        self.num_hot_pixels = num_hot_pixels
        self.pixel_rate_hz = pixel_rate_hz
        self._rng = np.random.default_rng(seed)

    def apply(self, stream: EventStream) -> EventStream:
        """Return a copy of ``stream`` with hot-pixel events merged in."""
        duration = stream.duration
        if duration <= 0 or self.num_hot_pixels == 0 or self.pixel_rate_hz == 0:
            return stream.copy()
        geometry = stream.geometry
        hot_x = self._rng.integers(0, geometry.width, self.num_hot_pixels)
        hot_y = self._rng.integers(0, geometry.height, self.num_hot_pixels)
        pieces = [stream]
        for px, py in zip(hot_x, hot_y):
            n = self._rng.poisson(self.pixel_rate_hz * duration)
            if n == 0:
                continue
            t = np.sort(self._rng.uniform(stream.t_start, stream.t_end, n))
            p = self._rng.choice(np.array([-1, 1], dtype=np.int8), n)
            pieces.append(
                EventStream(
                    np.full(n, px, dtype=np.int32),
                    np.full(n, py, dtype=np.int32),
                    t,
                    p,
                    geometry,
                )
            )
        return concatenate_streams(pieces)


class EventDropNoise:
    """Randomly drop a fraction of events (bus saturation / readout loss)."""

    def __init__(self, drop_probability: float = 0.05, seed: Optional[int] = None) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability
        self._rng = np.random.default_rng(seed)

    def apply(self, stream: EventStream) -> EventStream:
        """Return ``stream`` with each event independently dropped."""
        if len(stream) == 0 or self.drop_probability == 0.0:
            return stream.copy()
        keep = self._rng.random(len(stream)) >= self.drop_probability
        return stream.select(keep)


class NoisePipeline:
    """Apply a sequence of noise injectors in order."""

    def __init__(self, *stages) -> None:
        self.stages = list(stages)

    def apply(self, stream: EventStream) -> EventStream:
        """Run every stage over ``stream`` and return the result."""
        out = stream
        for stage in self.stages:
            out = stage.apply(out)
        return out
