"""Synthetic intensity-scene generators.

The MVSEC and DENSE datasets used by the paper are recordings of indoor
drone flights, outdoor driving and a simulated town.  We do not ship those
recordings; instead these generators produce intensity-frame sequences whose
*event statistics* (burstiness, spatial sparsity, motion patterns) resemble
the recorded sequences once passed through :class:`~repro.events.camera.DVSCamera`.

Every generator returns ``(frames, timestamps, ground_truth)`` where
``ground_truth`` carries per-interval dense optical flow / depth /
segmentation maps so that accuracy metrics can be computed against a known
reference (the substitution documented in DESIGN.md Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .types import SensorGeometry

__all__ = [
    "SceneGroundTruth",
    "SceneSequence",
    "MovingBarsScene",
    "DroneFlightScene",
    "DrivingScene",
    "RotatingDiskScene",
]


@dataclass
class SceneGroundTruth:
    """Ground-truth signals for one inter-frame interval.

    Attributes
    ----------
    flow:
        ``(2, H, W)`` dense optical flow in pixels per interval
        (``flow[0]`` = horizontal, ``flow[1]`` = vertical).
    depth:
        ``(H, W)`` depth map in meters (np.inf for background).
    segmentation:
        ``(H, W)`` integer class labels (0 = background).
    """

    flow: np.ndarray
    depth: np.ndarray
    segmentation: np.ndarray


@dataclass
class SceneSequence:
    """A generated intensity sequence plus per-interval ground truth."""

    frames: List[np.ndarray]
    timestamps: np.ndarray
    ground_truth: List[SceneGroundTruth]
    name: str = "scene"

    def __post_init__(self) -> None:
        if len(self.frames) != self.timestamps.size:
            raise ValueError("one timestamp per frame is required")
        if len(self.ground_truth) != max(len(self.frames) - 1, 0):
            raise ValueError("one ground-truth record per frame interval is required")

    @property
    def num_intervals(self) -> int:
        """Number of inter-frame intervals (frames - 1)."""
        return max(len(self.frames) - 1, 0)


def _background(geometry: SensorGeometry, rng: np.random.Generator) -> np.ndarray:
    """Low-contrast static background texture."""
    base = rng.uniform(0.35, 0.45, size=(geometry.height, geometry.width))
    # Add a gentle horizontal gradient so the scene is not perfectly flat.
    gradient = np.linspace(0.0, 0.05, geometry.width)[None, :]
    return base + gradient


def _render_rect(
    image: np.ndarray,
    cx: float,
    cy: float,
    half_w: float,
    half_h: float,
    intensity: float,
) -> None:
    """Draw an axis-aligned bright rectangle onto ``image`` (in place)."""
    h, w = image.shape
    x0 = int(np.clip(np.floor(cx - half_w), 0, w))
    x1 = int(np.clip(np.ceil(cx + half_w), 0, w))
    y0 = int(np.clip(np.floor(cy - half_h), 0, h))
    y1 = int(np.clip(np.ceil(cy + half_h), 0, h))
    if x1 > x0 and y1 > y0:
        image[y0:y1, x0:x1] = intensity


def _render_disk(
    image: np.ndarray, cx: float, cy: float, radius: float, intensity: float
) -> None:
    """Draw a filled bright disk onto ``image`` (in place)."""
    h, w = image.shape
    yy, xx = np.ogrid[:h, :w]
    mask = (xx - cx) ** 2 + (yy - cy) ** 2 <= radius**2
    image[mask] = intensity


@dataclass
class _MovingObject:
    """A rectangular or circular object with constant velocity."""

    cx: float
    cy: float
    vx: float
    vy: float
    size_x: float
    size_y: float
    intensity: float
    depth: float
    label: int
    shape: str = "rect"

    def position(self, t: float) -> Tuple[float, float]:
        return (self.cx + self.vx * t, self.cy + self.vy * t)

    def render(self, image: np.ndarray, t: float) -> None:
        cx, cy = self.position(t)
        if self.shape == "disk":
            _render_disk(image, cx, cy, self.size_x, self.intensity)
        else:
            _render_rect(image, cx, cy, self.size_x, self.size_y, self.intensity)

    def paint_ground_truth(
        self, gt: SceneGroundTruth, t: float, dt: float
    ) -> None:
        """Write this object's flow/depth/label into the ground-truth maps."""
        cx, cy = self.position(t)
        h, w = gt.depth.shape
        if self.shape == "disk":
            yy, xx = np.ogrid[:h, :w]
            mask = (xx - cx) ** 2 + (yy - cy) ** 2 <= self.size_x**2
        else:
            mask = np.zeros((h, w), dtype=bool)
            x0 = int(np.clip(np.floor(cx - self.size_x), 0, w))
            x1 = int(np.clip(np.ceil(cx + self.size_x), 0, w))
            y0 = int(np.clip(np.floor(cy - self.size_y), 0, h))
            y1 = int(np.clip(np.ceil(cy + self.size_y), 0, h))
            mask[y0:y1, x0:x1] = True
        gt.flow[0][mask] = self.vx * dt
        gt.flow[1][mask] = self.vy * dt
        closer = mask & (self.depth < gt.depth)
        gt.depth[closer] = self.depth
        gt.segmentation[closer] = self.label


class _ObjectScene:
    """Shared machinery: render a set of moving objects over a background."""

    def __init__(
        self,
        geometry: SensorGeometry,
        duration: float,
        frame_rate: float,
        seed: Optional[int],
        name: str,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        if frame_rate <= 0:
            raise ValueError("frame_rate must be positive")
        self.geometry = geometry
        self.duration = duration
        self.frame_rate = frame_rate
        self.rng = np.random.default_rng(seed)
        self.name = name

    def _objects_at(self, t: float) -> List[_MovingObject]:
        raise NotImplementedError

    def generate(self) -> SceneSequence:
        """Render the full sequence of intensity frames and ground truth."""
        n_frames = int(round(self.duration * self.frame_rate)) + 1
        timestamps = np.arange(n_frames) / self.frame_rate
        background = _background(self.geometry, self.rng)

        frames: List[np.ndarray] = []
        for t in timestamps:
            image = background.copy()
            for obj in self._objects_at(float(t)):
                obj.render(image, float(t))
            frames.append(image)

        ground_truth: List[SceneGroundTruth] = []
        h, w = self.geometry.height, self.geometry.width
        dt = 1.0 / self.frame_rate
        for i in range(n_frames - 1):
            t = float(timestamps[i])
            gt = SceneGroundTruth(
                flow=np.zeros((2, h, w)),
                depth=np.full((h, w), np.inf),
                segmentation=np.zeros((h, w), dtype=np.int32),
            )
            for obj in self._objects_at(t):
                obj.paint_ground_truth(gt, t, dt)
            ground_truth.append(gt)

        return SceneSequence(
            frames=frames,
            timestamps=timestamps,
            ground_truth=ground_truth,
            name=self.name,
        )


class MovingBarsScene(_ObjectScene):
    """Bright vertical/horizontal bars translating at constant speed.

    The simplest scene: produces a moderate, steady event rate.  Useful for
    unit tests because the expected optical flow is exactly the bar velocity.
    """

    def __init__(
        self,
        geometry: Optional[SensorGeometry] = None,
        duration: float = 1.0,
        frame_rate: float = 30.0,
        num_bars: int = 3,
        speed: float = 40.0,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(geometry or SensorGeometry(), duration, frame_rate, seed, "moving_bars")
        self.num_bars = num_bars
        self.speed = speed
        w, h = self.geometry.width, self.geometry.height
        self._objects = []
        for i in range(num_bars):
            self._objects.append(
                _MovingObject(
                    cx=w * (i + 1) / (num_bars + 1),
                    cy=h / 2,
                    vx=speed if i % 2 == 0 else -speed,
                    vy=0.0,
                    size_x=3.0,
                    size_y=h / 2.5,
                    intensity=0.9,
                    depth=2.0 + i,
                    label=1 + i,
                )
            )

    def _objects_at(self, t: float) -> List[_MovingObject]:
        return self._objects


class DroneFlightScene(_ObjectScene):
    """Indoor-flying-like scene: bursty motion with hover and dash phases.

    MVSEC ``indoor_flying`` sequences alternate between near-hover (very few
    events) and aggressive motion (event bursts).  We reproduce that temporal
    density profile (the paper's Figure 5) by modulating object velocity with
    a piecewise activity envelope.
    """

    def __init__(
        self,
        geometry: Optional[SensorGeometry] = None,
        duration: float = 2.0,
        frame_rate: float = 30.0,
        num_objects: int = 6,
        burst_period: float = 0.6,
        burst_fraction: float = 0.4,
        max_speed: float = 120.0,
        seed: Optional[int] = 1,
    ) -> None:
        super().__init__(geometry or SensorGeometry(), duration, frame_rate, seed, "drone_flight")
        self.burst_period = burst_period
        self.burst_fraction = burst_fraction
        self.max_speed = max_speed
        w, h = self.geometry.width, self.geometry.height
        base = min(w, h)
        self._base_objects: List[_MovingObject] = []
        for i in range(num_objects):
            shape = "disk" if i % 2 else "rect"
            self._base_objects.append(
                _MovingObject(
                    cx=float(self.rng.uniform(0.2 * w, 0.8 * w)),
                    cy=float(self.rng.uniform(0.2 * h, 0.8 * h)),
                    vx=float(self.rng.uniform(-1.0, 1.0)),
                    vy=float(self.rng.uniform(-1.0, 1.0)),
                    size_x=float(self.rng.uniform(0.03, 0.09) * base),
                    size_y=float(self.rng.uniform(0.03, 0.09) * base),
                    intensity=float(self.rng.uniform(0.7, 1.0)),
                    depth=float(self.rng.uniform(1.0, 6.0)),
                    label=1 + (i % 4),
                    shape=shape,
                )
            )

    def activity(self, t: float) -> float:
        """Activity envelope in [0.05, 1]: high during bursts, low while hovering."""
        phase = (t % self.burst_period) / self.burst_period
        if phase < self.burst_fraction:
            return 1.0
        return 0.05

    def _objects_at(self, t: float) -> List[_MovingObject]:
        act = self.activity(t)
        objects = []
        for obj in self._base_objects:
            objects.append(
                _MovingObject(
                    cx=obj.cx,
                    cy=obj.cy,
                    vx=obj.vx * self.max_speed * act,
                    vy=obj.vy * self.max_speed * act,
                    size_x=obj.size_x,
                    size_y=obj.size_y,
                    intensity=obj.intensity,
                    depth=obj.depth,
                    label=obj.label,
                    shape=obj.shape,
                )
            )
        return objects


class DrivingScene(_ObjectScene):
    """Outdoor-day-like scene: dense lateral optic flow from passing structure."""

    def __init__(
        self,
        geometry: Optional[SensorGeometry] = None,
        duration: float = 2.0,
        frame_rate: float = 30.0,
        num_objects: int = 12,
        speed: float = 90.0,
        seed: Optional[int] = 2,
    ) -> None:
        super().__init__(geometry or SensorGeometry(), duration, frame_rate, seed, "driving")
        w, h = self.geometry.width, self.geometry.height
        base = min(w, h)
        self._objects = []
        for i in range(num_objects):
            depth = float(self.rng.uniform(2.0, 30.0))
            # Nearer objects move faster across the image (parallax).
            parallax = speed * (4.0 / depth)
            self._objects.append(
                _MovingObject(
                    cx=float(self.rng.uniform(0, w)),
                    cy=float(self.rng.uniform(0.3 * h, h)),
                    vx=-parallax,
                    vy=0.0,
                    size_x=float(self.rng.uniform(0.02, 0.08) * base),
                    size_y=float(self.rng.uniform(0.04, 0.12) * base),
                    intensity=float(self.rng.uniform(0.6, 1.0)),
                    depth=depth,
                    label=1 + (i % 5),
                )
            )

    def _objects_at(self, t: float) -> List[_MovingObject]:
        return self._objects


class RotatingDiskScene(_ObjectScene):
    """High-speed rotating disk: stresses the cBatch merge mode of DSFA."""

    def __init__(
        self,
        geometry: Optional[SensorGeometry] = None,
        duration: float = 1.0,
        frame_rate: float = 60.0,
        angular_speed: float = 12.0,
        radius_fraction: float = 0.3,
        seed: Optional[int] = 3,
    ) -> None:
        super().__init__(geometry or SensorGeometry(), duration, frame_rate, seed, "rotating_disk")
        self.angular_speed = angular_speed
        self.radius_fraction = radius_fraction

    def _objects_at(self, t: float) -> List[_MovingObject]:
        w, h = self.geometry.width, self.geometry.height
        orbit = self.radius_fraction * min(w, h)
        angle = self.angular_speed * t
        cx = w / 2 + orbit * np.cos(angle)
        cy = h / 2 + orbit * np.sin(angle)
        vx = -orbit * self.angular_speed * np.sin(angle)
        vy = orbit * self.angular_speed * np.cos(angle)
        disk_radius = 0.12 * min(w, h)
        return [
            _MovingObject(
                cx=float(cx),
                cy=float(cy),
                vx=float(vx),
                vy=float(vy),
                size_x=disk_radius,
                size_y=disk_radius,
                intensity=0.95,
                depth=1.5,
                label=1,
                shape="disk",
            )
        ]
