"""Address Event Representation (AER) encoding and decoding.

Event cameras transmit events over a serial bus in AER packets.  This module
implements a compact binary packing compatible with the 32-bit address + 32-bit
timestamp convention used by DVS/DAVIS sensors, plus simple text export, so
that synthetic streams can be persisted and re-loaded by the examples and
benchmark harnesses.

Packet layout (little endian, per event):

====== ====== =================================================
bytes  field  meaning
====== ====== =================================================
0-3    addr   bit 0: polarity (1 = positive), bits 1-15: x, bits 16-30: y
4-7    ts     timestamp in microseconds relative to the stream start
====== ====== =================================================
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .types import EventStream, SensorGeometry

__all__ = [
    "encode_aer",
    "decode_aer",
    "save_aer",
    "load_aer",
    "stream_to_text",
    "stream_from_text",
]

_HEADER_MAGIC = b"EVRP"
_HEADER_FORMAT = "<4sHHdQ"  # magic, width, height, t0 (s), num_events
_HEADER_SIZE = struct.calcsize(_HEADER_FORMAT)
_US = 1_000_000.0


def encode_aer(stream: EventStream) -> bytes:
    """Encode an :class:`EventStream` into AER binary packets (with header)."""
    geometry = stream.geometry
    if geometry.width >= (1 << 15) or geometry.height >= (1 << 15):
        raise ValueError("sensor dimensions exceed the 15-bit AER address fields")
    header = struct.pack(
        _HEADER_FORMAT,
        _HEADER_MAGIC,
        geometry.width,
        geometry.height,
        float(stream.t_start),
        len(stream),
    )
    if len(stream) == 0:
        return header
    pol_bit = (stream.p > 0).astype(np.uint32)
    addr = pol_bit | (stream.x.astype(np.uint32) << 1) | (stream.y.astype(np.uint32) << 16)
    rel_us = np.round((stream.t - stream.t_start) * _US).astype(np.uint32)
    packed = np.empty(len(stream) * 2, dtype=np.uint32)
    packed[0::2] = addr
    packed[1::2] = rel_us
    return header + packed.astype("<u4").tobytes()


def decode_aer(data: bytes, geometry: Optional[SensorGeometry] = None) -> EventStream:
    """Decode AER binary packets produced by :func:`encode_aer`."""
    if len(data) < _HEADER_SIZE:
        raise ValueError("AER buffer too short to contain a header")
    magic, width, height, t0, num_events = struct.unpack(
        _HEADER_FORMAT, data[:_HEADER_SIZE]
    )
    if magic != _HEADER_MAGIC:
        raise ValueError("not an Ev-Edge AER buffer (bad magic)")
    geometry = geometry or SensorGeometry(width=width, height=height)
    body = np.frombuffer(data[_HEADER_SIZE:], dtype="<u4")
    if body.size != num_events * 2:
        raise ValueError("AER buffer length does not match the event count header")
    if num_events == 0:
        return EventStream.empty(geometry)
    addr = body[0::2]
    rel_us = body[1::2]
    p = np.where((addr & 0x1).astype(bool), 1, -1).astype(np.int8)
    x = ((addr >> 1) & 0x7FFF).astype(np.int32)
    y = ((addr >> 16) & 0x7FFF).astype(np.int32)
    t = t0 + rel_us.astype(np.float64) / _US
    return EventStream(x, y, t, p, geometry)


def save_aer(stream: EventStream, path: Union[str, Path]) -> None:
    """Write ``stream`` to ``path`` in AER binary format."""
    Path(path).write_bytes(encode_aer(stream))


def load_aer(path: Union[str, Path]) -> EventStream:
    """Read an AER binary file written by :func:`save_aer`."""
    return decode_aer(Path(path).read_bytes())


def stream_to_text(stream: EventStream) -> str:
    """Export events as whitespace-separated ``t x y p`` lines (rpg_dvs style)."""
    lines = [
        f"{t:.9f} {x} {y} {1 if p > 0 else 0}"
        for x, y, t, p in stream
    ]
    return "\n".join(lines)


def stream_from_text(
    text: str, geometry: Optional[SensorGeometry] = None
) -> EventStream:
    """Parse ``t x y p`` lines back into an :class:`EventStream`."""
    xs, ys, ts, ps = [], [], [], []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        t_str, x_str, y_str, p_str = line.split()
        ts.append(float(t_str))
        xs.append(int(x_str))
        ys.append(int(y_str))
        ps.append(1 if int(p_str) > 0 else -1)
    if not xs:
        return EventStream.empty(geometry)
    return EventStream(
        np.array(xs), np.array(ys), np.array(ts), np.array(ps), geometry
    )
