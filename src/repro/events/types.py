"""Core event data types.

Event cameras emit *events* in Address Event Representation (AER): tuples
``{x, y, t, p}`` where ``(x, y)`` is the pixel location, ``t`` the timestamp
and ``p`` the polarity of the brightness change (+1 / -1).

This module defines :class:`EventStream`, a column-oriented, numpy-backed
container for a sequence of events, plus :class:`SensorGeometry` describing
the emitting sensor.  All higher level components (the Event2Sparse Frame
converter, frame builders, dataset generators) operate on these types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SensorGeometry",
    "EventStream",
    "concatenate_streams",
]


@dataclass(frozen=True)
class SensorGeometry:
    """Resolution and physical characteristics of a DVS sensor.

    Attributes
    ----------
    width, height:
        Pixel array dimensions.  MVSEC uses a DAVIS 346 (346x260); the
        original DVS128 is 128x128.
    contrast_threshold:
        Log-intensity change required to fire an event (``theta`` in the
        paper's Section 2).
    refractory_period:
        Minimum time (seconds) between two events at the same pixel.
    """

    width: int = 346
    height: int = 260
    contrast_threshold: float = 0.15
    refractory_period: float = 1e-4

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("sensor dimensions must be positive")
        if self.contrast_threshold <= 0:
            raise ValueError("contrast_threshold must be positive")
        if self.refractory_period < 0:
            raise ValueError("refractory_period must be non-negative")

    @property
    def resolution(self) -> Tuple[int, int]:
        """Return ``(width, height)``."""
        return (self.width, self.height)

    @property
    def num_pixels(self) -> int:
        """Total number of pixels in the array."""
        return self.width * self.height


class EventStream:
    """A column-oriented batch of DVS events sorted by timestamp.

    Parameters
    ----------
    x, y:
        Integer pixel coordinates, ``0 <= x < width`` and ``0 <= y < height``.
    t:
        Timestamps in seconds (float64), non-decreasing.
    p:
        Polarities, ``+1`` for a positive brightness change and ``-1`` for a
        negative one.
    geometry:
        The sensor that produced the events.

    Notes
    -----
    The class intentionally stores events as four parallel arrays (struct of
    arrays) rather than an array of structs: every downstream consumer
    (binning, frame accumulation, density statistics) is vectorised over
    columns.
    """

    __slots__ = ("x", "y", "t", "p", "geometry")

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        t: np.ndarray,
        p: np.ndarray,
        geometry: Optional[SensorGeometry] = None,
    ) -> None:
        x = np.asarray(x, dtype=np.int32)
        y = np.asarray(y, dtype=np.int32)
        t = np.asarray(t, dtype=np.float64)
        p = np.asarray(p, dtype=np.int8)
        if not (x.shape == y.shape == t.shape == p.shape):
            raise ValueError("x, y, t, p must have identical shapes")
        if x.ndim != 1:
            raise ValueError("event columns must be one-dimensional")
        geometry = geometry or SensorGeometry()
        if x.size:
            if x.min() < 0 or x.max() >= geometry.width:
                raise ValueError("x coordinates out of sensor bounds")
            if y.min() < 0 or y.max() >= geometry.height:
                raise ValueError("y coordinates out of sensor bounds")
            if np.any(np.diff(t) < 0):
                order = np.argsort(t, kind="stable")
                x, y, t, p = x[order], y[order], t[order], p[order]
            if not np.all(np.isin(p, (-1, 1))):
                raise ValueError("polarities must be +1 or -1")
        self.x = x
        self.y = y
        self.t = t
        self.p = p
        self.geometry = geometry

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, geometry: Optional[SensorGeometry] = None) -> "EventStream":
        """Return a stream containing no events."""
        zero = np.zeros(0)
        return cls(zero, zero, zero, zero, geometry=geometry)

    @classmethod
    def from_arrays(
        cls,
        array: np.ndarray,
        geometry: Optional[SensorGeometry] = None,
    ) -> "EventStream":
        """Build a stream from an ``(N, 4)`` array of ``[x, y, t, p]`` rows."""
        array = np.asarray(array)
        if array.ndim != 2 or array.shape[1] != 4:
            raise ValueError("expected an (N, 4) array of [x, y, t, p] rows")
        return cls(array[:, 0], array[:, 1], array[:, 2], array[:, 3], geometry)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.x.size)

    def __iter__(self) -> Iterator[Tuple[int, int, float, int]]:
        for i in range(len(self)):
            yield (int(self.x[i]), int(self.y[i]), float(self.t[i]), int(self.p[i]))

    def __repr__(self) -> str:
        if len(self) == 0:
            return "EventStream(num_events=0)"
        return (
            f"EventStream(num_events={len(self)}, "
            f"t=[{self.t[0]:.6f}, {self.t[-1]:.6f}], "
            f"sensor={self.geometry.width}x{self.geometry.height})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventStream):
            return NotImplemented
        return (
            len(self) == len(other)
            and np.array_equal(self.x, other.x)
            and np.array_equal(self.y, other.y)
            and np.allclose(self.t, other.t)
            and np.array_equal(self.p, other.p)
            and self.geometry == other.geometry
        )

    # ------------------------------------------------------------------
    # views and slicing
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Time span covered by the stream in seconds (0 if empty)."""
        if len(self) == 0:
            return 0.0
        return float(self.t[-1] - self.t[0])

    @property
    def t_start(self) -> float:
        """Timestamp of the first event (0 if empty)."""
        return float(self.t[0]) if len(self) else 0.0

    @property
    def t_end(self) -> float:
        """Timestamp of the last event (0 if empty)."""
        return float(self.t[-1]) if len(self) else 0.0

    @property
    def event_rate(self) -> float:
        """Mean events per second over the stream duration."""
        if self.duration <= 0:
            return 0.0
        return len(self) / self.duration

    def select(self, mask: np.ndarray) -> "EventStream":
        """Return a new stream containing events where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        return EventStream(
            self.x[mask], self.y[mask], self.t[mask], self.p[mask], self.geometry
        )

    def slice_time(self, t_start: float, t_end: float) -> "EventStream":
        """Return the events with ``t_start <= t < t_end``.

        Uses ``searchsorted`` over the (sorted) timestamp column, so slicing
        is O(log N + K) for K selected events.
        """
        lo = int(np.searchsorted(self.t, t_start, side="left"))
        hi = int(np.searchsorted(self.t, t_end, side="left"))
        return EventStream(
            self.x[lo:hi], self.y[lo:hi], self.t[lo:hi], self.p[lo:hi], self.geometry
        )

    def slice_index(self, start: int, stop: int) -> "EventStream":
        """Return the events with indices ``start <= i < stop``."""
        return EventStream(
            self.x[start:stop],
            self.y[start:stop],
            self.t[start:stop],
            self.p[start:stop],
            self.geometry,
        )

    def split_time(self, boundaries: Sequence[float]) -> List["EventStream"]:
        """Split the stream at the given time ``boundaries``.

        ``boundaries`` of length B produce B+1 streams covering
        ``(-inf, b0), [b0, b1), ..., [b_{B-1}, +inf)``.
        """
        idx = np.searchsorted(self.t, np.asarray(boundaries, dtype=np.float64))
        pieces = []
        prev = 0
        for i in list(idx) + [len(self)]:
            pieces.append(self.slice_index(prev, int(i)))
            prev = int(i)
        return pieces

    def shift_time(self, offset: float) -> "EventStream":
        """Return a copy with all timestamps shifted by ``offset`` seconds."""
        return EventStream(self.x, self.y, self.t + offset, self.p, self.geometry)

    def polarity_split(self) -> Tuple["EventStream", "EventStream"]:
        """Return ``(positive, negative)`` sub-streams."""
        pos = self.select(self.p > 0)
        neg = self.select(self.p < 0)
        return pos, neg

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def spatial_density(self) -> float:
        """Fraction of sensor pixels touched by at least one event."""
        if len(self) == 0:
            return 0.0
        flat = self.y.astype(np.int64) * self.geometry.width + self.x
        return float(np.unique(flat).size) / self.geometry.num_pixels

    def temporal_density(self, window: float) -> np.ndarray:
        """Events per consecutive time ``window`` (seconds) over the stream.

        Returns an array of per-window counts; the last partial window is
        included.  This is the quantity plotted in the paper's Figure 5.
        """
        if len(self) == 0:
            return np.zeros(0, dtype=np.int64)
        if window <= 0:
            raise ValueError("window must be positive")
        rel = self.t - self.t[0]
        n_windows = int(np.floor(rel[-1] / window)) + 1
        idx = np.minimum((rel / window).astype(np.int64), n_windows - 1)
        return np.bincount(idx, minlength=n_windows).astype(np.int64)

    def events_per_pixel(self) -> np.ndarray:
        """Return an ``(height, width)`` histogram of event counts per pixel."""
        counts = np.zeros((self.geometry.height, self.geometry.width), dtype=np.int64)
        np.add.at(counts, (self.y, self.x), 1)
        return counts

    def copy(self) -> "EventStream":
        """Deep-copy the stream."""
        return EventStream(
            self.x.copy(), self.y.copy(), self.t.copy(), self.p.copy(), self.geometry
        )

    def to_array(self) -> np.ndarray:
        """Return an ``(N, 4)`` float64 array of ``[x, y, t, p]`` rows."""
        return np.stack(
            [
                self.x.astype(np.float64),
                self.y.astype(np.float64),
                self.t,
                self.p.astype(np.float64),
            ],
            axis=1,
        )


def concatenate_streams(streams: Iterable[EventStream]) -> EventStream:
    """Merge several event streams into one, re-sorting by timestamp.

    All streams must share the same sensor geometry.  Used by the dataset
    generators to combine object-level event streams into a scene stream and
    to merge signal with noise events.
    """
    all_streams = list(streams)
    streams = [s for s in all_streams if len(s) > 0]
    if not streams:
        # All inputs are empty: preserve their geometry instead of silently
        # falling back to the default sensor.
        geometry = all_streams[0].geometry if all_streams else None
        for s in all_streams[1:]:
            if s.geometry != geometry:
                raise ValueError("cannot concatenate streams with different geometries")
        return EventStream.empty(geometry)
    geometry = streams[0].geometry
    for s in streams[1:]:
        if s.geometry != geometry:
            raise ValueError("cannot concatenate streams with different geometries")
    x = np.concatenate([s.x for s in streams])
    y = np.concatenate([s.y for s in streams])
    t = np.concatenate([s.t for s in streams])
    p = np.concatenate([s.p for s in streams])
    order = np.argsort(t, kind="stable")
    return EventStream(x[order], y[order], t[order], p[order], geometry)
