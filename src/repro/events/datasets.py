"""Synthetic stand-ins for the MVSEC and DENSE datasets.

The paper evaluates on recorded sequences from the Multi Vehicle Stereo Event
Camera dataset (MVSEC: ``indoor_flying1/2/3``, ``outdoor_day1``) and the
DENSE synthetic dataset (``town10``).  Those recordings are not available
offline, so this module generates sequences with matched qualitative
statistics (see DESIGN.md Section 2):

* ``indoor_flying*`` — bursty drone motion, large temporal density variance
  (the paper's Figure 5) and very sparse frames (0.15 %–5 % occupancy).
* ``outdoor_day1`` — steadier, denser lateral flow from driving.
* ``town10`` — driving-style scene with depth ground truth for the depth
  estimation task.

Every sequence is returned as an :class:`EventSequence` bundling the event
stream, the APS (grayscale) frames whose timestamps anchor E2SF, and the
dense ground-truth maps used by the accuracy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from .camera import CameraOutput, DVSCamera, GrayscaleFrame
from .noise import BackgroundActivityNoise, HotPixelNoise, NoisePipeline
from .synthetic import (
    DrivingScene,
    DroneFlightScene,
    MovingBarsScene,
    RotatingDiskScene,
    SceneGroundTruth,
    SceneSequence,
)
from .types import EventStream, SensorGeometry

__all__ = [
    "EventSequence",
    "DatasetSpec",
    "generate_sequence",
    "available_sequences",
    "MVSEC_SEQUENCES",
    "DENSE_SEQUENCES",
]


@dataclass
class EventSequence:
    """A fully rendered dataset sequence.

    Attributes
    ----------
    name:
        Sequence identifier, e.g. ``"indoor_flying1"``.
    events:
        The asynchronous event stream.
    frames:
        Synchronized grayscale frames (``Tstart``/``Tend`` anchors for E2SF).
    ground_truth:
        Per frame-interval dense ground truth (flow, depth, segmentation).
    geometry:
        Sensor geometry used to render the sequence.
    """

    name: str
    events: EventStream
    frames: List[GrayscaleFrame]
    ground_truth: List[SceneGroundTruth]
    geometry: SensorGeometry

    @property
    def frame_timestamps(self) -> np.ndarray:
        """Timestamps (seconds) of the grayscale frames."""
        return np.array([f.timestamp for f in self.frames], dtype=np.float64)

    @property
    def num_intervals(self) -> int:
        """Number of grayscale frame intervals."""
        return max(len(self.frames) - 1, 0)

    def interval(self, index: int) -> "EventSequence":
        """Return a one-interval view (events between frames ``index`` and ``index+1``)."""
        if not 0 <= index < self.num_intervals:
            raise IndexError(f"interval {index} out of range")
        t0 = self.frames[index].timestamp
        t1 = self.frames[index + 1].timestamp
        return EventSequence(
            name=f"{self.name}[{index}]",
            events=self.events.slice_time(t0, t1),
            frames=self.frames[index : index + 2],
            ground_truth=self.ground_truth[index : index + 1],
            geometry=self.geometry,
        )


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for generating one named sequence."""

    name: str
    dataset: str
    scene_factory: Callable[[SensorGeometry, float, int], SceneSequence]
    duration: float
    description: str
    noise_rate_hz: float = 500.0
    hot_pixels: int = 3


def _indoor_flying(variant: int) -> Callable[[SensorGeometry, float, int], SceneSequence]:
    def factory(geometry: SensorGeometry, duration: float, seed: int) -> SceneSequence:
        scene = DroneFlightScene(
            geometry=geometry,
            duration=duration,
            frame_rate=30.0,
            num_objects=4 + 2 * variant,
            burst_period=0.5 + 0.15 * variant,
            burst_fraction=0.3 + 0.1 * variant,
            max_speed=90.0 + 40.0 * variant,
            seed=seed + variant,
        )
        return scene.generate()

    return factory


def _outdoor_day(geometry: SensorGeometry, duration: float, seed: int) -> SceneSequence:
    return DrivingScene(
        geometry=geometry,
        duration=duration,
        frame_rate=30.0,
        num_objects=14,
        speed=110.0,
        seed=seed,
    ).generate()


def _town10(geometry: SensorGeometry, duration: float, seed: int) -> SceneSequence:
    return DrivingScene(
        geometry=geometry,
        duration=duration,
        frame_rate=30.0,
        num_objects=10,
        speed=70.0,
        seed=seed + 100,
    ).generate()


def _calibration_bars(geometry: SensorGeometry, duration: float, seed: int) -> SceneSequence:
    return MovingBarsScene(
        geometry=geometry, duration=duration, frame_rate=30.0, seed=seed
    ).generate()


def _high_speed_disk(geometry: SensorGeometry, duration: float, seed: int) -> SceneSequence:
    return RotatingDiskScene(
        geometry=geometry, duration=duration, frame_rate=60.0, seed=seed
    ).generate()


MVSEC_SEQUENCES: Dict[str, DatasetSpec] = {
    "indoor_flying1": DatasetSpec(
        name="indoor_flying1",
        dataset="mvsec",
        scene_factory=_indoor_flying(1),
        duration=2.0,
        description="Drone hover/dash cycles, sparse frames (MVSEC indoor_flying1 stand-in)",
    ),
    "indoor_flying2": DatasetSpec(
        name="indoor_flying2",
        dataset="mvsec",
        scene_factory=_indoor_flying(2),
        duration=2.0,
        description="More aggressive drone motion, high temporal density variance (Figure 5)",
    ),
    "indoor_flying3": DatasetSpec(
        name="indoor_flying3",
        dataset="mvsec",
        scene_factory=_indoor_flying(3),
        duration=2.0,
        description="Fastest drone sequence, densest bursts",
    ),
    "outdoor_day1": DatasetSpec(
        name="outdoor_day1",
        dataset="mvsec",
        scene_factory=_outdoor_day,
        duration=2.0,
        description="Driving sequence with steady lateral optic flow",
        noise_rate_hz=800.0,
    ),
}

DENSE_SEQUENCES: Dict[str, DatasetSpec] = {
    "town10": DatasetSpec(
        name="town10",
        dataset="dense",
        scene_factory=_town10,
        duration=2.0,
        description="DENSE Town 10 stand-in for depth estimation",
        noise_rate_hz=300.0,
    ),
}

_EXTRA_SEQUENCES: Dict[str, DatasetSpec] = {
    "calibration_bars": DatasetSpec(
        name="calibration_bars",
        dataset="synthetic",
        scene_factory=_calibration_bars,
        duration=1.0,
        description="Moving bars with exactly known optical flow (unit tests)",
        noise_rate_hz=0.0,
        hot_pixels=0,
    ),
    "high_speed_disk": DatasetSpec(
        name="high_speed_disk",
        dataset="synthetic",
        scene_factory=_high_speed_disk,
        duration=1.0,
        description="High-speed rotating disk exercising the cBatch merge mode",
        noise_rate_hz=200.0,
    ),
}

_ALL_SEQUENCES: Dict[str, DatasetSpec] = {
    **MVSEC_SEQUENCES,
    **DENSE_SEQUENCES,
    **_EXTRA_SEQUENCES,
}


def available_sequences() -> List[str]:
    """Return the names of every sequence this module can generate."""
    return sorted(_ALL_SEQUENCES)


def generate_sequence(
    name: str,
    scale: float = 1.0,
    duration: Optional[float] = None,
    seed: int = 0,
    with_noise: bool = True,
) -> EventSequence:
    """Generate the named sequence.

    Parameters
    ----------
    name:
        One of :func:`available_sequences`.
    scale:
        Spatial scale factor; ``scale=0.25`` renders at a quarter of the
        346x260 DAVIS resolution, which is what the unit tests use to keep
        runtimes small.  The event statistics (relative sparsity, burstiness)
        are preserved.
    duration:
        Override the sequence duration in seconds.
    seed:
        Base RNG seed; the same ``(name, scale, duration, seed)`` always
        yields an identical sequence.
    with_noise:
        Inject background activity and hot pixel noise (on by default to
        mirror real recordings).
    """
    if name not in _ALL_SEQUENCES:
        raise KeyError(
            f"unknown sequence '{name}'; available: {', '.join(available_sequences())}"
        )
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = _ALL_SEQUENCES[name]
    geometry = SensorGeometry(
        width=max(int(round(346 * scale)), 16),
        height=max(int(round(260 * scale)), 16),
    )
    dur = duration if duration is not None else spec.duration
    scene = spec.scene_factory(geometry, dur, seed)
    camera = DVSCamera(geometry=geometry, interpolation_steps=3, seed=seed)
    output: CameraOutput = camera.simulate(scene.frames, scene.timestamps)
    events = output.events
    if with_noise and (spec.noise_rate_hz > 0 or spec.hot_pixels > 0):
        # Scale the noise rate with the (reduced) pixel count so small test
        # renders keep the same relative noise level as full resolution.
        area_fraction = geometry.num_pixels / (346 * 260)
        pipeline = NoisePipeline(
            BackgroundActivityNoise(spec.noise_rate_hz * area_fraction, seed=seed + 7),
            HotPixelNoise(spec.hot_pixels, 1500.0, seed=seed + 11),
        )
        events = pipeline.apply(events)
    return EventSequence(
        name=name,
        events=events,
        frames=output.frames,
        ground_truth=scene.ground_truth,
        geometry=geometry,
    )
