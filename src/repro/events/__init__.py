"""Event camera substrate: event types, DVS simulation, datasets and noise."""

from .aer import (
    decode_aer,
    encode_aer,
    load_aer,
    save_aer,
    stream_from_text,
    stream_to_text,
)
from .camera import CameraOutput, DVSCamera, GrayscaleFrame
from .datasets import (
    DENSE_SEQUENCES,
    MVSEC_SEQUENCES,
    DatasetSpec,
    EventSequence,
    available_sequences,
    generate_sequence,
)
from .noise import (
    BackgroundActivityNoise,
    EventDropNoise,
    HotPixelNoise,
    NoisePipeline,
)
from .synthetic import (
    DrivingScene,
    DroneFlightScene,
    MovingBarsScene,
    RotatingDiskScene,
    SceneGroundTruth,
    SceneSequence,
)
from .types import EventStream, SensorGeometry, concatenate_streams

__all__ = [
    "EventStream",
    "SensorGeometry",
    "concatenate_streams",
    "DVSCamera",
    "CameraOutput",
    "GrayscaleFrame",
    "MovingBarsScene",
    "DroneFlightScene",
    "DrivingScene",
    "RotatingDiskScene",
    "SceneSequence",
    "SceneGroundTruth",
    "EventSequence",
    "DatasetSpec",
    "generate_sequence",
    "available_sequences",
    "MVSEC_SEQUENCES",
    "DENSE_SEQUENCES",
    "BackgroundActivityNoise",
    "HotPixelNoise",
    "EventDropNoise",
    "NoisePipeline",
    "encode_aer",
    "decode_aer",
    "save_aer",
    "load_aer",
    "stream_to_text",
    "stream_from_text",
]
