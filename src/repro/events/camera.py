"""DVS camera simulator.

The paper's experiments use DAVIS sensors which emit (a) an asynchronous
event stream and (b) synchronized grayscale frames.  We do not have the
physical sensor, so this module implements the standard event camera pixel
model: a pixel fires an event whenever the log intensity changes by more
than the contrast threshold since the last event at that pixel
(``||log I(t+1) - log I(t)|| >= theta``, Section 2 of the paper).

:class:`DVSCamera` converts a sequence of intensity frames (produced by the
scene generators in :mod:`repro.events.synthetic`) into an
:class:`~repro.events.types.EventStream` plus the grayscale keyframes whose
timestamps (``Tstart`` / ``Tend`` in the paper) anchor the Event2Sparse
Frame converter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .types import EventStream, SensorGeometry

__all__ = ["GrayscaleFrame", "DVSCamera", "CameraOutput"]

_LOG_EPS = 1e-3


@dataclass(frozen=True)
class GrayscaleFrame:
    """A synchronous grayscale (APS) frame emitted alongside the events."""

    timestamp: float
    image: np.ndarray

    def __post_init__(self) -> None:
        if self.image.ndim != 2:
            raise ValueError("grayscale frames must be 2-D arrays")


@dataclass
class CameraOutput:
    """Bundle of everything a DAVIS-style sensor produces for a sequence."""

    events: EventStream
    frames: List[GrayscaleFrame]

    @property
    def frame_timestamps(self) -> np.ndarray:
        """Timestamps of the grayscale frames, in seconds."""
        return np.array([f.timestamp for f in self.frames], dtype=np.float64)

    def frame_pairs(self) -> List[Tuple[float, float]]:
        """Return ``(Tstart, Tend)`` for every consecutive pair of frames."""
        ts = self.frame_timestamps
        return [(float(ts[i]), float(ts[i + 1])) for i in range(len(ts) - 1)]


class DVSCamera:
    """Simulated dynamic vision sensor.

    Parameters
    ----------
    geometry:
        Sensor resolution and thresholds.
    interpolation_steps:
        Number of linear sub-steps used between two consecutive intensity
        frames when generating event timestamps.  More steps produce a
        smoother (higher temporal resolution) event stream at the cost of
        simulation time.
    seed:
        Seed for the small amount of timestamp jitter applied to break ties
        between events generated in the same sub-step.
    """

    def __init__(
        self,
        geometry: Optional[SensorGeometry] = None,
        interpolation_steps: int = 4,
        seed: Optional[int] = None,
    ) -> None:
        if interpolation_steps < 1:
            raise ValueError("interpolation_steps must be >= 1")
        self.geometry = geometry or SensorGeometry()
        self.interpolation_steps = interpolation_steps
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def simulate(
        self,
        intensity_frames: Sequence[np.ndarray],
        timestamps: Sequence[float],
    ) -> CameraOutput:
        """Convert a sequence of intensity frames into events + APS frames.

        Parameters
        ----------
        intensity_frames:
            Sequence of ``(height, width)`` arrays of non-negative intensity.
        timestamps:
            Monotonically increasing timestamps (seconds), one per frame.
        """
        frames = [np.asarray(f, dtype=np.float64) for f in intensity_frames]
        times = np.asarray(timestamps, dtype=np.float64)
        if len(frames) != times.size:
            raise ValueError("one timestamp per intensity frame is required")
        if len(frames) < 2:
            raise ValueError("at least two frames are needed to generate events")
        h, w = self.geometry.height, self.geometry.width
        for f in frames:
            if f.shape != (h, w):
                raise ValueError(
                    f"frame shape {f.shape} does not match sensor {h}x{w}"
                )
        if np.any(np.diff(times) <= 0):
            raise ValueError("timestamps must be strictly increasing")

        theta = self.geometry.contrast_threshold
        log_frames = [np.log(np.maximum(f, 0.0) + _LOG_EPS) for f in frames]

        # Per-pixel memory of the log intensity at the last emitted event.
        reference = log_frames[0].copy()
        last_event_time = np.full((h, w), -np.inf)

        xs, ys, ts, ps = self._generate_events(
            log_frames, times, reference, last_event_time, theta
        )

        if xs:
            events = EventStream(
                np.concatenate(xs),
                np.concatenate(ys),
                np.concatenate(ts),
                np.concatenate(ps),
                self.geometry,
            )
        else:
            events = EventStream.empty(self.geometry)

        aps = [GrayscaleFrame(float(times[i]), frames[i]) for i in range(len(frames))]
        return CameraOutput(events=events, frames=aps)

    # ------------------------------------------------------------------
    def _generate_events(
        self,
        log_frames: Sequence[np.ndarray],
        times: np.ndarray,
        reference: np.ndarray,
        last_event_time: np.ndarray,
        theta: float,
    ):
        """Vectorized event generation: per-interval active-pixel subset.

        Bit-identical to :meth:`_generate_events_dense` (regression-tested)
        but restricts the per-step work to pixels that *can* fire inside the
        interval.  The interpolated log intensity is linear in ``frac`` and
        the reference level only moves at pixels that fire, so a pixel's
        first crossing in the interval requires
        ``max(|v(1/steps)|, |v(1)|) >= theta`` with ``v(frac)`` measured
        against the reference at interval entry — the endpoint maximum of a
        linear function.  That candidate superset (with a 1e-9 slack, many
        orders above the fp error of the endpoint evaluation) is gathered
        into 1-D working arrays; per-step arithmetic, rng jitter draws and
        reference updates then run element-for-element identical to the
        dense loop, in the same row-major pixel order.
        """
        xs: List[np.ndarray] = []
        ys: List[np.ndarray] = []
        ts: List[np.ndarray] = []
        ps: List[np.ndarray] = []
        steps = self.interpolation_steps
        refractory = self.geometry.refractory_period

        for idx in range(len(log_frames) - 1):
            start_log, end_log = log_frames[idx], log_frames[idx + 1]
            t0, t1 = times[idx], times[idx + 1]
            first = 1.0 / steps
            v_first = start_log * (1.0 - first) + end_log * first - reference
            v_last = end_log - reference
            candidate = np.maximum(np.abs(v_first), np.abs(v_last)) >= theta - 1e-9
            if not candidate.any():
                # No pixel can cross inside this interval: the dense loop
                # would emit nothing and draw no jitter either.
                continue
            cand_y, cand_x = np.nonzero(candidate)
            ref = reference[cand_y, cand_x]
            let = last_event_time[cand_y, cand_x]
            start_1d = start_log[cand_y, cand_x]
            end_1d = end_log[cand_y, cand_x]
            for s in range(1, steps + 1):
                frac = s / steps
                current = start_1d * (1.0 - frac) + end_1d * frac
                t_mid = t0 + frac * (t1 - t0)
                delta = current - ref
                n_events = np.floor(np.abs(delta) / theta).astype(np.int64)
                eligible = (t_mid - let) >= refractory
                n_events = np.where(eligible, n_events, 0)
                if not n_events.any():
                    continue
                fired = np.nonzero(n_events)[0]
                counts = n_events[fired]
                pol = np.sign(delta[fired]).astype(np.int8)
                rep_x = np.repeat(cand_x[fired], counts).astype(np.int32)
                rep_y = np.repeat(cand_y[fired], counts).astype(np.int32)
                rep_p = np.repeat(pol, counts)
                jitter = self._rng.uniform(0.0, (t1 - t0) / (steps * 4.0), rep_x.size)
                rep_t = np.full(rep_x.size, t_mid, dtype=np.float64) + jitter
                xs.append(rep_x)
                ys.append(rep_y)
                ts.append(rep_t)
                ps.append(rep_p)
                ref[fired] += pol * counts * theta
                let[fired] = t_mid
            reference[cand_y, cand_x] = ref
            last_event_time[cand_y, cand_x] = let
        return xs, ys, ts, ps

    def _generate_events_dense(
        self,
        log_frames: Sequence[np.ndarray],
        times: np.ndarray,
        reference: np.ndarray,
        last_event_time: np.ndarray,
        theta: float,
    ):
        """Reference per-interval loop: one dense subtract per sub-step.

        Kept as the oracle the vectorized path is equivalence-tested
        against — a direct transcription of the pixel model, no gathering.
        """
        xs: List[np.ndarray] = []
        ys: List[np.ndarray] = []
        ts: List[np.ndarray] = []
        ps: List[np.ndarray] = []
        steps = self.interpolation_steps
        refractory = self.geometry.refractory_period

        for idx in range(len(log_frames) - 1):
            start_log, end_log = log_frames[idx], log_frames[idx + 1]
            t0, t1 = times[idx], times[idx + 1]
            for s in range(1, steps + 1):
                frac = s / steps
                current = start_log * (1.0 - frac) + end_log * frac
                t_mid = t0 + frac * (t1 - t0)
                # Emit as many events per pixel as the log intensity has
                # crossed multiples of theta since the reference level.
                delta = current - reference
                n_events = np.floor(np.abs(delta) / theta).astype(np.int64)
                eligible = (t_mid - last_event_time) >= refractory
                n_events = np.where(eligible, n_events, 0)
                if not n_events.any():
                    continue
                yy, xx = np.nonzero(n_events)
                counts = n_events[yy, xx]
                pol = np.sign(delta[yy, xx]).astype(np.int8)
                # Repeat pixels that crossed the threshold multiple times.
                rep_x = np.repeat(xx, counts).astype(np.int32)
                rep_y = np.repeat(yy, counts).astype(np.int32)
                rep_p = np.repeat(pol, counts)
                jitter = self._rng.uniform(0.0, (t1 - t0) / (steps * 4.0), rep_x.size)
                rep_t = np.full(rep_x.size, t_mid, dtype=np.float64) + jitter
                xs.append(rep_x)
                ys.append(rep_y)
                ts.append(rep_t)
                ps.append(rep_p)
                # Update the per-pixel reference to the nearest crossed level
                # and the last event time.
                reference[yy, xx] += pol * counts * theta
                last_event_time[yy, xx] = t_mid
        return xs, ys, ts, ps
