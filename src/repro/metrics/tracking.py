"""Object tracking metrics (bounding-box and mask IoU)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["box_iou", "mask_iou"]


def box_iou(
    box_a: Optional[Tuple[int, int, int, int]],
    box_b: Optional[Tuple[int, int, int, int]],
) -> float:
    """Intersection-over-union of two ``(x0, y0, x1, y1)`` boxes.

    Returns 0 if either box is ``None`` or degenerate.
    """
    if box_a is None or box_b is None:
        return 0.0
    ax0, ay0, ax1, ay1 = box_a
    bx0, by0, bx1, by1 = box_b
    if ax1 <= ax0 or ay1 <= ay0 or bx1 <= bx0 or by1 <= by0:
        return 0.0
    ix0, iy0 = max(ax0, bx0), max(ay0, by0)
    ix1, iy1 = min(ax1, bx1), min(ay1, by1)
    inter = max(ix1 - ix0, 0) * max(iy1 - iy0, 0)
    union = (ax1 - ax0) * (ay1 - ay0) + (bx1 - bx0) * (by1 - by0) - inter
    if union <= 0:
        return 0.0
    return float(inter / union)


def mask_iou(predicted: np.ndarray, ground_truth: np.ndarray) -> float:
    """IoU of two binary masks (any non-zero value counts as foreground)."""
    predicted = np.asarray(predicted) != 0
    ground_truth = np.asarray(ground_truth) != 0
    if predicted.shape != ground_truth.shape:
        raise ValueError("masks must have the same shape")
    union = np.logical_or(predicted, ground_truth).sum()
    if union == 0:
        return 0.0
    inter = np.logical_and(predicted, ground_truth).sum()
    return float(inter / union)
