"""Depth estimation metrics."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["average_depth_error", "absolute_relative_error"]


def _validate(predicted: np.ndarray, ground_truth: np.ndarray, mask: Optional[np.ndarray]):
    predicted = np.asarray(predicted, dtype=np.float64)
    ground_truth = np.asarray(ground_truth, dtype=np.float64)
    if predicted.shape != ground_truth.shape:
        raise ValueError("prediction and ground truth must have the same shape")
    valid = np.isfinite(predicted) & np.isfinite(ground_truth) & (ground_truth > 0) & (predicted > 0)
    if mask is not None:
        valid &= np.asarray(mask, dtype=bool)
    return predicted, ground_truth, valid


def average_depth_error(
    predicted: np.ndarray,
    ground_truth: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> float:
    """Mean absolute log-depth error (the "Avg Error" style metric of E2Depth).

    Computed as ``mean(|log(pred) - log(gt)|)`` over valid pixels; returns
    ``nan`` when no pixel is valid.
    """
    predicted, ground_truth, valid = _validate(predicted, ground_truth, mask)
    if not valid.any():
        return float("nan")
    return float(np.mean(np.abs(np.log(predicted[valid]) - np.log(ground_truth[valid]))))


def absolute_relative_error(
    predicted: np.ndarray,
    ground_truth: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> float:
    """Mean of ``|pred - gt| / gt`` over valid pixels."""
    predicted, ground_truth, valid = _validate(predicted, ground_truth, mask)
    if not valid.any():
        return float("nan")
    return float(
        np.mean(np.abs(predicted[valid] - ground_truth[valid]) / ground_truth[valid])
    )
