"""Task accuracy metrics used by the paper's Table 2.

* AEE (average endpoint error) for optical flow — lower is better;
* mIOU (mean intersection over union) for segmentation / tracking — higher
  is better;
* average (log) depth error for depth estimation — lower is better.
"""

from .flow import average_endpoint_error, flow_outlier_ratio
from .segmentation import confusion_matrix, mean_iou, pixel_accuracy
from .depth import average_depth_error, absolute_relative_error
from .tracking import box_iou, mask_iou
from .stats import geometric_mean, relative_change, summarize

__all__ = [
    "average_endpoint_error",
    "flow_outlier_ratio",
    "mean_iou",
    "pixel_accuracy",
    "confusion_matrix",
    "average_depth_error",
    "absolute_relative_error",
    "box_iou",
    "mask_iou",
    "geometric_mean",
    "relative_change",
    "summarize",
]
