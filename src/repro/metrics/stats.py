"""Small statistical helpers shared by the experiment harnesses."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["geometric_mean", "relative_change", "summarize"]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional way to average speedups)."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return float("nan")
    if np.any(values <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(values))))


def relative_change(baseline: float, value: float) -> float:
    """``|value - baseline| / |baseline|`` (0 when the baseline is 0)."""
    if baseline == 0:
        return 0.0 if value == 0 else float("inf")
    return abs(value - baseline) / abs(baseline)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Return min / max / mean / median / std of a sequence."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return {"min": float("nan"), "max": float("nan"), "mean": float("nan"),
                "median": float("nan"), "std": float("nan")}
    return {
        "min": float(values.min()),
        "max": float(values.max()),
        "mean": float(values.mean()),
        "median": float(np.median(values)),
        "std": float(values.std()),
    }
