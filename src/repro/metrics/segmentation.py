"""Semantic segmentation metrics (mIOU)."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["confusion_matrix", "mean_iou", "pixel_accuracy"]


def confusion_matrix(
    predicted: np.ndarray, ground_truth: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` confusion matrix.

    Entry ``[i, j]`` counts pixels with ground-truth class ``i`` predicted as
    class ``j``.
    """
    predicted = np.asarray(predicted).astype(np.int64).ravel()
    ground_truth = np.asarray(ground_truth).astype(np.int64).ravel()
    if predicted.shape != ground_truth.shape:
        raise ValueError("prediction and ground truth must have the same size")
    if predicted.size and (predicted.min() < 0 or ground_truth.min() < 0):
        raise ValueError("class labels must be non-negative")
    if num_classes is None:
        num_classes = int(max(predicted.max(initial=0), ground_truth.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (ground_truth, predicted), 1)
    return matrix


def mean_iou(
    predicted: np.ndarray, ground_truth: np.ndarray, num_classes: Optional[int] = None
) -> float:
    """Mean intersection-over-union over the classes present in the ground truth.

    Returned as a percentage (0-100) to match the paper's Table 2 convention
    (e.g. HALSIE mIOU 66.31).
    """
    matrix = confusion_matrix(predicted, ground_truth, num_classes)
    intersection = np.diag(matrix).astype(np.float64)
    union = matrix.sum(axis=0) + matrix.sum(axis=1) - np.diag(matrix)
    present = matrix.sum(axis=1) > 0
    if not present.any():
        return float("nan")
    iou = intersection[present] / np.maximum(union[present], 1)
    return float(iou.mean() * 100.0)


def pixel_accuracy(predicted: np.ndarray, ground_truth: np.ndarray) -> float:
    """Fraction of pixels whose predicted class matches the ground truth."""
    predicted = np.asarray(predicted)
    ground_truth = np.asarray(ground_truth)
    if predicted.shape != ground_truth.shape:
        raise ValueError("prediction and ground truth must have the same shape")
    if predicted.size == 0:
        return float("nan")
    return float((predicted == ground_truth).mean())
