"""Optical flow metrics (AEE)."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["average_endpoint_error", "flow_outlier_ratio"]


def average_endpoint_error(
    predicted: np.ndarray,
    ground_truth: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> float:
    """Average endpoint error between ``(2, H, W)`` flow fields.

    The AEE is the mean Euclidean distance between the predicted and true
    flow vectors, evaluated over ``mask`` (typically the pixels where events
    occurred, matching the evaluation protocol of the event-flow papers).
    Returns ``nan`` if the mask is empty.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    ground_truth = np.asarray(ground_truth, dtype=np.float64)
    if predicted.shape != ground_truth.shape or predicted.ndim != 3 or predicted.shape[0] != 2:
        raise ValueError("flow fields must both have shape (2, H, W)")
    error = np.sqrt(
        (predicted[0] - ground_truth[0]) ** 2 + (predicted[1] - ground_truth[1]) ** 2
    )
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != error.shape:
            raise ValueError("mask shape must match the flow spatial shape")
        if not mask.any():
            return float("nan")
        error = error[mask]
    return float(error.mean())


def flow_outlier_ratio(
    predicted: np.ndarray,
    ground_truth: np.ndarray,
    mask: Optional[np.ndarray] = None,
    threshold: float = 3.0,
) -> float:
    """Fraction of pixels whose endpoint error exceeds ``threshold`` pixels."""
    predicted = np.asarray(predicted, dtype=np.float64)
    ground_truth = np.asarray(ground_truth, dtype=np.float64)
    error = np.sqrt(
        (predicted[0] - ground_truth[0]) ** 2 + (predicted[1] - ground_truth[1]) ** 2
    )
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if not mask.any():
            return float("nan")
        error = error[mask]
    return float((error > threshold).mean())
