"""Model zoo: the six networks of the paper's Table 1.

Each builder returns a :class:`~repro.nn.graph.LayerGraph` whose layer count
and SNN/ANN split match Table 1:

=========================  ======================  ========  ==================
Network                    Task                    Type      Layers
=========================  ======================  ========  ==================
Spike-FlowNet              optical flow            SNN-ANN   12 (4 SNN, 8 ANN)
Fusion-FlowNet             optical flow            SNN-ANN   29 (10 SNN, 19 ANN)
Adaptive-SpikeNet          optical flow            SNN       8
HALSIE                     semantic segmentation   SNN-ANN   16 (3 SNN, 13 ANN)
Hidalgo-Carrio et al.      depth estimation        ANN       15
DOTIE                      object tracking         SNN       1
=========================  ======================  ========  ==================

Weights are not needed: the graphs carry layer shapes, MAC counts,
timesteps and expected activation sparsity, which is all the hardware model,
the Network Mapper and the experiment harnesses consume (see DESIGN.md's
substitution table).  Input spatial sizes default to the DAVIS 346x260
resolution used by MVSEC.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..nn.graph import LayerGraph
from ..nn.layers import LayerKind, LayerSpec

__all__ = [
    "build_spikeflownet",
    "build_fusionflownet",
    "build_adaptive_spikenet",
    "build_halsie",
    "build_e2depth",
    "build_dotie",
    "build_evflownet",
    "build_network",
    "available_networks",
    "table1_summary",
]

# Typical spiking-activation sparsity observed for event-driven layers; ANN
# encoder/decoder layers still see sparse inputs near the input but densify
# deeper into the network.
_SNN_SPARSITY = 0.85
_EVENT_INPUT_SPARSITY = 0.95
_ANN_SPARSITY = 0.30


def _conv(name, c_in, c_out, h, w, stride=1, kind=LayerKind.CONV2D, timesteps=1, sparsity=_ANN_SPARSITY, kernel=3):
    return LayerSpec(
        name=name,
        kind=kind,
        in_channels=c_in,
        out_channels=c_out,
        in_height=h,
        in_width=w,
        kernel_size=kernel,
        stride=stride,
        timesteps=timesteps,
        activation_sparsity=sparsity,
    )


def build_spikeflownet(height: int = 260, width: int = 346, timesteps: int = 5) -> LayerGraph:
    """Spike-FlowNet [7]: hybrid SNN encoder + ANN residual/decoder, 12 layers."""
    g = LayerGraph("spikeflownet", task="optical_flow")
    h, w = height, width
    # 4 spiking encoder layers (stride-2 conv + LIF)
    g.add_layer(_conv("enc1", 2, 16, h, w, 2, LayerKind.CONV_LIF, timesteps, _EVENT_INPUT_SPARSITY))
    g.add_layer(_conv("enc2", 16, 32, h // 2, w // 2, 2, LayerKind.CONV_LIF, timesteps, _SNN_SPARSITY), ["enc1"])
    g.add_layer(_conv("enc3", 32, 64, h // 4, w // 4, 2, LayerKind.CONV_LIF, timesteps, _SNN_SPARSITY), ["enc2"])
    g.add_layer(_conv("enc4", 64, 128, h // 8, w // 8, 2, LayerKind.CONV_LIF, timesteps, _SNN_SPARSITY), ["enc3"])
    # 2 ANN residual blocks at the bottleneck
    g.add_layer(_conv("res1", 128, 128, h // 16, w // 16), ["enc4"])
    g.add_layer(_conv("res2", 128, 128, h // 16, w // 16), ["res1"])
    # 4 ANN decoder (transposed conv) layers with skip connections
    g.add_layer(_conv("dec4", 128, 64, h // 16, w // 16, 2, LayerKind.DECONV2D), ["res2", "enc3"])
    g.add_layer(_conv("dec3", 64, 32, h // 8, w // 8, 2, LayerKind.DECONV2D), ["dec4", "enc2"])
    g.add_layer(_conv("dec2", 32, 16, h // 4, w // 4, 2, LayerKind.DECONV2D), ["dec3", "enc1"])
    g.add_layer(_conv("dec1", 16, 16, h // 2, w // 2, 2, LayerKind.DECONV2D), ["dec2"])
    # 2 ANN flow prediction heads
    g.add_layer(_conv("flow_mid", 16, 2, h, w, 1, LayerKind.CONV2D, kernel=1), ["dec1"])
    g.add_layer(_conv("flow_out", 2, 2, h, w, 1, LayerKind.CONV2D, kernel=1), ["flow_mid"])
    return g


def build_fusionflownet(height: int = 260, width: int = 346, timesteps: int = 5) -> LayerGraph:
    """Fusion-FlowNet [8]: two-stream (event SNN + frame ANN) fusion network, 29 layers."""
    g = LayerGraph("fusionflownet", task="optical_flow")
    h, w = height, width
    # Event stream: 10 spiking layers (5 stride-2 stages, 2 convs each)
    previous = None
    c = 2
    for stage in range(5):
        c_out = min(16 * 2**stage, 256)
        for rep in range(2):
            name = f"ev_enc{stage+1}_{rep+1}"
            stride = 2 if rep == 0 else 1
            layer = _conv(
                name, c, c_out, h // 2**stage if rep == 0 else h // 2 ** (stage + 1),
                w // 2**stage if rep == 0 else w // 2 ** (stage + 1),
                stride, LayerKind.CONV_LIF, timesteps,
                _EVENT_INPUT_SPARSITY if stage == 0 and rep == 0 else _SNN_SPARSITY,
            )
            g.add_layer(layer, [previous] if previous else None)
            previous = name
            c = c_out
    # Frame stream: 5 ANN encoder layers
    frame_prev = None
    c = 1
    for stage in range(5):
        c_out = min(16 * 2**stage, 256)
        name = f"fr_enc{stage+1}"
        g.add_layer(
            _conv(name, c, c_out, h // 2**stage, w // 2**stage, 2),
            [frame_prev] if frame_prev else None,
        )
        frame_prev = name
        c = c_out
    # Fusion
    g.add_layer(
        _conv("fuse", 512, 256, h // 32, w // 32, 1, LayerKind.ELEMENTWISE),
        ["ev_enc5_2", "fr_enc5"],
    )
    # 2 residual blocks
    g.add_layer(_conv("res1", 256, 256, h // 32, w // 32), ["fuse"])
    g.add_layer(_conv("res2", 256, 256, h // 32, w // 32), ["res1"])
    # 5 decoder layers with skips + 6 flow heads = 11 ANN layers
    skips = ["ev_enc4_2", "ev_enc3_2", "ev_enc2_2", "ev_enc1_2"]
    previous = "res2"
    c = 256
    for stage in range(5):
        name = f"dec{5-stage}"
        c_out = max(c // 2, 16)
        inputs = [previous] + ([skips[stage]] if stage < len(skips) else [])
        g.add_layer(
            _conv(name, c, c_out, h // 2 ** (5 - stage), w // 2 ** (5 - stage), 2, LayerKind.DECONV2D),
            inputs,
        )
        previous = name
        c = c_out
    for i in range(6):
        name = f"flow{i+1}"
        c_out = 2 if i == 5 else 16
        g.add_layer(_conv(name, c, c_out, h, w, 1, LayerKind.CONV2D, kernel=1), [previous])
        previous = name
        c = c_out
    return g


def build_adaptive_spikenet(height: int = 260, width: int = 346, timesteps: int = 10) -> LayerGraph:
    """Adaptive-SpikeNet [1]: fully spiking optical flow network, 8 layers."""
    g = LayerGraph("adaptive_spikenet", task="optical_flow")
    h, w = height, width
    g.add_layer(_conv("enc1", 2, 32, h, w, 2, LayerKind.CONV_LIF, timesteps, _EVENT_INPUT_SPARSITY))
    g.add_layer(_conv("enc2", 32, 64, h // 2, w // 2, 2, LayerKind.CONV_LIF, timesteps, _SNN_SPARSITY), ["enc1"])
    g.add_layer(_conv("enc3", 64, 128, h // 4, w // 4, 2, LayerKind.CONV_LIF, timesteps, _SNN_SPARSITY), ["enc2"])
    g.add_layer(_conv("res1", 128, 128, h // 8, w // 8, 1, LayerKind.CONV_LIF, timesteps, _SNN_SPARSITY), ["enc3"])
    g.add_layer(_conv("res2", 128, 128, h // 8, w // 8, 1, LayerKind.CONV_LIF, timesteps, _SNN_SPARSITY), ["res1"])
    g.add_layer(_conv("dec3", 128, 64, h // 8, w // 8, 2, LayerKind.DECONV_LIF, timesteps, _SNN_SPARSITY), ["res2", "enc2"])
    g.add_layer(_conv("dec2", 64, 32, h // 4, w // 4, 2, LayerKind.DECONV_LIF, timesteps, _SNN_SPARSITY), ["dec3", "enc1"])
    g.add_layer(_conv("dec1", 32, 2, h // 2, w // 2, 2, LayerKind.DECONV_LIF, timesteps, _SNN_SPARSITY), ["dec2"])
    return g


def build_halsie(height: int = 260, width: int = 346, timesteps: int = 5) -> LayerGraph:
    """HALSIE [16]: hybrid event/frame semantic segmentation, 16 layers (3 SNN, 13 ANN)."""
    g = LayerGraph("halsie", task="semantic_segmentation")
    h, w = height, width
    # Event branch: 3 spiking encoder layers
    g.add_layer(_conv("ev_enc1", 2, 16, h, w, 2, LayerKind.CONV_LIF, timesteps, _EVENT_INPUT_SPARSITY))
    g.add_layer(_conv("ev_enc2", 16, 32, h // 2, w // 2, 2, LayerKind.CONV_LIF, timesteps, _SNN_SPARSITY), ["ev_enc1"])
    g.add_layer(_conv("ev_enc3", 32, 64, h // 4, w // 4, 2, LayerKind.CONV_LIF, timesteps, _SNN_SPARSITY), ["ev_enc2"])
    # Image branch: 4 ANN encoder layers
    g.add_layer(_conv("im_enc1", 1, 16, h, w, 2))
    g.add_layer(_conv("im_enc2", 16, 32, h // 2, w // 2, 2), ["im_enc1"])
    g.add_layer(_conv("im_enc3", 32, 64, h // 4, w // 4, 2), ["im_enc2"])
    g.add_layer(_conv("im_enc4", 64, 64, h // 8, w // 8, 1), ["im_enc3"])
    # Fusion + bottleneck: 3 ANN layers
    g.add_layer(_conv("fuse", 128, 128, h // 8, w // 8, 1, LayerKind.ELEMENTWISE), ["ev_enc3", "im_enc4"])
    g.add_layer(_conv("bott1", 128, 128, h // 8, w // 8), ["fuse"])
    g.add_layer(_conv("bott2", 128, 128, h // 8, w // 8), ["bott1"])
    # Decoder: 4 ANN deconv layers + 2 segmentation heads
    g.add_layer(_conv("dec3", 128, 64, h // 8, w // 8, 2, LayerKind.DECONV2D), ["bott2", "ev_enc2"])
    g.add_layer(_conv("dec2", 64, 32, h // 4, w // 4, 2, LayerKind.DECONV2D), ["dec3", "ev_enc1"])
    g.add_layer(_conv("dec1", 32, 16, h // 2, w // 2, 2, LayerKind.DECONV2D), ["dec2"])
    g.add_layer(_conv("head1", 16, 16, h, w), ["dec1"])
    g.add_layer(_conv("head2", 16, 8, h, w, 1, LayerKind.CONV2D, kernel=1), ["head1"])
    g.add_layer(_conv("head3", 8, 8, h, w, 1, LayerKind.CONV2D, kernel=1), ["head2"])
    return g


def build_e2depth(height: int = 260, width: int = 346) -> LayerGraph:
    """Hidalgo-Carrio et al. [11]: recurrent ANN monocular depth from events, 15 layers."""
    g = LayerGraph("e2depth", task="depth_estimation")
    h, w = height, width
    g.add_layer(_conv("head", 5, 32, h, w, 1, LayerKind.CONV2D, timesteps=1, sparsity=_EVENT_INPUT_SPARSITY, kernel=5))
    # 4 encoder stages
    g.add_layer(_conv("enc1", 32, 64, h, w, 2), ["head"])
    g.add_layer(_conv("enc2", 64, 128, h // 2, w // 2, 2), ["enc1"])
    g.add_layer(_conv("enc3", 128, 256, h // 4, w // 4, 2), ["enc2"])
    g.add_layer(_conv("enc4", 256, 256, h // 8, w // 8, 2), ["enc3"])
    # 2 residual blocks (each modelled as 2 convs) = 4 layers
    g.add_layer(_conv("res1a", 256, 256, h // 16, w // 16), ["enc4"])
    g.add_layer(_conv("res1b", 256, 256, h // 16, w // 16), ["res1a"])
    g.add_layer(_conv("res2a", 256, 256, h // 16, w // 16), ["res1b"])
    g.add_layer(_conv("res2b", 256, 256, h // 16, w // 16), ["res2a"])
    # 4 decoder stages
    g.add_layer(_conv("dec4", 256, 128, h // 16, w // 16, 2, LayerKind.DECONV2D), ["res2b", "enc3"])
    g.add_layer(_conv("dec3", 128, 64, h // 8, w // 8, 2, LayerKind.DECONV2D), ["dec4", "enc2"])
    g.add_layer(_conv("dec2", 64, 32, h // 4, w // 4, 2, LayerKind.DECONV2D), ["dec3", "enc1"])
    g.add_layer(_conv("dec1", 32, 32, h // 2, w // 2, 2, LayerKind.DECONV2D), ["dec2"])
    # 2 prediction heads
    g.add_layer(_conv("depth1", 32, 16, h, w), ["dec1"])
    g.add_layer(_conv("depth2", 16, 1, h, w, 1, LayerKind.CONV2D, kernel=1), ["depth1"])
    return g


def build_evflownet(height: int = 260, width: int = 346) -> LayerGraph:
    """EV-FlowNet [4]: fully-accumulated event frames, all-ANN U-Net, 10 layers.

    Not part of Table 1 but used by the paper's multi-task all-ANN
    configuration ([4] + [11]).
    """
    g = LayerGraph("evflownet", task="optical_flow")
    h, w = height, width
    g.add_layer(_conv("enc1", 4, 32, h, w, 2, sparsity=_EVENT_INPUT_SPARSITY))
    g.add_layer(_conv("enc2", 32, 64, h // 2, w // 2, 2), ["enc1"])
    g.add_layer(_conv("enc3", 64, 128, h // 4, w // 4, 2), ["enc2"])
    g.add_layer(_conv("enc4", 128, 256, h // 8, w // 8, 2), ["enc3"])
    g.add_layer(_conv("res1", 256, 256, h // 16, w // 16), ["enc4"])
    g.add_layer(_conv("res2", 256, 256, h // 16, w // 16), ["res1"])
    g.add_layer(_conv("dec4", 256, 128, h // 16, w // 16, 2, LayerKind.DECONV2D), ["res2", "enc3"])
    g.add_layer(_conv("dec3", 128, 64, h // 8, w // 8, 2, LayerKind.DECONV2D), ["dec4", "enc2"])
    g.add_layer(_conv("dec2", 64, 32, h // 4, w // 4, 2, LayerKind.DECONV2D), ["dec3", "enc1"])
    g.add_layer(_conv("flow", 32, 2, h // 2, w // 2, 2, LayerKind.DECONV2D), ["dec2"])
    return g


def build_dotie(height: int = 260, width: int = 346, timesteps: int = 8) -> LayerGraph:
    """DOTIE [13]: single-layer spiking architecture for object tracking."""
    g = LayerGraph("dotie", task="object_tracking")
    g.add_layer(
        _conv("spike_filter", 2, 4, height, width, 1, LayerKind.CONV_LIF, timesteps, _EVENT_INPUT_SPARSITY, kernel=5)
    )
    return g


_BUILDERS: Dict[str, Callable[..., LayerGraph]] = {
    "spikeflownet": build_spikeflownet,
    "fusionflownet": build_fusionflownet,
    "adaptive_spikenet": build_adaptive_spikenet,
    "halsie": build_halsie,
    "e2depth": build_e2depth,
    "dotie": build_dotie,
    "evflownet": build_evflownet,
}

# (task, type, total layers, SNN layers, ANN layers) from the paper's Table 1.
TABLE1_REFERENCE = {
    "spikeflownet": ("Optical Flow", "SNN-ANN", 12, 4, 8),
    "fusionflownet": ("Optical Flow", "SNN-ANN", 29, 10, 19),
    "adaptive_spikenet": ("Optical Flow", "SNN", 8, 8, 0),
    "halsie": ("Semantic Segmentation", "SNN-ANN", 16, 3, 13),
    "e2depth": ("Depth Estimation", "ANN", 15, 0, 15),
    "dotie": ("Object Tracking", "SNN", 1, 1, 0),
}


def available_networks() -> List[str]:
    """Names of every network the zoo can build."""
    return sorted(_BUILDERS)


def build_network(name: str, height: int = 260, width: int = 346) -> LayerGraph:
    """Build a network by name at the given input resolution."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown network '{name}'; available: {available_networks()}")
    return _BUILDERS[name](height=height, width=width)


def table1_summary(height: int = 260, width: int = 346) -> List[Dict[str, object]]:
    """Reproduce the paper's Table 1 from the model zoo graphs."""
    rows = []
    for name in available_networks():
        if name not in TABLE1_REFERENCE:
            continue
        net = build_network(name, height, width)
        task, net_type, layers, snn, ann = TABLE1_REFERENCE[name]
        rows.append(
            {
                "network": name,
                "task": net.task,
                "type": net.network_type,
                "layers": net.num_layers,
                "snn_layers": net.num_snn_layers,
                "ann_layers": net.num_ann_layers,
                "paper_type": net_type,
                "paper_layers": layers,
                "paper_snn_layers": snn,
                "paper_ann_layers": ann,
                "total_gmacs": net.total_macs / 1e9,
            }
        )
    return rows
