"""Model zoo: layer-graph descriptions of the paper's six evaluated networks."""

from .zoo import (
    TABLE1_REFERENCE,
    available_networks,
    build_adaptive_spikenet,
    build_dotie,
    build_e2depth,
    build_evflownet,
    build_fusionflownet,
    build_halsie,
    build_network,
    build_spikeflownet,
    table1_summary,
)

__all__ = [
    "available_networks",
    "build_network",
    "build_spikeflownet",
    "build_fusionflownet",
    "build_adaptive_spikenet",
    "build_halsie",
    "build_e2depth",
    "build_dotie",
    "build_evflownet",
    "table1_summary",
    "TABLE1_REFERENCE",
]
