"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a small, JSON-serialisable value object naming a
*workload family* (steady, bursty, diurnal, churn, hotspot, mixed-fleet, …)
plus the knobs every family shares — stream count, footage duration, spatial
scale, E2SF bin count, RNG seed — and a family-specific ``params`` mapping.
The spec never holds live objects (networks, sequences, platforms): it
*compiles* to a list of :class:`~repro.runtime.streams.StreamSource` through
the family registered under its ``family`` name
(:mod:`repro.scenarios.registry`), which is what makes specs hashable,
picklable across a ``multiprocessing`` pool and cacheable on disk.

:meth:`ScenarioSpec.content_hash` is the cache identity used by the sweep
runner: a SHA-256 over the canonical JSON form, so any change to any field —
including nested ``params`` — dirties exactly the cells that depend on it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

__all__ = ["ScenarioSpec", "canonical_json", "content_digest"]


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to a canonical (sorted-key, compact) JSON string."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def content_digest(value: Any) -> str:
    """SHA-256 hex digest of ``value``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative traffic scenario.

    Attributes
    ----------
    name:
        Scenario identifier (registry key for built-ins; free-form for
        ad-hoc specs).
    family:
        Name of the registered workload family that compiles this spec.
    num_streams:
        Number of traffic streams the family should lay out.
    duration:
        Seconds of source footage rendered per stream.
    scale:
        Spatial scale of the generated event sequences (1.0 = full DAVIS
        346x260).
    num_bins:
        E2SF bins per grayscale frame interval.
    seed:
        Base RNG seed; everything a family draws (join times, sequence
        choices, skew) derives deterministically from it.
    network_resolution:
        ``(height, width)`` at which the zoo networks are instantiated.
    params:
        Family-specific knobs (e.g. ``{"alpha": 1.5}`` for the hotspot
        family).  Values must be JSON-serialisable.
    """

    name: str
    family: str
    num_streams: int = 4
    duration: float = 0.4
    scale: float = 0.12
    num_bins: int = 5
    seed: int = 0
    network_resolution: tuple = (64, 64)
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        object.__setattr__(self, "network_resolution", tuple(self.network_resolution))
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------
    def replace(self, **overrides: Any) -> "ScenarioSpec":
        """A copy of this spec with ``overrides`` applied (params are merged)."""
        params = overrides.pop("params", None)
        if params is not None:
            merged = dict(self.params)
            merged.update(params)
            overrides["params"] = merged
        return dataclasses.replace(self, **overrides)

    def param(self, key: str, default: Any = None) -> Any:
        """Family-specific knob with a default."""
        return self.params.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (canonical input of :meth:`content_hash`)."""
        return {
            "name": self.name,
            "family": self.family,
            "num_streams": self.num_streams,
            "duration": self.duration,
            "scale": self.scale,
            "num_bins": self.num_bins,
            "seed": self.seed,
            "network_resolution": list(self.network_resolution),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def content_hash(self) -> str:
        """SHA-256 identity of the spec's full content (the sweep cache key)."""
        return content_digest(self.to_dict())
