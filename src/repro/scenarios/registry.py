"""Scenario registry: named families and named built-in scenarios.

The registry maps *family* names to compiler callables
(``ScenarioSpec -> List[StreamSource]``) and *scenario* names to concrete
:class:`~repro.scenarios.spec.ScenarioSpec` defaults.  The module-level
:func:`default_registry` ships one built-in scenario per built-in family, so
``python -m repro.scenarios list`` / the sweep harness work out of the box;
experiments register their own families or specs on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from ..runtime.streams import StreamSource
from .families import BUILTIN_FAMILIES
from .spec import ScenarioSpec

__all__ = ["ScenarioFamily", "ScenarioRegistry", "default_registry"]


@dataclass(frozen=True)
class ScenarioFamily:
    """One registered workload family."""

    name: str
    compiler: Callable[[ScenarioSpec], List[StreamSource]]
    description: str = ""


class ScenarioRegistry:
    """Name → family / name → spec lookup with compile dispatch."""

    def __init__(self) -> None:
        self._families: Dict[str, ScenarioFamily] = {}
        self._scenarios: Dict[str, ScenarioSpec] = {}

    # -- families ------------------------------------------------------
    def register_family(
        self,
        name: str,
        compiler: Callable[[ScenarioSpec], List[StreamSource]],
        description: str = "",
        overwrite: bool = False,
    ) -> ScenarioFamily:
        """Register a compiler under ``name``."""
        if name in self._families and not overwrite:
            raise ValueError(f"family '{name}' is already registered")
        family = ScenarioFamily(name, compiler, description)
        self._families[name] = family
        return family

    def family(self, name: str) -> ScenarioFamily:
        """The registered family, or ``KeyError`` listing what exists."""
        try:
            return self._families[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario family '{name}'; available: {', '.join(self.families())}"
            ) from None

    def families(self) -> List[str]:
        """Sorted names of every registered family."""
        return sorted(self._families)

    # -- named scenarios -----------------------------------------------
    def register(self, spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
        """Register a named scenario (its family must exist)."""
        self.family(spec.family)  # validate early
        if spec.name in self._scenarios and not overwrite:
            raise ValueError(f"scenario '{spec.name}' is already registered")
        self._scenarios[spec.name] = spec
        return spec

    def spec(self, name: str) -> ScenarioSpec:
        """The registered spec, or ``KeyError`` listing what exists."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario '{name}'; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        """Sorted names of every registered scenario."""
        return sorted(self._scenarios)

    def describe(self, name: str) -> str:
        """One-line human description of a registered scenario."""
        spec = self.spec(name)
        family = self.family(spec.family)
        return (
            f"{spec.name:<12s} family={spec.family:<12s} streams={spec.num_streams} "
            f"duration={spec.duration}s — {family.description}"
        )

    # -- compilation ---------------------------------------------------
    def resolve(
        self, scenario: Union[str, ScenarioSpec], **overrides
    ) -> ScenarioSpec:
        """Look up a named spec (or pass one through) and apply overrides."""
        spec = self.spec(scenario) if isinstance(scenario, str) else scenario
        return spec.replace(**overrides) if overrides else spec

    def compile(
        self, scenario: Union[str, ScenarioSpec], **overrides
    ) -> List[StreamSource]:
        """Compile a scenario (by name or spec) to its stream sources."""
        spec = self.resolve(scenario, **overrides)
        sources = self.family(spec.family).compiler(spec)
        if len(sources) != spec.num_streams:
            raise RuntimeError(
                f"family '{spec.family}' compiled {len(sources)} streams "
                f"for a spec requesting {spec.num_streams}"
            )
        return sources


_DEFAULT: Optional[ScenarioRegistry] = None


def default_registry() -> ScenarioRegistry:
    """The process-wide registry preloaded with the built-in families.

    One named scenario per built-in family is registered with small
    test-friendly defaults; override ``num_streams`` / ``duration`` /
    ``scale`` at compile time for heavier studies.
    """
    global _DEFAULT
    if _DEFAULT is None:
        registry = ScenarioRegistry()
        for name, (compiler, description) in BUILTIN_FAMILIES.items():
            registry.register_family(name, compiler, description)
            registry.register(ScenarioSpec(name=name, family=name))
        _DEFAULT = registry
    return _DEFAULT
