"""``python -m repro.scenarios`` — list, run and sweep traffic scenarios.

Subcommands
-----------
``list``
    Print every registered scenario (and family descriptions).
``run NAME``
    Compile one scenario and simulate it on one platform, printing the
    aggregate report and the per-stream table.
``sweep``
    Run a (scenario × platform × policy) grid through the
    :class:`~repro.scenarios.sweep.SweepRunner`, optionally across worker
    processes and with an on-disk cache.
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import List, Optional

from ..experiments.common import format_table
from .registry import default_registry
from .sweep import (
    BUILTIN_POLICIES,
    PLATFORMS,
    SweepCell,
    SweepRunner,
    simulate_cell,
    sweep_grid,
)

__all__ = ["main", "build_parser"]


def _spec_overrides(args: argparse.Namespace) -> dict:
    overrides = {}
    for attr, key in (
        ("streams", "num_streams"),
        ("duration", "duration"),
        ("scale", "scale"),
        ("num_bins", "num_bins"),
        ("seed", "seed"),
    ):
        value = getattr(args, attr, None)
        if value is not None:
            overrides[key] = value
    return overrides


def _add_spec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--streams", type=int, help="override num_streams")
    parser.add_argument("--duration", type=float, help="override footage duration (s)")
    parser.add_argument("--scale", type=float, help="override spatial scale")
    parser.add_argument("--num-bins", dest="num_bins", type=int, help="override E2SF bins")
    parser.add_argument("--seed", type=int, help="override the workload seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Declarative traffic scenarios for the Ev-Edge simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios and families")

    run = sub.add_parser("run", help="simulate one scenario")
    run.add_argument("name", help="registered scenario name")
    run.add_argument(
        "--platform", default="xavier_agx", choices=sorted(PLATFORMS)
    )
    run.add_argument(
        "--policy", default="batched", choices=sorted(BUILTIN_POLICIES)
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker shards for the simulation (default: the policy's, i.e. 1)",
    )
    _add_spec_options(run)

    sweep = sub.add_parser("sweep", help="run a scenario/platform/policy grid")
    sweep.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: every registered scenario)",
    )
    sweep.add_argument(
        "--platforms",
        default="xavier_agx",
        help=f"comma-separated platform names ({', '.join(sorted(PLATFORMS))})",
    )
    sweep.add_argument(
        "--policies",
        default="batched",
        help=f"comma-separated policy names ({', '.join(sorted(BUILTIN_POLICIES))})",
    )
    sweep.add_argument("--workers", type=int, default=1, help="worker processes")
    sweep.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker shards per simulated cell (recorded in rows and cache keys)",
    )
    sweep.add_argument("--cache-dir", default=None, help="on-disk result cache")
    sweep.add_argument(
        "--force", action="store_true", help="re-simulate cells even when cached"
    )
    _add_spec_options(sweep)
    return parser


def _cmd_list() -> int:
    registry = default_registry()
    print("registered scenarios:")
    for name in registry.names():
        print(f"  {registry.describe(name)}")
    print(f"\nfamilies: {', '.join(registry.families())}")
    print(f"platforms: {', '.join(sorted(PLATFORMS))}")
    print(f"policies: {', '.join(sorted(BUILTIN_POLICIES))}")
    return 0


def _policy(name: str, shards: Optional[int]) -> "SweepPolicy":
    policy = BUILTIN_POLICIES[name]
    if shards is not None:
        policy = dataclasses.replace(policy, shards=shards)
    return policy


def _cmd_run(args: argparse.Namespace) -> int:
    registry = default_registry()
    spec = registry.resolve(args.name, **_spec_overrides(args))
    # One cell simulated through the same path the sweep uses, so a `run`
    # of a sweep row's (scenario, platform, policy) reproduces it exactly —
    # including policies that force an optimization level.
    cell = SweepCell(
        scenario=spec, platform=args.platform, policy=_policy(args.policy, args.shards)
    )
    row = simulate_cell(cell)
    print(
        f"scenario {spec.name} (family {spec.family}) on {row['platform']} "
        f"[policy {row['policy']}]  hash={cell.content_hash()[:12]}"
    )
    print(
        f"  streams={row['num_streams']}  inferences={row['inferences']}  "
        f"throughput={row['throughput_fps']:.1f} f/s  "
        f"mean latency={row['mean_latency_ms']:.3f} ms  "
        f"dropped={row['frames_dropped']}  energy={row['energy_j']:.3f} J"
    )
    print()
    print(
        format_table(
            list(row["per_stream"]),
            [
                "stream",
                "inferences",
                "mean_latency_ms",
                "frames_generated",
                "frames_dropped",
                "energy_j",
            ],
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    # Imported here: repro.experiments pulls in every figure harness, which
    # the list/run paths don't need.
    from ..experiments.scenario_sweep import format_scenario_sweep

    registry = default_registry()
    scenarios = (
        args.scenarios.split(",") if args.scenarios else registry.names()
    )
    cells = sweep_grid(
        scenarios,
        platforms=tuple(args.platforms.split(",")),
        policies=tuple(
            _policy(name, args.shards) for name in args.policies.split(",")
        ),
        **_spec_overrides(args),
    )
    runner = SweepRunner(cache_dir=args.cache_dir, workers=args.workers)
    report = runner.run(cells, force=args.force)
    print(format_scenario_sweep(report.to_result()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_sweep(args)
