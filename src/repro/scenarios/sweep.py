"""Parallel sweep runner: (scenario × platform × policy) grids with caching.

A :class:`SweepCell` names one simulation — a scenario spec, a platform
model and a serving :class:`SweepPolicy` — and owns a content hash over all
three, the **cache key**: each finished cell is written to
``<cache_dir>/<hash>.json``; re-running a sweep loads clean cells from disk
and only simulates the *dirty* ones (changed spec, platform, policy or
code-salt).

Per-cell seeds are deterministic by construction: a cell's workload seed is
its scenario's ``spec.seed``, which is part of the content hash, so a
cell's randomness is a pure function of its declarative content — identical
whether the cell runs serially, in a worker process, today or in CI — and
independent of platform/policy, so comparisons along those axes replay the
exact same traffic.  Because the sweep simulates the spec *as written*, any
row can be reproduced outside the runner with ``registry.compile(spec)`` or
``python -m repro.scenarios run``.

:class:`SweepRunner` fans dirty cells across a ``multiprocessing`` pool
(cells are pure functions of picklable value objects, so workers need no
shared state) and returns per-cell aggregate rows plus cache accounting.
Workers re-resolve :func:`~repro.scenarios.registry.default_registry`, so
under a *spawn* start method (macOS/Windows defaults) only the built-in
families are visible inside the pool — sweeps over custom-registered
families need a fork context or ``workers=1``.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..core.config import OptimizationLevel
from ..hw.jetson import jetson_orin_nano, jetson_xavier_agx
from ..runtime.streams import MultiStreamSimulator
from .registry import default_registry
from .spec import ScenarioSpec, content_digest

__all__ = [
    "PLATFORMS",
    "SweepPolicy",
    "BUILTIN_POLICIES",
    "SweepCell",
    "sweep_grid",
    "simulate_cell",
    "SweepReport",
    "SweepRunner",
]

# Platform factories the sweep can instantiate by name (factories, not
# instances: Platform objects are built inside the worker that needs them).
PLATFORMS = {
    "xavier_agx": jetson_xavier_agx,
    "orin_nano": jetson_orin_nano,
}

# Bump when simulator semantics change in a way that invalidates cached cell
# results despite unchanged specs (part of every cell's content hash).
# v2: occupancy buckets round nonzero values up to the first bucket, the
# no-DSFA drop rule includes queued service time, and mean aggregates are
# streaming (sequential) sums.
# v3: cost semantics change under per-layer occupancy profiles — the default
# sweep policy costs each stream with a propagated per-layer occupancy
# profile (cost_mode="profile") instead of the flat scalar path, and
# same-family streams share rendered sequences through a seed pool.
# v4: policies gain a ``shards`` axis (sharded runtime) and rows record it;
# cells cached by unsharded runs must not alias sharded ones.
# v5: graph-aware occupancy propagation — profile-mode costs change for every
# DAG network (multi-input layers now combine all predecessor supports), so
# profile cells cached under the chain walk are stale.
# v6: policies gain a ``schedule_mode`` axis (lazy arrival cursors vs the
# eager horizon-wide oracle) and rows record it alongside the kernel's heap
# high-water mark.  Results are bit-identical across modes, but the row
# schema changed and cells must not alias across the new axis.
_CACHE_SALT = "scenario-sweep-v6"


@dataclass(frozen=True)
class SweepPolicy:
    """One serving policy: how the platform multiplexes the scenario.

    Attributes
    ----------
    name:
        Policy label used in result rows and CLI selection.
    max_merge_streams:
        Cross-stream batching budget (1 disables merging).
    occupancy_resolution:
        Occupancy bucket width of the shared layer-cost table
        (``None`` = exact costs, no bucketing).
    optimization:
        Optional :class:`OptimizationLevel` *value* (e.g. ``"e2sf+dsfa"``)
        forced onto every stream, overriding what the scenario compiled.
    cost_mode:
        Cost-stack semantics (:data:`repro.runtime.sim.COST_MODES`).
        Sweeps default to ``"profile"`` — per-layer occupancy propagation,
        the mode faithful to the paper's sparsity model; ``"flat"``
        selects the pre-profile scalar path (the ``flat_costs`` built-in).
    shards:
        Shard count handed to :class:`MultiStreamSimulator` (1 = the
        single-process kernel; >1 partitions the fleet by signature across
        epoch-synced shards, see :mod:`repro.runtime.shard`).  Inside pool
        workers the shards run inline — daemonic workers cannot fork.
    schedule_mode:
        Arrival-scheduling discipline
        (:data:`repro.runtime.streams.SCHEDULE_MODES`).  ``"lazy"``
        (default) keeps the kernel heap at O(active streams) via per-stream
        arrival cursors; ``"eager"`` heaps the whole horizon at prime time
        — the bit-identical oracle kept selectable for memory-plane
        comparisons (the ``eager_schedule`` built-in).
    """

    name: str
    max_merge_streams: int = 4
    occupancy_resolution: Optional[float] = 1.0 / 64.0
    optimization: Optional[str] = None
    cost_mode: str = "profile"
    shards: int = 1
    schedule_mode: str = "lazy"

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


BUILTIN_POLICIES = {
    "batched": SweepPolicy("batched"),
    "unbatched": SweepPolicy("unbatched", max_merge_streams=1),
    "exact_costs": SweepPolicy("exact_costs", occupancy_resolution=None),
    "flat_costs": SweepPolicy("flat_costs", cost_mode="flat"),
    "eager_schedule": SweepPolicy("eager_schedule", schedule_mode="eager"),
}


@dataclass(frozen=True)
class SweepCell:
    """One (scenario, platform, policy) grid cell."""

    scenario: ScenarioSpec
    platform: str = "xavier_agx"
    policy: SweepPolicy = field(default_factory=lambda: BUILTIN_POLICIES["batched"])

    def __post_init__(self) -> None:
        if self.platform not in PLATFORMS:
            raise KeyError(
                f"unknown platform '{self.platform}'; available: {', '.join(sorted(PLATFORMS))}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "salt": _CACHE_SALT,
            "scenario": self.scenario.to_dict(),
            "platform": self.platform,
            "policy": self.policy.to_dict(),
        }

    def content_hash(self) -> str:
        """Cache identity of the cell (spec + platform + policy + salt)."""
        return content_digest(self.to_dict())

    @property
    def workload_seed(self) -> int:
        """The cell's deterministic workload seed (the scenario's own seed).

        Part of the content hash and deliberately independent of platform
        and policy, so every cell of a scenario row replays the identical
        traffic — platform and policy comparisons are paired, not
        confounded by workload resampling.
        """
        return self.scenario.seed


def sweep_grid(
    scenarios: Sequence[Union[str, ScenarioSpec]],
    platforms: Sequence[str] = ("xavier_agx",),
    policies: Sequence[Union[str, SweepPolicy]] = ("batched",),
    **spec_overrides,
) -> List[SweepCell]:
    """The full cross product as a cell list (row-major: scenario outermost)."""
    registry = default_registry()
    specs = [registry.resolve(s, **spec_overrides) for s in scenarios]
    resolved_policies = [
        BUILTIN_POLICIES[p] if isinstance(p, str) else p for p in policies
    ]
    return [
        SweepCell(scenario=spec, platform=platform, policy=policy)
        for spec in specs
        for platform in platforms
        for policy in resolved_policies
    ]


# Worker-side compiled-source cache, keyed on the spec's content hash.
# Pool workers are long-lived across ``imap`` tasks, so one worker asked to
# simulate several cells of the same scenario (platform/policy axes of a
# grid) compiles it once and reuses the sources — including their rendered
# frame caches.  Bounded FIFO: sweep grids iterate scenarios outermost, so
# a small window captures all the reuse without pinning every spec's
# sources in worker memory.
_COMPILE_CACHE_LIMIT = 32
_compiled_sources: Dict[str, list] = {}


def _compiled(spec: ScenarioSpec) -> list:
    """Compile ``spec`` at most once per process (sweep-worker memo)."""
    key = spec.content_hash()
    sources = _compiled_sources.get(key)
    if sources is None:
        sources = default_registry().compile(spec)
        while len(_compiled_sources) >= _COMPILE_CACHE_LIMIT:
            _compiled_sources.pop(next(iter(_compiled_sources)))
        _compiled_sources[key] = sources
    return sources


def simulate_cell(cell: SweepCell) -> Dict[str, object]:
    """Compile and simulate one cell; returns a JSON-serialisable row.

    Module-level and dependent only on the picklable ``cell``, so it runs
    unchanged inside ``multiprocessing`` workers.  The spec is simulated
    exactly as written (no seed rewriting), so rows reproduce outside the
    sweep via ``default_registry().compile(spec)`` or the ``run`` CLI.
    """
    spec = cell.scenario
    sources = _compiled(spec)
    if cell.policy.optimization is not None:
        level = OptimizationLevel(cell.policy.optimization)
        sources = [
            dataclasses.replace(
                source, config=dataclasses.replace(source.config, optimization=level)
            )
            for source in sources
        ]
    platform = PLATFORMS[cell.platform]()
    simulator = MultiStreamSimulator(
        platform,
        sources,
        occupancy_resolution=cell.policy.occupancy_resolution,
        max_merge_streams=cell.policy.max_merge_streams,
        cost_mode=cell.policy.cost_mode,
        shards=cell.policy.shards,
        schedule_mode=cell.policy.schedule_mode,
    )
    report = simulator.run()
    return {
        "scenario": cell.scenario.name,
        "family": cell.scenario.family,
        "platform": cell.platform,
        "policy": cell.policy.name,
        "cost_mode": report.cost_mode,
        "shards": report.shards,
        "schedule_mode": cell.policy.schedule_mode,
        "heap_high_water": report.heap_high_water,
        "hash": cell.content_hash(),
        "seed": cell.workload_seed,
        "num_streams": report.num_streams,
        "inferences": report.total_inferences,
        "frames_generated": report.frames_generated,
        "frames_dropped": report.frames_dropped,
        "throughput_fps": report.throughput,
        "mean_latency_ms": report.mean_latency * 1e3,
        "energy_j": report.total_energy,
        "makespan_s": report.makespan,
        "active_window_s": report.active_window,
        "events_processed": report.events_processed,
        "per_stream": report.per_stream_rows(),
        "from_cache": False,
    }


@dataclass
class SweepReport:
    """Result of one sweep run: per-cell rows plus cache accounting."""

    rows: List[Dict[str, object]]
    simulated: int
    from_cache: int
    elapsed_s: float
    workers: int

    @property
    def num_cells(self) -> int:
        return len(self.rows)

    def to_result(self) -> Dict[str, object]:
        """Plain-dict form shared by the experiment harness and the CLI."""
        return {
            "rows": self.rows,
            "num_cells": self.num_cells,
            "simulated": self.simulated,
            "from_cache": self.from_cache,
            "elapsed_s": self.elapsed_s,
            "workers": self.workers,
        }


class SweepRunner:
    """Fan a cell grid across worker processes with on-disk result caching.

    Parameters
    ----------
    cache_dir:
        Directory for ``<hash>.json`` cell results.  ``None`` disables
        caching (every run simulates every cell).
    workers:
        Default pool size; ``run(workers=...)`` overrides per call.  With
        one worker (or one dirty cell) everything runs in-process, which is
        also the fallback the smoke tests pin.
    """

    def __init__(
        self, cache_dir: Optional[Union[str, Path]] = None, workers: int = 1
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.workers = max(int(workers), 1)

    # ------------------------------------------------------------------
    def _cache_path(self, cell_hash: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{cell_hash}.json"

    def _load_cached(self, cell_hash: str) -> Optional[Dict[str, object]]:
        path = self._cache_path(cell_hash)
        if path is None or not path.exists():
            return None
        try:
            with path.open("r", encoding="utf-8") as handle:
                row = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None  # corrupt entries are treated as dirty
        row["from_cache"] = True
        return row

    def _store(self, row: Dict[str, object]) -> None:
        path = self._cache_path(str(row["hash"]))
        if path is None:
            return
        tmp = path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(row, handle)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def run(
        self,
        cells: Sequence[SweepCell],
        workers: Optional[int] = None,
        force: bool = False,
    ) -> SweepReport:
        """Run the grid; only dirty (uncached or ``force``-ed) cells simulate.

        Rows come back in cell order regardless of which worker finished
        first, and cache files are written by the parent process only, so
        concurrent workers never race on the cache directory.
        """
        start = _time.perf_counter()
        workers = self.workers if workers is None else max(int(workers), 1)
        rows: List[Optional[Dict[str, object]]] = [None] * len(cells)
        dirty: List[int] = []
        for i, cell in enumerate(cells):
            cached = None if force else self._load_cached(cell.content_hash())
            if cached is not None:
                rows[i] = cached
            else:
                dirty.append(i)
        if dirty:
            if workers > 1 and len(dirty) > 1:
                ctx = multiprocessing.get_context()
                with ctx.Pool(processes=min(workers, len(dirty))) as pool:
                    # imap (not map) so each finished cell is cached as soon
                    # as its result arrives — a crash or kill mid-sweep keeps
                    # every already-completed cell warm for the re-run.
                    results = pool.imap(
                        simulate_cell, [cells[i] for i in dirty], chunksize=1
                    )
                    for i, row in zip(dirty, results):
                        rows[i] = row
                        self._store(row)
            else:
                for i in dirty:
                    row = simulate_cell(cells[i])
                    rows[i] = row
                    self._store(row)
        return SweepReport(
            rows=[row for row in rows if row is not None],
            simulated=len(dirty),
            from_cache=len(cells) - len(dirty),
            elapsed_s=_time.perf_counter() - start,
            workers=workers,
        )
