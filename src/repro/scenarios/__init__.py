"""Declarative traffic scenarios and the parallel sweep harness.

``ScenarioSpec`` (a picklable, content-hashable value object) + a workload
family from the :func:`default_registry` compile to the ``StreamSource``
lists the :class:`~repro.runtime.streams.MultiStreamSimulator` consumes;
:class:`SweepRunner` fans (scenario × platform × policy) grids across a
``multiprocessing`` pool with on-disk result caching.  See
``python -m repro.scenarios list`` for the built-ins.
"""

from .families import BUILTIN_FAMILIES
from .registry import ScenarioFamily, ScenarioRegistry, default_registry
from .spec import ScenarioSpec, canonical_json, content_digest
from .sweep import (
    BUILTIN_POLICIES,
    PLATFORMS,
    SweepCell,
    SweepPolicy,
    SweepReport,
    SweepRunner,
    simulate_cell,
    sweep_grid,
)

__all__ = [
    "ScenarioSpec",
    "canonical_json",
    "content_digest",
    "ScenarioFamily",
    "ScenarioRegistry",
    "default_registry",
    "BUILTIN_FAMILIES",
    "PLATFORMS",
    "SweepPolicy",
    "BUILTIN_POLICIES",
    "SweepCell",
    "sweep_grid",
    "simulate_cell",
    "SweepReport",
    "SweepRunner",
]
