"""Built-in workload families: spec → ``StreamSource`` list compilers.

Each family is a pure function of its :class:`~repro.scenarios.spec.
ScenarioSpec` — every random draw (join times, sequence choices, skew)
derives from ``spec.seed``, so the same spec always compiles to the same
traffic and a :class:`~repro.runtime.streams.MultiStreamSimulator` run over
it is bit-for-bit reproducible (the property the sweep cache and the
determinism tests rely on).

Families shipped here:

=================  =====================================================
``steady``         Evenly staggered streams over steady driving footage.
``bursty``         Poisson (exponential inter-arrival) stream joins over
                   bursty drone footage.
``diurnal``        Join times follow a sinusoidal load curve (peak-hour
                   clustering), like a day/night traffic profile.
``churn``          Scheduled joins *and* early leaves: part of the fleet
                   departs mid-life (``StreamSource.stop_time``) while
                   late joiners replace it.
``hotspot``        Zipf-skewed network/sequence choice: most streams pile
                   onto one signature, stressing cross-stream batching.
``mixed_fleet``    The optimization ladder (baseline → E2SF → +DSFA →
                   +NMP) cycled across streams on shared hardware.
=================  =====================================================
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from ..core.config import EvEdgeConfig, OptimizationLevel
from ..events.datasets import generate_sequence
from ..models.zoo import build_network
from ..runtime.streams import StreamSource
from .spec import ScenarioSpec

__all__ = [
    "compile_steady",
    "compile_bursty",
    "compile_diurnal",
    "compile_churn",
    "compile_hotspot",
    "compile_mixed_fleet",
    "configure_sequence_cache",
    "BUILTIN_FAMILIES",
    "DEFAULT_SEQUENCE_POOL",
]

# (network, sequence) recipes: steady scenes for the steady/diurnal families,
# bursty drone scenes for the arrival-process families.
_STEADY_RECIPE: Tuple[Tuple[str, str], ...] = (
    ("spikeflownet", "outdoor_day1"),
    ("e2depth", "town10"),
    ("halsie", "outdoor_day1"),
    ("dotie", "calibration_bars"),
)
_BURSTY_RECIPE: Tuple[Tuple[str, str], ...] = (
    ("spikeflownet", "indoor_flying1"),
    ("dotie", "high_speed_disk"),
    ("halsie", "indoor_flying2"),
    ("adaptive_spikenet", "indoor_flying3"),
)


def _rng(spec: ScenarioSpec, salt: str) -> np.random.Generator:
    """Deterministic per-(spec, salt) generator."""
    digest = hashlib.sha256(salt.encode("utf-8")).digest()
    return np.random.default_rng([spec.seed, int.from_bytes(digest[:4], "big")])


# Sequence generation is the expensive part of a compile; large fleets used
# to thrash the old fixed 64-entry cache.  The bound is configurable via the
# REPRO_SEQUENCE_CACHE environment variable or configure_sequence_cache().


def _sequence_cache_size_from_env(default: int = 256) -> int:
    """Parse REPRO_SEQUENCE_CACHE; malformed or non-positive ⇒ default."""
    raw = os.environ.get("REPRO_SEQUENCE_CACHE")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 1 else default


_SEQUENCE_CACHE_SIZE = _sequence_cache_size_from_env()

# Streams of one family share rendered sequences: stream ``i`` draws its
# sequence seed from a pool of ``sequence_pool`` seeds (param override per
# spec) instead of a distinct seed per stream, so a 1024-stream fleet renders
# a handful of sequences instead of 1024.  Fleets no larger than the pool
# are unaffected (``i % pool == i``).
DEFAULT_SEQUENCE_POOL = 8


def _build_sequence_cache(maxsize: int):
    @lru_cache(maxsize=maxsize)
    def _sequence(name: str, scale: float, duration: float, seed: int):
        """Memoized event-sequence generation (the expensive part of a compile)."""
        return generate_sequence(name, scale=scale, duration=duration, seed=seed)

    return _sequence


_sequence = _build_sequence_cache(_SEQUENCE_CACHE_SIZE)


def configure_sequence_cache(maxsize: int) -> None:
    """Resize the rendered-sequence LRU cache (drops current entries).

    The default bound is 256 (env override ``REPRO_SEQUENCE_CACHE``); raise
    it for sweeps that cycle through more distinct (name, scale, duration,
    seed) combinations than that within one process.
    """
    global _sequence, _SEQUENCE_CACHE_SIZE
    if maxsize < 1:
        raise ValueError("sequence cache size must be >= 1")
    _SEQUENCE_CACHE_SIZE = int(maxsize)
    _sequence = _build_sequence_cache(_SEQUENCE_CACHE_SIZE)


@lru_cache(maxsize=32)
def _network(name: str, height: int, width: int):
    return build_network(name, height, width)


def _level(spec: ScenarioSpec, default: OptimizationLevel = OptimizationLevel.E2SF_DSFA) -> OptimizationLevel:
    """The optimization level a spec asks for (param ``optimization``)."""
    value = spec.param("optimization")
    if value is None:
        return default
    return OptimizationLevel(value)


def _make_source(
    spec: ScenarioSpec,
    index: int,
    net_name: str,
    seq_name: str,
    start_offset: float,
    stop_time=None,
    level: OptimizationLevel = None,
    seq_seed: int = None,
) -> StreamSource:
    height, width = spec.network_resolution
    config = EvEdgeConfig(
        num_bins=spec.num_bins,
        optimization=level if level is not None else _level(spec),
    )
    if seq_seed is not None:
        seed = seq_seed
    else:
        pool = int(spec.param("sequence_pool", DEFAULT_SEQUENCE_POOL))
        if pool < 1:
            raise ValueError("sequence_pool must be >= 1")
        # Same-family streams share rendered sequences through the seed
        # pool; combined with the lru cache this caps sequence generation
        # per compile at ``pool`` renders regardless of fleet size.
        seed = spec.seed + (index % pool)
    return StreamSource(
        name=f"{spec.name}:{index:02d}:{net_name}",
        sequence=_sequence(seq_name, spec.scale, spec.duration, seed),
        network=_network(net_name, height, width),
        config=config,
        start_offset=float(start_offset),
        stop_time=None if stop_time is None else float(stop_time),
    )


def _cycle(recipe: Sequence[Tuple[str, str]], index: int) -> Tuple[str, str]:
    return recipe[index % len(recipe)]


# ----------------------------------------------------------------------
# the families
# ----------------------------------------------------------------------
def compile_steady(spec: ScenarioSpec) -> List[StreamSource]:
    """Evenly phase-staggered streams over steady footage."""
    stagger = float(spec.param("stagger", 0.004))
    sources = []
    for i in range(spec.num_streams):
        net, seq = _cycle(_STEADY_RECIPE, i)
        sources.append(_make_source(spec, i, net, seq, start_offset=stagger * i))
    return sources


def compile_bursty(spec: ScenarioSpec) -> List[StreamSource]:
    """Poisson stream arrivals: exponential inter-arrival join times."""
    rng = _rng(spec, "bursty")
    mean_gap = float(spec.param("mean_gap", spec.duration / max(spec.num_streams, 1)))
    joins = np.cumsum(rng.exponential(mean_gap, size=spec.num_streams))
    joins -= joins[0]  # the first stream anchors the scenario at t=0
    sources = []
    for i in range(spec.num_streams):
        net, seq = _cycle(_BURSTY_RECIPE, i)
        sources.append(_make_source(spec, i, net, seq, start_offset=joins[i]))
    return sources


def compile_diurnal(spec: ScenarioSpec) -> List[StreamSource]:
    """Stream joins following a sinusoidal load curve (diurnal profile).

    Join times are the inverse-CDF samples of a rate curve
    ``r(t) = 1 + amplitude * sin(2*pi*t/period - pi/2)`` over one period, so
    streams cluster around the peak of the curve the way user traffic
    clusters around peak hours.
    """
    amplitude = float(spec.param("amplitude", 0.9))
    if not 0 <= amplitude <= 1:
        raise ValueError("diurnal amplitude must be in [0, 1]")
    period = float(spec.param("period", 2.0 * spec.duration))
    rng = _rng(spec, "diurnal")
    grid = np.linspace(0.0, period, 512)
    rate = 1.0 + amplitude * np.sin(2.0 * np.pi * grid / period - np.pi / 2.0)
    cdf = np.cumsum(rate)
    cdf = (cdf - cdf[0]) / (cdf[-1] - cdf[0])
    # Deterministic quantiles with a small seeded jitter so ties never stack
    # every stream on one instant.
    quantiles = (np.arange(spec.num_streams) + 0.5) / spec.num_streams
    quantiles = np.clip(
        quantiles + rng.uniform(-0.2, 0.2, size=spec.num_streams) / spec.num_streams,
        0.0,
        1.0,
    )
    joins = np.interp(np.sort(quantiles), cdf, grid)
    sources = []
    for i in range(spec.num_streams):
        net, seq = _cycle(_STEADY_RECIPE, i)
        sources.append(_make_source(spec, i, net, seq, start_offset=joins[i]))
    return sources


def compile_churn(spec: ScenarioSpec) -> List[StreamSource]:
    """Scheduled joins and early leaves: half the fleet churns mid-life.

    Odd-indexed streams leave after ``lifetime_fraction`` of their footage
    (their ``stop_time`` truncates the stream), modelling sensors that
    detach while replacements are still joining.
    """
    lifetime_fraction = float(spec.param("lifetime_fraction", 0.5))
    if not 0 < lifetime_fraction <= 1:
        raise ValueError("churn lifetime_fraction must be in (0, 1]")
    window = float(spec.param("join_window", spec.duration))
    gap = window / max(spec.num_streams, 1)
    sources = []
    for i in range(spec.num_streams):
        net, seq = _cycle(_BURSTY_RECIPE, i)
        join = gap * i
        stop = join + lifetime_fraction * spec.duration if i % 2 else None
        sources.append(
            _make_source(spec, i, net, seq, start_offset=join, stop_time=stop)
        )
    return sources


def compile_hotspot(spec: ScenarioSpec) -> List[StreamSource]:
    """Zipf-skewed workload choice: most streams hammer one signature.

    Stream counts follow the Zipf weights by largest-remainder allocation
    rather than sampling, so the concentration property holds for *every*
    seed; the seed only jitters the join offsets.
    """
    alpha = float(spec.param("alpha", 1.6))
    if alpha <= 0:
        raise ValueError("hotspot alpha must be positive")
    rng = _rng(spec, "hotspot")
    stagger = float(spec.param("stagger", 0.002))
    ranks = np.arange(1, len(_BURSTY_RECIPE) + 1, dtype=np.float64)
    weights = ranks**-alpha
    weights /= weights.sum()
    ideal = weights * spec.num_streams
    counts = np.floor(ideal).astype(int)
    for i in np.argsort(-(ideal - counts))[: spec.num_streams - counts.sum()]:
        counts[i] += 1
    jitter = rng.uniform(0.0, stagger, size=spec.num_streams)
    sources = []
    index = 0
    for choice, count in enumerate(counts):
        net, seq = _BURSTY_RECIPE[choice]
        for _ in range(count):
            # Streams sharing a recipe entry share the generated sequence and
            # the network object, so they collapse onto one signature server —
            # the hot spot cross-stream batching exists to absorb.
            sources.append(
                _make_source(
                    spec,
                    index,
                    net,
                    seq,
                    start_offset=stagger * index + jitter[index],
                    seq_seed=spec.seed + choice,
                )
            )
            index += 1
    return sources


def compile_mixed_fleet(spec: ScenarioSpec) -> List[StreamSource]:
    """The optimization ladder cycled across streams sharing the platform."""
    ladder = (
        OptimizationLevel.BASELINE,
        OptimizationLevel.E2SF,
        OptimizationLevel.E2SF_DSFA,
        OptimizationLevel.FULL,
    )
    stagger = float(spec.param("stagger", 0.003))
    sources = []
    for i in range(spec.num_streams):
        net, seq = _cycle(_BURSTY_RECIPE, i)
        sources.append(
            _make_source(
                spec,
                i,
                net,
                seq,
                start_offset=stagger * i,
                level=ladder[i % len(ladder)],
            )
        )
    return sources


BUILTIN_FAMILIES = {
    "steady": (compile_steady, "Evenly staggered streams over steady footage"),
    "bursty": (compile_bursty, "Poisson stream joins over bursty drone footage"),
    "diurnal": (compile_diurnal, "Joins clustered by a sinusoidal load curve"),
    "churn": (compile_churn, "Scheduled joins and early leaves (stream churn)"),
    "hotspot": (compile_hotspot, "Zipf-skewed load piling onto one signature"),
    "mixed_fleet": (compile_mixed_fleet, "Optimization ladder cycled across streams"),
}
