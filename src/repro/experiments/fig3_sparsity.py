"""Figure 3: average event-frame occupancy per network on MVSEC.

The paper reports that the average fraction of active pixels per event frame
varies between 0.15 % and 28.57 % across the optical-flow networks, because
each network uses a different input representation (number of bins /
accumulation window).  The harness reproduces the sweep by converting the
same MVSEC stand-in sequence with each network's representative bin count.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.e2sf import Event2SparseFrameConverter
from ..events.datasets import generate_sequence
from .common import ExperimentSettings, format_table

__all__ = ["NETWORK_BIN_COUNTS", "run_fig3", "format_fig3"]

# Representative temporal discretisations of the evaluated flow networks:
# more bins -> shorter accumulation window -> sparser frames.
NETWORK_BIN_COUNTS = {
    "evflownet": 1,            # fully accumulated between grayscale frames
    "spikeflownet": 5,
    "fusionflownet": 10,
    "adaptive_spikenet": 20,
}


def run_fig3(settings: ExperimentSettings = ExperimentSettings()) -> List[Dict[str, object]]:
    """Average occupancy per network input representation."""
    sequence = generate_sequence(
        "indoor_flying1", scale=settings.scale, duration=settings.duration, seed=settings.seed
    )
    timestamps = sequence.frame_timestamps
    rows: List[Dict[str, object]] = []
    for network, bins in NETWORK_BIN_COUNTS.items():
        converter = Event2SparseFrameConverter(bins)
        densities: List[float] = []
        for i in range(sequence.num_intervals):
            frames = converter.convert(
                sequence.events, float(timestamps[i]), float(timestamps[i + 1])
            )
            densities.extend(f.density for f in frames)
        rows.append(
            {
                "network": network,
                "num_bins": bins,
                "mean_occupancy_percent": 100.0 * float(np.mean(densities)),
                "std_occupancy_percent": 100.0 * float(np.std(densities)),
            }
        )
    return rows


def format_fig3(rows: List[Dict[str, object]]) -> str:
    """Render the Figure 3 sweep as a table."""
    return format_table(rows, ["network", "num_bins", "mean_occupancy_percent", "std_occupancy_percent"])
