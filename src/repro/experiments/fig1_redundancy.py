"""Figure 1: event-frame occupancy and wasted operations.

The paper's Figure 1 motivates E2SF by showing, for Adaptive-SpikeNet on the
MVSEC ``indoor_flying1`` sequence, the average percentage of pixels in an
event frame that actually contain events next to the number of operations a
dense implementation expends anyway.  This harness measures both quantities
on the synthetic ``indoor_flying1`` stand-in: per-frame occupancy from the
E2SF output and dense vs. event-proportional MAC counts from the
Adaptive-SpikeNet layer graph.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.e2sf import Event2SparseFrameConverter
from ..events.datasets import generate_sequence
from ..models.zoo import build_adaptive_spikenet
from .common import ExperimentSettings, format_table

__all__ = ["run_fig1", "format_fig1"]


def run_fig1(settings: ExperimentSettings = ExperimentSettings()) -> Dict[str, object]:
    """Measure per-bin occupancy and dense vs. sparse operation counts."""
    sequence = generate_sequence(
        "indoor_flying1", scale=settings.scale, duration=settings.duration, seed=settings.seed
    )
    converter = Event2SparseFrameConverter(settings.num_bins)
    occupancies: List[float] = []
    total_events = 0
    timestamps = sequence.frame_timestamps
    for i in range(sequence.num_intervals):
        frames = converter.convert(sequence.events, float(timestamps[i]), float(timestamps[i + 1]))
        occupancies.extend(f.density for f in frames)
        total_events += int(sum(f.num_events for f in frames))

    network = build_adaptive_spikenet(*settings.network_resolution)
    dense_macs = network.total_macs
    sparse_macs = network.total_effective_macs
    mean_occupancy = float(np.mean(occupancies)) if occupancies else 0.0

    return {
        "sequence": "indoor_flying1",
        "network": network.name,
        "num_frames": len(occupancies),
        "mean_occupancy_percent": 100.0 * mean_occupancy,
        "min_occupancy_percent": 100.0 * float(np.min(occupancies)) if occupancies else 0.0,
        "max_occupancy_percent": 100.0 * float(np.max(occupancies)) if occupancies else 0.0,
        "total_events": total_events,
        "dense_gmacs_per_inference": dense_macs / 1e9,
        "event_proportional_gmacs": sparse_macs / 1e9,
        "wasted_operation_fraction": 1.0 - sparse_macs / dense_macs,
    }


def format_fig1(result: Dict[str, object]) -> str:
    """Human-readable summary of the Figure 1 reproduction."""
    rows = [
        {"metric": "mean occupancy (%)", "value": result["mean_occupancy_percent"]},
        {"metric": "min occupancy (%)", "value": result["min_occupancy_percent"]},
        {"metric": "max occupancy (%)", "value": result["max_occupancy_percent"]},
        {"metric": "dense GMACs / inference", "value": result["dense_gmacs_per_inference"]},
        {"metric": "event-proportional GMACs", "value": result["event_proportional_gmacs"]},
        {"metric": "wasted operation fraction", "value": result["wasted_operation_fraction"]},
    ]
    return format_table(rows, ["metric", "value"])
