"""Table 2: task accuracy of the baseline versus Ev-Edge.

The paper's Table 2 lists, per network, the task metric of the full-precision
baseline and of the Ev-Edge configuration (DSFA merging + the precision mix
chosen by NMP), showing only minimal degradation.  The reproduction measures
the same two columns with the surrogate estimators: the baseline runs at full
precision on unmerged bins; the Ev-Edge configuration quantizes the surrogate
stages to a representative NMP precision mix and merges bins per DSFA.

Absolute metric values differ from the paper (different networks, synthetic
data — see DESIGN.md), but the *pattern* — small degradations in the
direction the paper reports — is what the table checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..nn.accuracy import TaskAccuracyEvaluator
from ..nn.quantization import Precision
from .common import ExperimentSettings, format_table

__all__ = ["TABLE2_NETWORKS", "PAPER_TABLE2", "run_table2", "format_table2"]

# network -> (task, metric name, lower_is_better)
TABLE2_NETWORKS = {
    "spikeflownet": ("optical_flow", "AEE", True),
    "fusionflownet": ("optical_flow", "AEE", True),
    "adaptive_spikenet": ("optical_flow", "AEE", True),
    "halsie": ("semantic_segmentation", "mIOU", False),
    "e2depth": ("depth_estimation", "AvgError", True),
    "dotie": ("object_tracking", "IoU", False),
}

# Paper Table 2 reference values: (baseline, ev_edge).
PAPER_TABLE2 = {
    "spikeflownet": (0.93, 0.96),
    "fusionflownet": (0.72, 0.79),
    "adaptive_spikenet": (1.27, 1.36),
    "halsie": (66.31, 64.18),
    "e2depth": (0.61, 0.63),
    "dotie": (0.86, 0.82),
}

# A representative Ev-Edge configuration: NMP chooses reduced precision for
# the middle/late stages and DSFA merges pairs of bins.
_EV_EDGE_STAGE_PRECISIONS = {
    "optical_flow": [Precision.FP16, Precision.INT8, Precision.FP16],
    "semantic_segmentation": [Precision.FP16, Precision.INT8, Precision.INT8],
    "depth_estimation": [Precision.FP16, Precision.INT8, Precision.FP16],
    "object_tracking": [Precision.INT8, Precision.INT8],
}
_EV_EDGE_MERGE_FACTOR = 2


def run_table2(
    settings: ExperimentSettings = ExperimentSettings(),
    networks: Optional[List[str]] = None,
) -> List[Dict[str, object]]:
    """Baseline vs Ev-Edge accuracy per network."""
    networks = networks or list(TABLE2_NETWORKS)
    evaluators: Dict[str, TaskAccuracyEvaluator] = {}
    rows: List[Dict[str, object]] = []
    for name in networks:
        task, metric, lower_is_better = TABLE2_NETWORKS[name]
        if task not in evaluators:
            evaluators[task] = TaskAccuracyEvaluator(
                task, scale=max(settings.scale, 0.15), num_intervals=4, seed=settings.seed
            )
        evaluator = evaluators[task]
        baseline = evaluator.baseline()
        ev_edge = evaluator.evaluate(
            _EV_EDGE_STAGE_PRECISIONS[task], merge_factor=_EV_EDGE_MERGE_FACTOR
        )
        paper_baseline, paper_ev_edge = PAPER_TABLE2[name]
        rows.append(
            {
                "network": name,
                "metric": metric,
                "lower_is_better": lower_is_better,
                "baseline": baseline,
                "ev_edge": ev_edge,
                "degradation": evaluator.degradation(
                    _EV_EDGE_STAGE_PRECISIONS[task], merge_factor=_EV_EDGE_MERGE_FACTOR
                ),
                "paper_baseline": paper_baseline,
                "paper_ev_edge": paper_ev_edge,
            }
        )
    return rows


def format_table2(rows: List[Dict[str, object]]) -> str:
    """Render the accuracy comparison table."""
    return format_table(
        rows,
        [
            "network",
            "metric",
            "baseline",
            "ev_edge",
            "degradation",
            "paper_baseline",
            "paper_ev_edge",
        ],
    )
