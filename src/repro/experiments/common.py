"""Shared configuration and helpers for the experiment harnesses.

Every experiment module exposes a ``run_*`` function returning plain
dictionaries/lists (so the benchmark harness can print the same rows the
paper reports) plus a ``format_*`` helper producing a human-readable table.
The ``scale`` / ``duration`` knobs exist so that the benchmarks run in
seconds instead of minutes while preserving the statistics the figures rely
on; the defaults reproduce the full-size study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ExperimentSettings", "format_table", "traffic_mix"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Common knobs shared by the experiment harnesses.

    Attributes
    ----------
    scale:
        Spatial scale of the generated sequences (1.0 = full DAVIS 346x260).
    duration:
        Sequence duration in seconds.
    num_bins:
        E2SF bins per grayscale frame interval.
    seed:
        RNG seed for sequence generation and the searches.
    network_resolution:
        (height, width) at which the model-zoo networks are instantiated for
        the platform simulation.
    """

    scale: float = 0.25
    duration: float = 1.0
    num_bins: int = 10
    seed: int = 0
    network_resolution: Sequence[int] = (260, 346)
    num_streams: int = 4


def format_table(rows: List[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render a list of dicts as an aligned text table."""
    if not rows:
        return "(no data)"
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                text = f"{value:.3f}"
            else:
                text = str(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for cells in rendered:
        lines.append("  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns)))
    return "\n".join(lines)


# Default heterogeneous traffic recipe: (network, sequence) pairs cycled by
# :func:`traffic_mix`.  The networks cover both SNN- and ANN-style workloads
# and the sequences cover bursty drone, steady driving and high-speed motion.
_TRAFFIC_RECIPE: Tuple[Tuple[str, str], ...] = (
    ("spikeflownet", "indoor_flying1"),
    ("dotie", "high_speed_disk"),
    ("halsie", "indoor_flying2"),
    ("e2depth", "town10"),
)


def traffic_mix(
    num_streams: Optional[int] = None,
    settings: Optional[ExperimentSettings] = None,
    network_resolution: Tuple[int, int] = (64, 64),
    stagger: float = 0.004,
    optimization: Optional[object] = None,
):
    """Build ``num_streams`` heterogeneous :class:`StreamSource` objects.

    Streams cycle through the default network/sequence recipe, reuse one
    generated sequence and one built network per recipe entry, and are
    phase-staggered by ``stagger`` seconds so arrivals interleave instead of
    colliding.  ``num_streams`` defaults to ``settings.num_streams``.  Used
    by the multi-stream benchmark and examples; pass a different
    ``optimization`` level (default: E2SF+DSFA) to study other
    configurations under traffic.
    """
    from ..core.config import EvEdgeConfig, OptimizationLevel
    from ..events.datasets import generate_sequence
    from ..models.zoo import build_network
    from ..runtime.streams import StreamSource

    settings = settings or ExperimentSettings()
    if num_streams is None:
        num_streams = settings.num_streams
    if num_streams < 1:
        raise ValueError("num_streams must be >= 1")
    level = optimization or OptimizationLevel.E2SF_DSFA
    height, width = network_resolution
    networks: Dict[str, object] = {}
    sequences: Dict[str, object] = {}
    sources = []
    for i in range(num_streams):
        net_name, seq_name = _TRAFFIC_RECIPE[i % len(_TRAFFIC_RECIPE)]
        if net_name not in networks:
            networks[net_name] = build_network(net_name, height, width)
        if seq_name not in sequences:
            sequences[seq_name] = generate_sequence(
                seq_name,
                scale=settings.scale,
                duration=settings.duration,
                seed=settings.seed + i % len(_TRAFFIC_RECIPE),
            )
        config = EvEdgeConfig(num_bins=settings.num_bins, optimization=level)
        sources.append(
            StreamSource(
                name=f"s{i:02d}:{net_name}",
                sequence=sequences[seq_name],
                network=networks[net_name],
                config=config,
                start_offset=stagger * i,
            )
        )
    return sources
