"""Shared configuration and helpers for the experiment harnesses.

Every experiment module exposes a ``run_*`` function returning plain
dictionaries/lists (so the benchmark harness can print the same rows the
paper reports) plus a ``format_*`` helper producing a human-readable table.
The ``scale`` / ``duration`` knobs exist so that the benchmarks run in
seconds instead of minutes while preserving the statistics the figures rely
on; the defaults reproduce the full-size study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["ExperimentSettings", "format_table"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Common knobs shared by the experiment harnesses.

    Attributes
    ----------
    scale:
        Spatial scale of the generated sequences (1.0 = full DAVIS 346x260).
    duration:
        Sequence duration in seconds.
    num_bins:
        E2SF bins per grayscale frame interval.
    seed:
        RNG seed for sequence generation and the searches.
    network_resolution:
        (height, width) at which the model-zoo networks are instantiated for
        the platform simulation.
    """

    scale: float = 0.25
    duration: float = 1.0
    num_bins: int = 10
    seed: int = 0
    network_resolution: Sequence[int] = (260, 346)


def format_table(rows: List[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render a list of dicts as an aligned text table."""
    if not rows:
        return "(no data)"
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                text = f"{value:.3f}"
            else:
                text = str(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for cells in rendered:
        lines.append("  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns)))
    return "\n".join(lines)
