"""Figure 10: NMP search convergence and comparison with random search.

(a) the best fitness per generation of the evolutionary search on the mixed
SNN-ANN configuration, showing latency and accuracy degradation being
minimised simultaneously; (b) the latency of the configuration found by the
evolutionary search versus random sampling of the same number of candidates
(the paper reports the evolutionary result is 1.42x faster).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.nmp.evolutionary import NMPConfig, NetworkMapper
from ..core.nmp.random_search import RandomSearchMapper
from ..hw.jetson import jetson_xavier_agx
from ..hw.pe import Platform
from ..hw.profiler import PlatformProfiler
from ..models.zoo import build_network
from ..nn.graph import MultiTaskGraph, TaskSpec
from .common import ExperimentSettings
from .fig9_multi_task import MULTI_TASK_CONFIGS

__all__ = ["run_fig10", "format_fig10"]


def run_fig10(
    settings: ExperimentSettings = ExperimentSettings(),
    platform: Optional[Platform] = None,
    config_name: str = "mixed_snn_ann",
    nmp_config: Optional[NMPConfig] = None,
) -> Dict[str, object]:
    """Run the evolutionary and random searches on the mixed SNN-ANN config."""
    platform = platform or jetson_xavier_agx()
    networks = MULTI_TASK_CONFIGS[config_name]
    graph = MultiTaskGraph(
        [TaskSpec(build_network(name, *settings.network_resolution)) for name in networks]
    )
    profile = PlatformProfiler(platform).profile(graph, occupancy=0.1)
    nmp_config = nmp_config or NMPConfig(population_size=20, generations=15, seed=settings.seed)

    evolutionary = NetworkMapper(graph, platform, profile, nmp_config).run()
    random_search = RandomSearchMapper(graph, platform, profile, nmp_config).run()

    return {
        "config": config_name,
        "generations": nmp_config.generations,
        "population_size": nmp_config.population_size,
        "evolutionary_convergence": evolutionary.convergence,
        "random_convergence": random_search.convergence,
        "evolutionary_latency_ms": evolutionary.best_latency * 1e3,
        "random_latency_ms": random_search.best_latency * 1e3,
        "evolutionary_vs_random_speedup": random_search.best_latency / evolutionary.best_latency,
        "evolutionary_evaluations": evolutionary.evaluations,
        "evolutionary_cache_hits": evolutionary.cache_hits,
    }


def format_fig10(result: Dict[str, object]) -> str:
    """Summarise the convergence curves and the final comparison."""
    conv = result["evolutionary_convergence"]
    rand = result["random_convergence"]
    lines = [
        f"configuration: {result['config']}  ({result['generations']} generations x "
        f"{result['population_size']} candidates)",
        f"evolutionary best fitness per generation: "
        + " ".join(f"{v * 1e3:.2f}" for v in conv),
        f"random-search best fitness per generation: "
        + " ".join(f"{v * 1e3:.2f}" for v in rand),
        f"final latency — evolutionary: {result['evolutionary_latency_ms']:.2f} ms, "
        f"random: {result['random_latency_ms']:.2f} ms "
        f"({result['evolutionary_vs_random_speedup']:.2f}x)",
    ]
    return "\n".join(lines)
