"""Figure 10: NMP search convergence and strategy comparison.

(a) the best fitness per generation of the evolutionary search on the mixed
SNN-ANN configuration, showing latency and accuracy degradation being
minimised simultaneously; (b) the latency of the configuration found by the
evolutionary search versus random sampling of the same number of candidates
(the paper reports the evolutionary result is 1.42x faster).

Since the search-engine refactor the comparison spans all four registered
strategies — evolutionary, random, simulated annealing and greedy layer-wise
local search — running through ONE :class:`~repro.core.nmp.search.
MapperEngine` and one shared fitness evaluator under an equal evaluation
budget (``generations x population_size`` requested evaluations each).  The
evolutionary and random runs use the plain configuration, so their results
are bit-for-bit the pre-refactor Figure 10 results for a given seed (each
run draws a fresh RNG from the seed, so this holds in any strategy order).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.nmp.search import MapperEngine, NMPConfig, make_strategy
from ..hw.jetson import jetson_xavier_agx
from ..hw.pe import Platform
from ..hw.profiler import PlatformProfiler
from ..models.zoo import build_network
from ..nn.graph import MultiTaskGraph, TaskSpec
from .common import ExperimentSettings
from .fig9_multi_task import MULTI_TASK_CONFIGS

__all__ = ["DEFAULT_STRATEGIES", "run_fig10", "format_fig10"]

#: Each run draws a fresh RNG from the config seed and the shared fitness
#: cache is value-preserving, so strategy order does not affect results.
DEFAULT_STRATEGIES = ("evolutionary", "random", "annealing", "greedy")


def run_fig10(
    settings: ExperimentSettings = ExperimentSettings(),
    platform: Optional[Platform] = None,
    config_name: str = "mixed_snn_ann",
    nmp_config: Optional[NMPConfig] = None,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
) -> Dict[str, object]:
    """Run every search strategy on the mixed SNN-ANN config with one engine."""
    platform = platform or jetson_xavier_agx()
    networks = MULTI_TASK_CONFIGS[config_name]
    graph = MultiTaskGraph(
        [TaskSpec(build_network(name, *settings.network_resolution)) for name in networks]
    )
    profile = PlatformProfiler(platform).profile(graph, occupancy=0.1)
    nmp_config = nmp_config or NMPConfig(population_size=20, generations=15, seed=settings.seed)
    engine = MapperEngine(graph, platform, profile, nmp_config)
    budget = nmp_config.generations * nmp_config.population_size

    per_strategy: Dict[str, Dict[str, object]] = {}
    for name in strategies:
        if name in ("evolutionary", "random"):
            # The seed's fixed generations x population schedule: exactly
            # ``budget`` requested evaluations, bit-for-bit reproducible.
            run_config = nmp_config
        else:
            # Population shape differs (annealing chains, greedy layer
            # sweeps), so pin the requested-evaluation budget instead.
            run_config = engine.equal_budget_config()
        result = engine.run(make_strategy(name), config=run_config)
        per_strategy[name] = {
            "convergence": result.convergence,
            "latency_ms": result.best_latency * 1e3,
            "fitness": result.best_breakdown.fitness,
            "requested_evaluations": result.requested_evaluations,
            "scheduler_evaluations": result.evaluations,
            "cache_hits": result.cache_hits,
            "generations_run": len(result.history),
            "best_key": result.best_candidate.key(),
        }

    evolutionary = per_strategy.get("evolutionary")
    random_search = per_strategy.get("random")
    out: Dict[str, object] = {
        "config": config_name,
        "generations": nmp_config.generations,
        "population_size": nmp_config.population_size,
        "evaluation_budget": budget,
        "strategies": per_strategy,
    }
    if evolutionary is not None:
        out["evolutionary_convergence"] = evolutionary["convergence"]
        out["evolutionary_latency_ms"] = evolutionary["latency_ms"]
        out["evolutionary_evaluations"] = evolutionary["scheduler_evaluations"]
        out["evolutionary_cache_hits"] = evolutionary["cache_hits"]
    if random_search is not None:
        out["random_convergence"] = random_search["convergence"]
        out["random_latency_ms"] = random_search["latency_ms"]
    if evolutionary is not None and random_search is not None:
        out["evolutionary_vs_random_speedup"] = (
            random_search["latency_ms"] / evolutionary["latency_ms"]
        )
    return out


def format_fig10(result: Dict[str, object]) -> str:
    """Summarise the convergence curves and the strategy comparison."""
    lines = [
        f"configuration: {result['config']}  ({result['generations']} generations x "
        f"{result['population_size']} candidates, budget "
        f"{result['evaluation_budget']} evaluations/strategy)",
    ]
    per_strategy: Dict[str, Dict[str, object]] = result["strategies"]
    for name, stats in per_strategy.items():
        conv = stats["convergence"]
        lines.append(
            f"{name:12s} best fitness per generation: "
            + " ".join(f"{v * 1e3:.2f}" for v in conv[:20])
            + (" ..." if len(conv) > 20 else "")
        )
    lines.append(
        "final latency — "
        + ", ".join(
            f"{name}: {stats['latency_ms']:.2f} ms" for name, stats in per_strategy.items()
        )
    )
    if "evolutionary_vs_random_speedup" in result:
        lines.append(
            f"evolutionary vs random: {result['evolutionary_vs_random_speedup']:.2f}x"
        )
    return "\n".join(lines)
