"""Scenario sweep harness: traffic regimes × platforms × serving policies.

The paper's central claim is that event-driven scheduling wins across
*traffic regimes*, not just on one hand-built stream list.  This harness
runs every registered scenario family (steady, bursty, diurnal, churn,
hotspot, mixed-fleet) against one or more platform models and serving
policies through the cached, parallel
:class:`~repro.scenarios.sweep.SweepRunner`, and reports the aggregate and
per-stream tables the traffic studies compare.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..scenarios.registry import default_registry
from ..scenarios.spec import ScenarioSpec
from ..scenarios.sweep import SweepPolicy, SweepRunner, sweep_grid
from .common import ExperimentSettings, format_table

__all__ = ["run_scenario_sweep", "format_scenario_sweep", "SWEEP_COLUMNS"]

SWEEP_COLUMNS = (
    "scenario",
    "platform",
    "policy",
    "num_streams",
    "inferences",
    "frames_generated",
    "frames_dropped",
    "throughput_fps",
    "mean_latency_ms",
    "energy_j",
)


def run_scenario_sweep(
    settings: Optional[ExperimentSettings] = None,
    scenarios: Optional[Sequence[Union[str, ScenarioSpec]]] = None,
    platforms: Sequence[str] = ("xavier_agx",),
    policies: Sequence[Union[str, SweepPolicy]] = ("batched", "unbatched"),
    workers: int = 1,
    cache_dir: Optional[str] = None,
    force: bool = False,
) -> Dict[str, object]:
    """Run the grid and return rows plus cache/parallelism accounting.

    ``settings`` maps onto the scenario specs: ``scale`` / ``duration`` /
    ``num_bins`` / ``seed`` / ``num_streams`` override every named scenario's
    defaults, so the sweep honours the same knobs as the figure harnesses.
    """
    settings = settings or ExperimentSettings()
    if scenarios is None:
        scenarios = default_registry().names()
    cells = sweep_grid(
        scenarios,
        platforms=platforms,
        policies=policies,
        num_streams=settings.num_streams,
        duration=settings.duration,
        scale=settings.scale,
        num_bins=settings.num_bins,
        seed=settings.seed,
    )
    report = SweepRunner(cache_dir=cache_dir, workers=workers).run(cells, force=force)
    return report.to_result()


def format_scenario_sweep(result: Dict[str, object], per_stream: bool = False) -> str:
    """Human-readable sweep summary (pass ``per_stream=True`` for the detail)."""
    rows: List[Dict[str, object]] = list(result["rows"])
    lines = [
        f"{result['num_cells']} cells  simulated={result['simulated']}  "
        f"from_cache={result['from_cache']}  workers={result['workers']}  "
        f"elapsed={result['elapsed_s']:.2f}s",
        "",
        format_table(rows, list(SWEEP_COLUMNS)),
    ]
    if per_stream:
        for row in rows:
            lines.append("")
            lines.append(
                f"-- {row['scenario']} / {row['platform']} / {row['policy']} --"
            )
            lines.append(
                format_table(
                    list(row.get("per_stream", [])),
                    [
                        "stream",
                        "inferences",
                        "mean_latency_ms",
                        "frames_generated",
                        "frames_dropped",
                        "energy_j",
                    ],
                )
            )
    return "\n".join(lines)
