"""Figure 9: multi-task latency of NMP vs round-robin scheduling.

The paper evaluates three concurrent-execution configurations — all-ANN
(EV-FlowNet + E2Depth), all-SNN (DOTIE + Adaptive-SpikeNet) and a mixed
SNN-ANN set (Fusion-FlowNet + HALSIE + DOTIE + E2Depth) — and compares the
Network Mapper against RR-Network and RR-Layer round-robin policies, plus the
full-precision-only variant Ev-Edge-NMP-FP.  Reported results: NMP is
1.43x-1.81x faster than RR-Network, 1.24x-1.41x faster than RR-Layer, and
NMP-FP is 1.05x-1.22x slower than NMP but still ahead of both baselines.

Per configuration ONE :class:`~repro.core.nmp.search.MapperEngine` (and
therefore one fitness evaluator, fitness cache and flattened schedule) runs
both the mixed-precision and the FP-only search, and the round-robin
baselines are evaluated through the same evaluator — so their fitness is
already cached when they re-enter the searches as warm-start seeds.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..core.nmp.candidate import MappingCandidate
from ..core.nmp.search import EvolutionaryStrategy, MapperEngine, NMPConfig
from ..hw.jetson import DLA_NAME, GPU_NAME, jetson_xavier_agx
from ..hw.pe import Platform
from ..hw.profiler import PlatformProfiler
from ..models.zoo import build_network
from ..nn.accuracy import TaskAccuracyEvaluator
from ..nn.graph import MultiTaskGraph, TaskSpec
from ..nn.quantization import Precision
from ..runtime.schedulers import rr_layer_mapping, rr_network_mapping
from .common import ExperimentSettings, format_table

__all__ = ["MULTI_TASK_CONFIGS", "run_fig9", "format_fig9"]

# The three concurrent-execution scenarios of the paper.
MULTI_TASK_CONFIGS = {
    "all_ann": ["evflownet", "e2depth"],
    "all_snn": ["dotie", "adaptive_spikenet"],
    "mixed_snn_ann": ["fusionflownet", "halsie", "dotie", "e2depth"],
}


def _build_graph(networks: List[str], settings: ExperimentSettings) -> MultiTaskGraph:
    tasks = [
        TaskSpec(build_network(name, *settings.network_resolution)) for name in networks
    ]
    return MultiTaskGraph(tasks)


def run_fig9(
    settings: ExperimentSettings = ExperimentSettings(),
    configs: Optional[Dict[str, List[str]]] = None,
    platform: Optional[Platform] = None,
    nmp_config: Optional[NMPConfig] = None,
    with_accuracy: bool = False,
) -> List[Dict[str, object]]:
    """Latency of NMP, NMP-FP, RR-Network and RR-Layer per configuration."""
    platform = platform or jetson_xavier_agx()
    configs = configs or MULTI_TASK_CONFIGS
    nmp_config = nmp_config or NMPConfig(population_size=20, generations=12, seed=settings.seed)
    rows: List[Dict[str, object]] = []
    for config_name, networks in configs.items():
        graph = _build_graph(networks, settings)
        profile = PlatformProfiler(platform).profile(graph, occupancy=0.1)
        accuracy_evaluators = None
        if with_accuracy:
            accuracy_evaluators = {
                task.name: TaskAccuracyEvaluator(
                    task.network.task, scale=0.15, num_intervals=3, seed=settings.seed
                )
                for task in graph.tasks
            }
        engine = MapperEngine(
            graph,
            platform,
            profile,
            config=nmp_config,
            accuracy_evaluators=accuracy_evaluators,
        )

        # Round-robin baselines cycle over the devices TensorRT deploys
        # networks on (GPU + DLA) at the Jetson's default FP16 precision.
        rr_devices = [name for name in (GPU_NAME, DLA_NAME) if name in platform]
        rr_network_candidate = rr_network_mapping(
            graph, platform, precision=Precision.FP16, devices=rr_devices
        )
        rr_layer_candidate = rr_layer_mapping(
            graph, platform, precision=Precision.FP16, devices=rr_devices
        )
        # Evaluating the baselines through the shared evaluator caches their
        # fitness, so the searches' warm starts below are free cache hits.
        rr_network_latency = engine.evaluator.evaluate(rr_network_candidate).max_task_latency
        rr_layer_latency = engine.evaluator.evaluate(rr_layer_candidate).max_task_latency

        gpu = platform.gpu()
        fp_seeds = [
            MappingCandidate.uniform(graph, gpu.name, Precision.FP32),
            rr_network_candidate,
            rr_layer_candidate,
        ]
        mixed_seeds = fp_seeds + [
            MappingCandidate.uniform(graph, gpu.name, Precision.FP16),
            MappingCandidate.uniform(graph, gpu.name, Precision.INT8),
        ]
        nmp = engine.run(EvolutionaryStrategy(), initial_candidates=mixed_seeds)
        nmp_fp = engine.run(
            EvolutionaryStrategy(),
            initial_candidates=fp_seeds,
            config=replace(nmp_config, full_precision_only=True),
        )

        nmp_latency = nmp.best_latency
        nmp_fp_latency = nmp_fp.best_latency
        rows.append(
            {
                "config": config_name,
                "networks": "+".join(networks),
                "nmp_latency_ms": nmp_latency * 1e3,
                "nmp_fp_latency_ms": nmp_fp_latency * 1e3,
                "rr_network_latency_ms": rr_network_latency * 1e3,
                "rr_layer_latency_ms": rr_layer_latency * 1e3,
                "speedup_vs_rr_network": rr_network_latency / nmp_latency,
                "speedup_vs_rr_layer": rr_layer_latency / nmp_latency,
                "nmp_fp_slowdown": nmp_fp_latency / nmp_latency,
                "max_degradation": max(nmp.best_breakdown.degradations.values(), default=0.0),
            }
        )
    return rows


def format_fig9(rows: List[Dict[str, object]]) -> str:
    """Render the multi-task comparison table."""
    return format_table(
        rows,
        [
            "config",
            "nmp_latency_ms",
            "nmp_fp_latency_ms",
            "rr_layer_latency_ms",
            "rr_network_latency_ms",
            "speedup_vs_rr_layer",
            "speedup_vs_rr_network",
            "nmp_fp_slowdown",
        ],
    )
