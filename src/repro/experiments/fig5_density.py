"""Figure 5: temporal event density of the indoor_flying2 sequence.

The paper plots the number of events per time window over the
``indoor_flying2`` recording to show the large variance DSFA must adapt to.
The harness reproduces the series on the synthetic stand-in and reports the
burstiness statistics (peak-to-median ratio, coefficient of variation) that
make static frame construction inadequate.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..events.datasets import generate_sequence
from .common import ExperimentSettings

__all__ = ["run_fig5", "format_fig5"]


def run_fig5(
    settings: ExperimentSettings = ExperimentSettings(), window: float = 0.02
) -> Dict[str, object]:
    """Events per ``window`` seconds over the indoor_flying2 stand-in."""
    sequence = generate_sequence(
        "indoor_flying2",
        scale=settings.scale,
        duration=max(settings.duration, 1.0),
        seed=settings.seed,
    )
    density = sequence.events.temporal_density(window)
    median = float(np.median(density)) if density.size else 0.0
    return {
        "sequence": "indoor_flying2",
        "window_seconds": window,
        "series": density.tolist(),
        "num_windows": int(density.size),
        "total_events": int(density.sum()),
        "peak_events_per_window": int(density.max()) if density.size else 0,
        "median_events_per_window": median,
        "peak_to_median_ratio": float(density.max() / max(median, 1.0)) if density.size else 0.0,
        "coefficient_of_variation": float(density.std() / max(density.mean(), 1e-9))
        if density.size
        else 0.0,
    }


def format_fig5(result: Dict[str, object], width: int = 50) -> str:
    """Text sparkline of the temporal density series plus summary statistics."""
    series = np.asarray(result["series"], dtype=np.float64)
    lines = [
        f"sequence: {result['sequence']}  window: {result['window_seconds']*1e3:.0f} ms",
        f"total events: {result['total_events']}  peak/median: {result['peak_to_median_ratio']:.1f}"
        f"  CV: {result['coefficient_of_variation']:.2f}",
    ]
    if series.size:
        peak = series.max() or 1.0
        blocks = " .:-=+*#%@"
        sampled = series[np.linspace(0, series.size - 1, min(width, series.size)).astype(int)]
        line = "".join(blocks[int(v / peak * (len(blocks) - 1))] for v in sampled)
        lines.append(f"density |{line}|")
    return "\n".join(lines)
