"""Table 1: summary of the evaluated networks.

The reproduction's model zoo instantiates each network as a layer graph; this
harness checks the graph statistics against the counts the paper lists and
reports both side by side.
"""

from __future__ import annotations

from typing import Dict, List

from ..models.zoo import table1_summary
from .common import format_table

__all__ = ["run_table1", "format_table1"]


def run_table1() -> List[Dict[str, object]]:
    """Model-zoo layer counts next to the paper's Table 1 values."""
    rows = table1_summary()
    for row in rows:
        row["layers_match"] = (
            row["layers"] == row["paper_layers"]
            and row["snn_layers"] == row["paper_snn_layers"]
            and row["ann_layers"] == row["paper_ann_layers"]
        )
    return rows


def format_table1(rows: List[Dict[str, object]]) -> str:
    """Render the Table 1 comparison."""
    return format_table(
        rows,
        [
            "network",
            "task",
            "type",
            "layers",
            "snn_layers",
            "ann_layers",
            "paper_layers",
            "layers_match",
            "total_gmacs",
        ],
    )
