"""Experiment harnesses: one module per paper figure/table."""

from .common import ExperimentSettings, format_table, traffic_mix
from .fig1_redundancy import format_fig1, run_fig1
from .fig3_sparsity import NETWORK_BIN_COUNTS, format_fig3, run_fig3
from .fig5_density import format_fig5, run_fig5
from .fig8_single_task import NETWORK_SEQUENCES, format_fig8, run_fig8
from .fig9_multi_task import MULTI_TASK_CONFIGS, format_fig9, run_fig9
from .fig10_convergence import format_fig10, run_fig10
from .scenario_sweep import SWEEP_COLUMNS, format_scenario_sweep, run_scenario_sweep
from .table1_networks import format_table1, run_table1
from .table2_accuracy import PAPER_TABLE2, TABLE2_NETWORKS, format_table2, run_table2

__all__ = [
    "ExperimentSettings",
    "format_table",
    "traffic_mix",
    "run_fig1",
    "format_fig1",
    "run_fig3",
    "format_fig3",
    "NETWORK_BIN_COUNTS",
    "run_fig5",
    "format_fig5",
    "run_fig8",
    "format_fig8",
    "NETWORK_SEQUENCES",
    "run_fig9",
    "format_fig9",
    "MULTI_TASK_CONFIGS",
    "run_fig10",
    "format_fig10",
    "run_scenario_sweep",
    "format_scenario_sweep",
    "SWEEP_COLUMNS",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "TABLE2_NETWORKS",
    "PAPER_TABLE2",
]
