"""Figure 8 (+ energy results): single-task speedup over the all-GPU baseline.

For every network of Table 1, the harness runs the integrated pipeline on the
task's dataset stand-in at four optimization levels — the all-GPU dense
baseline, +E2SF, +E2SF+DSFA and full Ev-Edge (+NMP, which for a single task
searches over layer placement and precision) — and reports the latency and
energy improvements of each level over the baseline.

The paper reports 1.28x-2.05x latency and 1.23x-2.15x energy improvements for
the full configuration, with SNN-heavy networks gaining the most.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.config import EvEdgeConfig, OptimizationLevel
from ..core.dsfa import DSFAConfig
from ..core.nmp.evolutionary import NMPConfig, NetworkMapper
from ..core.pipeline import EvEdgePipeline
from ..events.datasets import generate_sequence
from ..hw.jetson import jetson_xavier_agx
from ..hw.pe import Platform
from ..hw.profiler import PlatformProfiler
from ..models.zoo import build_network
from ..nn.graph import MultiTaskGraph, TaskSpec
from .common import ExperimentSettings, format_table

__all__ = ["NETWORK_SEQUENCES", "run_fig8", "format_fig8"]

# Dataset stand-in used for each network's task (paper Section 5).
NETWORK_SEQUENCES = {
    "spikeflownet": "indoor_flying1",
    "fusionflownet": "indoor_flying1",
    "adaptive_spikenet": "indoor_flying1",
    "halsie": "indoor_flying2",
    "e2depth": "town10",
    "dotie": "high_speed_disk",
}


def _single_task_nmp_mapping(network, platform: Platform, settings: ExperimentSettings):
    """Run a small single-task NMP search (latency objective only).

    The population is warm-started with the all-GPU mapping at every
    precision so the search result is never worse than simply lowering the
    precision of the baseline.
    """
    from ..core.nmp.candidate import MappingCandidate
    from ..nn.quantization import Precision

    graph = MultiTaskGraph([TaskSpec(network)])
    profile = PlatformProfiler(platform).profile(graph, occupancy=0.1)
    gpu = platform.gpu()
    seeds = [
        MappingCandidate.uniform(graph, gpu.name, precision)
        for precision in Precision.ordered()
        if gpu.supports_precision(precision)
    ]
    mapper = NetworkMapper(
        graph,
        platform,
        profile,
        NMPConfig(population_size=16, generations=10, seed=settings.seed),
        initial_candidates=seeds,
    )
    return mapper.run().best_candidate


def run_fig8(
    settings: ExperimentSettings = ExperimentSettings(),
    networks: Optional[List[str]] = None,
    platform: Optional[Platform] = None,
) -> List[Dict[str, object]]:
    """Latency/energy of every optimization level for every network."""
    platform = platform or jetson_xavier_agx()
    networks = networks or list(NETWORK_SEQUENCES)
    rows: List[Dict[str, object]] = []
    for name in networks:
        network = build_network(name, *settings.network_resolution)
        sequence = generate_sequence(
            NETWORK_SEQUENCES[name],
            scale=settings.scale,
            duration=settings.duration,
            seed=settings.seed,
        )
        # Semantic segmentation limits merge aggressiveness (pixel-accurate
        # output), reflected in a tighter density threshold.
        dsfa = DSFAConfig(
            event_buffer_size=8,
            merge_bucket_size=4,
            max_time_delay=0.05,
            max_density_change=0.1 if network.task == "semantic_segmentation" else 0.5,
            inference_queue_depth=2,
        )
        nmp_mapping = _single_task_nmp_mapping(network, platform, settings)
        levels = {
            OptimizationLevel.BASELINE: None,
            OptimizationLevel.E2SF: None,
            OptimizationLevel.E2SF_DSFA: None,
            OptimizationLevel.FULL: nmp_mapping,
        }
        reports = {}
        for level, mapping in levels.items():
            config = EvEdgeConfig(num_bins=settings.num_bins, dsfa=dsfa, optimization=level)
            # Profile-mode costing: every level (baseline included) is costed
            # on propagated per-layer occupancies, so the reported ratios
            # compare like with like.
            pipeline = EvEdgePipeline(
                network, platform, config, mapping=mapping, cost_mode="profile"
            )
            reports[level] = pipeline.run(sequence)
        base = reports[OptimizationLevel.BASELINE]
        row: Dict[str, object] = {
            "network": name,
            "type": network.network_type,
            "sequence": NETWORK_SEQUENCES[name],
            "cost_mode": base.cost_mode,
            "baseline_latency_ms": base.mean_latency * 1e3,
            "baseline_energy_j": base.total_energy,
        }
        for level in (OptimizationLevel.E2SF, OptimizationLevel.E2SF_DSFA, OptimizationLevel.FULL):
            report = reports[level]
            label = level.value.replace("+", "_")
            row[f"speedup_{label}"] = (
                base.mean_latency / report.mean_latency if report.mean_latency > 0 else float("inf")
            )
            row[f"energy_gain_{label}"] = (
                base.total_energy / report.total_energy if report.total_energy > 0 else float("inf")
            )
        row["ev_edge_speedup"] = row["speedup_e2sf_dsfa_nmp"]
        row["ev_edge_energy_gain"] = row["energy_gain_e2sf_dsfa_nmp"]
        rows.append(row)
    return rows


def format_fig8(rows: List[Dict[str, object]]) -> str:
    """Render the single-task speedup table."""
    return format_table(
        rows,
        [
            "network",
            "type",
            "baseline_latency_ms",
            "speedup_e2sf",
            "speedup_e2sf_dsfa",
            "ev_edge_speedup",
            "ev_edge_energy_gain",
        ],
    )
