"""Energy model for layer execution and data movement.

The paper reports 1.23x-2.15x energy improvements measured with Tegrastats.
The reproduction integrates power over the modelled execution time: a layer's
energy is its latency times the active power of the device it runs on (scaled
mildly by precision, since lower-precision math switches less capacitance),
plus a per-byte cost for the data it moves through LPDDR4x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..nn.layers import LayerSpec
from ..nn.quantization import Precision
from .latency import LatencyModel
from .pe import Platform, ProcessingElement

__all__ = ["EnergyModel", "EnergyEstimate"]

# LPDDR4x access energy, joules per byte (~20 pJ/bit).
_DRAM_ENERGY_PER_BYTE = 2.5e-12 * 8

# Relative dynamic power of the math units by precision.
_PRECISION_POWER = {
    Precision.FP32: 1.0,
    Precision.FP16: 0.75,
    Precision.INT8: 0.55,
}


@dataclass(frozen=True)
class EnergyEstimate:
    """Breakdown of one layer's estimated energy on one device."""

    compute_energy: float
    memory_energy: float

    @property
    def total(self) -> float:
        """Total energy in joules."""
        return self.compute_energy + self.memory_energy


class EnergyModel:
    """Estimate energy per layer given the latency model's timing."""

    def __init__(self, latency_model: Optional[LatencyModel] = None) -> None:
        self.latency_model = latency_model or LatencyModel()

    def layer_energy(
        self,
        layer: LayerSpec,
        pe: ProcessingElement,
        precision: Precision,
        sparse: bool = False,
        occupancy: Optional[float] = None,
        batch: int = 1,
    ) -> EnergyEstimate:
        """Energy of executing ``layer`` on ``pe`` at ``precision``."""
        estimate = self.latency_model.layer_latency(
            layer, pe, precision, sparse=sparse, occupancy=occupancy, batch=batch
        )
        power = pe.active_power_w * _PRECISION_POWER[precision]
        compute_energy = estimate.total * power
        data_bytes = layer.weight_bytes(precision) + layer.activation_bytes(precision) * batch
        if sparse:
            occ = occupancy if occupancy is not None else 1.0 - layer.activation_sparsity
            data_bytes = (
                layer.weight_bytes(precision)
                + layer.activation_bytes(precision) * batch * min(max(occ, 0.0), 1.0) * 1.5
            )
        memory_energy = data_bytes * _DRAM_ENERGY_PER_BYTE
        return EnergyEstimate(compute_energy, memory_energy)

    def network_energy(
        self,
        layers,
        pe: ProcessingElement,
        precision: Precision,
        sparse: bool = False,
        batch: int = 1,
        occupancies=None,
    ) -> float:
        """Total energy of a list of layers run serially on one device.

        Mirrors :meth:`LatencyModel.network_latency`: ``occupancies``
        optionally carries one non-zero activation fraction per compute
        layer (an occupancy profile); ``None`` entries fall back to the
        layer's static modelled sparsity.
        """
        compute = [l for l in layers if l.kind.is_compute]
        if occupancies is None:
            occupancies = [None] * len(compute)
        occupancies = list(occupancies)
        if len(occupancies) != len(compute):
            raise ValueError(
                "occupancies must carry one entry per compute layer "
                f"({len(occupancies)} != {len(compute)})"
            )
        return float(
            sum(
                self.layer_energy(
                    l, pe, precision, sparse=sparse, occupancy=occ, batch=batch
                ).total
                for l, occ in zip(compute, occupancies)
            )
        )

    def transfer_energy(self, num_bytes: int) -> float:
        """Energy of moving activations between PEs through unified memory."""
        if num_bytes <= 0:
            return 0.0
        # One write plus one read of the shared DRAM.
        return 2.0 * num_bytes * _DRAM_ENERGY_PER_BYTE

    def idle_energy(self, platform: Platform, busy_pe: str, duration: float) -> float:
        """Idle power burned by the other PEs while ``busy_pe`` runs for ``duration``."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        return float(
            sum(pe.idle_power_w * duration for pe in platform if pe.name != busy_pe)
        )
