"""Roofline latency model for layer execution on a processing element.

The paper profiles per-layer execution times with TensorRT on the GPU and
DLA before running the Network Mapper search.  The reproduction replaces the
measurement with an analytic roofline model: a layer's execution time on a
device is the maximum of its compute time (MACs over sustained throughput at
the chosen precision) and its memory time (weights + activations over the
device's DRAM bandwidth), plus a fixed kernel-launch overhead.

Two execution modes are modelled:

* **dense** — the conventional dense event-frame path (the all-GPU baseline);
  work is the full dense MAC count regardless of how few events are present.
* **sparse** — the E2SF path on devices with sparse kernels; work scales with
  the non-zero activation fraction, at the cost of a per-layer sparse
  bookkeeping overhead (index handling), which is why sparsity only pays off
  when frames are sufficiently empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..nn.layers import LayerSpec
from ..nn.quantization import Precision
from .pe import ProcessingElement

__all__ = ["LatencyEstimate", "LatencyModel"]

# Fraction of peak throughput sustained on real layers (TensorRT typically
# achieves 40-70 % of peak on convolution workloads).
_SUSTAINED_FRACTION = 0.55
# Relative cost of gather/scatter index handling per effective MAC in sparse mode.
_SPARSE_OVERHEAD = 0.5
# Sparse kernels never get faster than this fraction of the dense compute
# time: gather/scatter kernels lose coalescing and tensor-core utilisation,
# so even nearly-empty frames see a bounded speedup.
_MIN_SPARSE_FRACTION = 0.2
# SNN layers carry LIF state updates that TensorRT-style engines do not fuse;
# they run as custom kernels with reduced efficiency.
_SNN_EFFICIENCY = 0.6


@dataclass(frozen=True)
class LatencyEstimate:
    """Breakdown of one layer's estimated execution time on one device."""

    compute_time: float
    memory_time: float
    overhead: float

    @property
    def total(self) -> float:
        """Roofline total: max(compute, memory) + fixed overhead."""
        return max(self.compute_time, self.memory_time) + self.overhead


class LatencyModel:
    """Estimate per-layer execution latency on a processing element."""

    def __init__(
        self,
        sustained_fraction: float = _SUSTAINED_FRACTION,
        sparse_overhead: float = _SPARSE_OVERHEAD,
        snn_efficiency: float = _SNN_EFFICIENCY,
        min_sparse_fraction: float = _MIN_SPARSE_FRACTION,
    ) -> None:
        if not 0 < sustained_fraction <= 1:
            raise ValueError("sustained_fraction must be in (0, 1]")
        if sparse_overhead < 0:
            raise ValueError("sparse_overhead must be non-negative")
        if not 0 < snn_efficiency <= 1:
            raise ValueError("snn_efficiency must be in (0, 1]")
        if not 0 <= min_sparse_fraction <= 1:
            raise ValueError("min_sparse_fraction must be in [0, 1]")
        self.sustained_fraction = sustained_fraction
        self.sparse_overhead = sparse_overhead
        self.snn_efficiency = snn_efficiency
        self.min_sparse_fraction = min_sparse_fraction

    # ------------------------------------------------------------------
    def layer_latency(
        self,
        layer: LayerSpec,
        pe: ProcessingElement,
        precision: Precision,
        sparse: bool = False,
        occupancy: Optional[float] = None,
        batch: int = 1,
    ) -> LatencyEstimate:
        """Estimate the execution time of ``layer`` on ``pe``.

        Parameters
        ----------
        sparse:
            Execute with sparse kernels (requires ``pe.supports_sparse``);
            work scales with the layer's non-zero activation fraction.
        occupancy:
            Override the non-zero activation fraction (``1 - sparsity``); by
            default the layer's ``activation_sparsity`` attribute is used.
            E2SF/DSFA pass the measured occupancy of the merged sparse frame
            for input layers.
        batch:
            Number of inputs processed back to back (DSFA's batched merged
            frames); amortises the kernel launch overhead.
        """
        if not pe.supports_layer(layer):
            raise ValueError(f"{pe.name} cannot execute layer '{layer.name}' (SNN unsupported)")
        if not pe.supports_precision(precision):
            raise ValueError(f"{pe.name} does not support {precision.value}")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if sparse and not pe.supports_sparse:
            sparse = False

        dense_macs = layer.macs * batch
        if occupancy is None:
            occupancy = 1.0 - layer.activation_sparsity
        occupancy = min(max(occupancy, 0.0), 1.0)

        if sparse:
            sparse_fraction = max(
                occupancy * (1.0 + self.sparse_overhead), self.min_sparse_fraction
            )
            work = dense_macs * min(sparse_fraction, 1.0)
        else:
            work = dense_macs

        throughput = pe.effective_throughput(precision) * self.sustained_fraction
        if layer.is_spiking:
            throughput *= self.snn_efficiency
        compute_time = work / throughput

        data_bytes = (
            layer.weight_bytes(precision) + layer.activation_bytes(precision) * batch
        )
        if sparse:
            # Sparse activations move only the non-zero payload plus indices.
            activation = layer.activation_bytes(precision) * batch
            data_bytes = layer.weight_bytes(precision) + activation * occupancy * 1.5
        memory_time = data_bytes / pe.memory_bandwidth

        overhead = pe.kernel_launch_overhead
        return LatencyEstimate(compute_time, memory_time, overhead)

    def network_latency(
        self,
        layers,
        pe: ProcessingElement,
        precision: Precision,
        sparse: bool = False,
        batch: int = 1,
        occupancies=None,
    ) -> float:
        """Serial execution time of a list of layers on one device.

        ``occupancies`` optionally carries one non-zero activation fraction
        per *compute* layer (an occupancy profile, e.g. from
        :meth:`repro.nn.graph.LayerGraph.occupancy_profile`); entries of
        ``None`` fall back to the layer's static ``activation_sparsity``.
        """
        compute = [l for l in layers if l.kind.is_compute]
        if occupancies is None:
            occupancies = [None] * len(compute)
        occupancies = list(occupancies)
        if len(occupancies) != len(compute):
            raise ValueError(
                "occupancies must carry one entry per compute layer "
                f"({len(occupancies)} != {len(compute)})"
            )
        return float(
            sum(
                self.layer_latency(
                    l, pe, precision, sparse=sparse, occupancy=occ, batch=batch
                ).total
                for l, occ in zip(compute, occupancies)
            )
        )
