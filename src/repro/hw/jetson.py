"""Calibrated model of the NVIDIA Jetson Xavier AGX.

The paper evaluates Ev-Edge on the Jetson Xavier AGX: an 8-core Carmel CPU, a
512-core Volta GPU with tensor cores and two NVDLA deep learning
accelerators, all sharing 137 GB/s of LPDDR4x.  The numbers below are derived
from NVIDIA's published peak figures, derated to sustained values:

========  ===========================  ======================================
Device    Peak (published)             Modelled sustained (FP32-equivalent)
========  ===========================  ======================================
GPU       11 FP16 TFLOPS / 22 INT8     1.4e12 MAC/s FP32 base, x2 FP16, x4 INT8
DLA (x2)  5.7 FP16 TFLOPS / 11.4 INT8  0.7e12 MAC/s FP16 base (no FP32)
CPU       8-core Carmel @ 2.26 GHz     1.2e11 MAC/s (NEON), little INT8 gain
========  ===========================  ======================================

The DLA executes only the TensorRT-supported operator set, so spiking (LIF)
layers cannot run there — matching the constraint that makes SNN-heavy
workloads GPU/CPU bound and motivates the Network Mapper.
"""

from __future__ import annotations


from ..nn.quantization import Precision
from .pe import PEType, Platform, ProcessingElement

__all__ = ["jetson_xavier_agx", "jetson_orin_nano", "GPU_NAME", "DLA_NAME", "CPU_NAME"]

GPU_NAME = "gpu"
DLA_NAME = "dla0"
CPU_NAME = "cpu"


def jetson_xavier_agx(num_dlas: int = 1) -> Platform:
    """Build the Jetson Xavier AGX platform model used throughout the paper.

    Parameters
    ----------
    num_dlas:
        Number of DLA instances to expose (the physical board has two; the
        paper's experiments use the DLA as a single additional PE, which is
        the default here).
    """
    if num_dlas < 0:
        raise ValueError("num_dlas must be non-negative")
    gpu = ProcessingElement(
        name=GPU_NAME,
        pe_type=PEType.GPU,
        peak_macs_per_s=1.4e12,
        memory_bandwidth=100e9,
        supported_precisions=(Precision.FP32, Precision.FP16, Precision.INT8),
        supports_snn=True,
        supports_sparse=True,
        kernel_launch_overhead=25e-6,
        active_power_w=20.0,
        idle_power_w=2.0,
        precision_scaling={Precision.FP16: 2.0, Precision.INT8: 4.0},
    )
    cpu = ProcessingElement(
        name=CPU_NAME,
        pe_type=PEType.CPU,
        peak_macs_per_s=1.2e11,
        memory_bandwidth=40e9,
        supported_precisions=(Precision.FP32, Precision.FP16, Precision.INT8),
        supports_snn=True,
        supports_sparse=True,
        kernel_launch_overhead=5e-6,
        active_power_w=10.0,
        idle_power_w=1.5,
        # NEON gives a modest speedup at lower precision, far from the GPU's 4x.
        precision_scaling={Precision.FP16: 1.5, Precision.INT8: 2.0},
    )
    elements = [cpu, gpu]
    for i in range(num_dlas):
        elements.append(
            ProcessingElement(
                name=f"dla{i}",
                pe_type=PEType.DLA,
                peak_macs_per_s=0.7e12,
                memory_bandwidth=60e9,
                # No FP32 path on NVDLA.
                supported_precisions=(Precision.FP16, Precision.INT8),
                supports_snn=False,
                supports_sparse=False,
                kernel_launch_overhead=60e-6,
                active_power_w=8.0,
                idle_power_w=0.8,
                precision_scaling={Precision.FP16: 1.0, Precision.INT8: 2.0},
            )
        )
    return Platform(
        name="jetson-xavier-agx",
        elements=elements,
        unified_memory_bandwidth=137e9,
        transfer_latency=100e-6,
    )


def jetson_orin_nano() -> Platform:
    """A smaller Jetson (Orin Nano class) used for sensitivity studies.

    Roughly 40 % of the Xavier AGX GPU throughput, no DLA, half the memory
    bandwidth — useful for checking that Ev-Edge's benefits persist on a more
    constrained platform.
    """
    gpu = ProcessingElement(
        name=GPU_NAME,
        pe_type=PEType.GPU,
        peak_macs_per_s=0.6e12,
        memory_bandwidth=50e9,
        supported_precisions=(Precision.FP32, Precision.FP16, Precision.INT8),
        supports_snn=True,
        supports_sparse=True,
        kernel_launch_overhead=25e-6,
        active_power_w=10.0,
        idle_power_w=1.0,
        precision_scaling={Precision.FP16: 2.0, Precision.INT8: 4.0},
    )
    cpu = ProcessingElement(
        name=CPU_NAME,
        pe_type=PEType.CPU,
        peak_macs_per_s=3.0e10,
        memory_bandwidth=25e9,
        supports_snn=True,
        supports_sparse=True,
        kernel_launch_overhead=5e-6,
        active_power_w=7.0,
        idle_power_w=1.0,
        precision_scaling={Precision.FP16: 1.5, Precision.INT8: 2.0},
    )
    return Platform(
        name="jetson-orin-nano",
        elements=[cpu, gpu],
        unified_memory_bandwidth=68e9,
        transfer_latency=100e-6,
    )
