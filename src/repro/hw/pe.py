"""Processing element and heterogeneous platform descriptions.

Commodity edge platforms such as the NVIDIA Jetson Xavier AGX combine a CPU,
a GPU and one or more deep learning accelerators (DLAs) behind a shared
(unified) memory.  The paper profiles layer latency on each of these with
TensorRT and power with Tegrastats; the reproduction models each processing
element analytically (see :mod:`repro.hw.jetson` for the calibrated Xavier
AGX numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..nn.layers import LayerSpec
from ..nn.quantization import Precision

__all__ = ["PEType", "ProcessingElement", "Platform"]


class PEType(Enum):
    """Kind of processing element."""

    CPU = "cpu"
    GPU = "gpu"
    DLA = "dla"


@dataclass(frozen=True)
class ProcessingElement:
    """One compute device of a heterogeneous edge platform.

    Attributes
    ----------
    name:
        Unique device name, e.g. ``"gpu"`` or ``"dla0"``.
    pe_type:
        CPU / GPU / DLA.
    peak_macs_per_s:
        Peak multiply-accumulates per second *at FP32 equivalent*; lower
        precisions scale this up via :attr:`Precision.relative_throughput`
        and :attr:`precision_scaling`.
    memory_bandwidth:
        Sustainable bytes/second from the shared DRAM for this device.
    supported_precisions:
        Precisions the device can execute (the Xavier DLA has no FP32 path).
    supports_snn:
        Whether the device can run custom spiking (LIF) ops.  TensorRT DLAs
        only run a fixed operator set, so spiking layers must fall back to
        GPU/CPU.
    supports_sparse:
        Whether sparse (COO / gather-scatter) kernels are available.
    kernel_launch_overhead:
        Fixed per-layer dispatch overhead in seconds.
    active_power_w / idle_power_w:
        Power draw while computing / idling, used by the energy model.
    precision_scaling:
        Extra per-device multiplier on top of the generic precision
        throughput scaling (e.g. the DLA gains less from INT8 than the GPU's
        tensor cores).
    """

    name: str
    pe_type: PEType
    peak_macs_per_s: float
    memory_bandwidth: float
    supported_precisions: Tuple[Precision, ...] = (
        Precision.FP32,
        Precision.FP16,
        Precision.INT8,
    )
    supports_snn: bool = True
    supports_sparse: bool = True
    kernel_launch_overhead: float = 30e-6
    active_power_w: float = 10.0
    idle_power_w: float = 1.0
    precision_scaling: Optional[Dict[Precision, float]] = None

    def __post_init__(self) -> None:
        if self.peak_macs_per_s <= 0:
            raise ValueError("peak_macs_per_s must be positive")
        if self.memory_bandwidth <= 0:
            raise ValueError("memory_bandwidth must be positive")
        if not self.supported_precisions:
            raise ValueError("a processing element must support at least one precision")

    # ------------------------------------------------------------------
    def supports_precision(self, precision: Precision) -> bool:
        """True if the device can execute layers at ``precision``."""
        return precision in self.supported_precisions

    def supports_layer(self, layer: LayerSpec) -> bool:
        """True if the device can execute ``layer`` at all."""
        if layer.is_spiking and not self.supports_snn:
            return False
        return True

    def effective_throughput(self, precision: Precision) -> float:
        """Peak MACs/s at the given precision."""
        if not self.supports_precision(precision):
            raise ValueError(f"{self.name} does not support {precision.value}")
        scale = precision.relative_throughput
        if self.precision_scaling and precision in self.precision_scaling:
            scale = self.precision_scaling[precision]
        return self.peak_macs_per_s * scale

    def lowest_supported_precision(self) -> Precision:
        """The smallest-bit-width precision the device supports."""
        return min(self.supported_precisions, key=lambda p: p.bits)

    def highest_supported_precision(self) -> Precision:
        """The largest-bit-width precision the device supports."""
        return max(self.supported_precisions, key=lambda p: p.bits)


class Platform:
    """A heterogeneous edge platform: a set of PEs behind unified memory.

    Parameters
    ----------
    name:
        Platform name (e.g. ``"jetson-xavier-agx"``).
    elements:
        The processing elements.
    unified_memory_bandwidth:
        Bandwidth of the shared DRAM in bytes/second; inter-PE transfers go
        through it (one write + one read).
    transfer_latency:
        Fixed software/driver latency per inter-PE transfer in seconds.
    """

    def __init__(
        self,
        name: str,
        elements: Sequence[ProcessingElement],
        unified_memory_bandwidth: float = 137e9,
        transfer_latency: float = 100e-6,
    ) -> None:
        if not elements:
            raise ValueError("a platform needs at least one processing element")
        names = [pe.name for pe in elements]
        if len(set(names)) != len(names):
            raise ValueError("processing element names must be unique")
        if unified_memory_bandwidth <= 0:
            raise ValueError("unified_memory_bandwidth must be positive")
        self.name = name
        self.elements = list(elements)
        self.unified_memory_bandwidth = unified_memory_bandwidth
        self.transfer_latency = transfer_latency
        self._by_name = {pe.name: pe for pe in self.elements}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def pe(self, name: str) -> ProcessingElement:
        """Look up a processing element by name."""
        if name not in self._by_name:
            raise KeyError(f"unknown processing element '{name}'")
        return self._by_name[name]

    @property
    def pe_names(self) -> List[str]:
        """Names of all processing elements."""
        return [pe.name for pe in self.elements]

    def pes_of_type(self, pe_type: PEType) -> List[ProcessingElement]:
        """All PEs of a given type."""
        return [pe for pe in self.elements if pe.pe_type == pe_type]

    def gpu(self) -> ProcessingElement:
        """The first GPU (edge platforms have exactly one)."""
        gpus = self.pes_of_type(PEType.GPU)
        if not gpus:
            raise RuntimeError(f"platform {self.name} has no GPU")
        return gpus[0]

    def candidates_for(self, layer: LayerSpec) -> List[ProcessingElement]:
        """PEs that can execute ``layer``."""
        return [pe for pe in self.elements if pe.supports_layer(layer)]

    def transfer_time(self, num_bytes: int, src: str, dst: str) -> float:
        """Time to move ``num_bytes`` of activations from PE ``src`` to ``dst``.

        Same-device transfers are free.  Cross-device transfers go through
        unified memory (write + read) plus a fixed synchronisation latency —
        the approximation the paper uses since there is "no explicit method
        to measure communication times between layers".
        """
        if src == dst:
            return 0.0
        if src not in self._by_name or dst not in self._by_name:
            raise KeyError("unknown processing element in transfer")
        if num_bytes <= 0:
            return self.transfer_latency
        return self.transfer_latency + 2.0 * num_bytes / self.unified_memory_bandwidth

    def __repr__(self) -> str:
        return f"Platform(name={self.name!r}, elements={self.pe_names})"
