"""Heterogeneous edge platform substrate (Jetson Xavier AGX model)."""

from .energy import EnergyEstimate, EnergyModel
from .jetson import CPU_NAME, DLA_NAME, GPU_NAME, jetson_orin_nano, jetson_xavier_agx
from .latency import LatencyEstimate, LatencyModel
from .pe import PEType, Platform, ProcessingElement
from .profiler import PlatformProfiler, ProfileEntry, ProfileTable

__all__ = [
    "PEType",
    "ProcessingElement",
    "Platform",
    "jetson_xavier_agx",
    "jetson_orin_nano",
    "GPU_NAME",
    "DLA_NAME",
    "CPU_NAME",
    "LatencyModel",
    "LatencyEstimate",
    "EnergyModel",
    "EnergyEstimate",
    "PlatformProfiler",
    "ProfileTable",
    "ProfileEntry",
]
