"""Offline profiling tables for the Network Mapper.

"The individual execution time for each layer and the communication time
between layers are measured on the hardware platform and recorded before the
search process begins" (paper Section 4.3.2).  :class:`PlatformProfiler`
produces exactly those tables from the analytic latency/energy models:

* per (layer, device, precision) execution latency and energy, and
* per (producer, consumer, device pair, precision) communication time.

The Network Mapper, the round-robin baselines and the runtime executor all
consume :class:`ProfileTable` rather than calling the models directly, so a
user with access to a physical Jetson could drop in measured numbers without
touching the search code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..nn.graph import MultiTaskGraph
from ..nn.layers import LayerSpec
from ..nn.quantization import Precision
from .energy import EnergyModel
from .latency import LatencyModel
from .pe import Platform

__all__ = ["ProfileEntry", "ProfileTable", "PlatformProfiler"]


@dataclass(frozen=True)
class ProfileEntry:
    """Latency/energy of one layer on one device at one precision."""

    latency: float
    energy: float


class ProfileTable:
    """Lookup tables produced by :class:`PlatformProfiler`."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._entries: Dict[Tuple[str, str, Precision, bool], ProfileEntry] = {}

    # ------------------------------------------------------------------
    def record(
        self,
        node: str,
        pe_name: str,
        precision: Precision,
        sparse: bool,
        entry: ProfileEntry,
    ) -> None:
        """Store one profiled data point."""
        self._entries[(node, pe_name, precision, sparse)] = entry

    def lookup(
        self, node: str, pe_name: str, precision: Precision, sparse: bool = False
    ) -> ProfileEntry:
        """Retrieve a profiled data point (raises ``KeyError`` if absent)."""
        return self._entries[(node, pe_name, precision, sparse)]

    def has(self, node: str, pe_name: str, precision: Precision, sparse: bool = False) -> bool:
        """True if the combination was profiled (i.e. is executable)."""
        return (node, pe_name, precision, sparse) in self._entries

    def options(self, node: str) -> List[Tuple[str, Precision]]:
        """All (device, precision) pairs profiled for a node (dense or sparse)."""
        seen = []
        for (n, pe_name, precision, _sparse) in self._entries:
            if n == node and (pe_name, precision) not in seen:
                seen.append((pe_name, precision))
        return seen

    def best_latency(self, node: str) -> float:
        """Smallest profiled latency for a node across devices/precisions."""
        values = [e.latency for (n, *_), e in self._entries.items() if n == node]
        if not values:
            raise KeyError(f"node '{node}' was not profiled")
        return min(values)

    def __len__(self) -> int:
        return len(self._entries)


class PlatformProfiler:
    """Profile every layer of a multi-task graph on every capable device."""

    def __init__(
        self,
        platform: Platform,
        latency_model: Optional[LatencyModel] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.platform = platform
        self.latency_model = latency_model or LatencyModel()
        self.energy_model = energy_model or EnergyModel(self.latency_model)

    def profile(
        self,
        graph: MultiTaskGraph,
        sparse_modes: Iterable[bool] = (False, True),
        occupancy: Optional[float] = None,
    ) -> ProfileTable:
        """Build the full profile table for ``graph`` on the platform.

        ``occupancy`` optionally overrides the non-zero activation fraction
        used for the sparse-mode entries (e.g. the measured density of the
        incoming merged sparse frames).
        """
        table = ProfileTable(self.platform)
        for node in graph.compute_nodes():
            spec = graph.spec(node)
            for pe in self.platform:
                if not pe.supports_layer(spec):
                    continue
                for precision in pe.supported_precisions:
                    for sparse in sparse_modes:
                        if sparse and not pe.supports_sparse:
                            continue
                        latency = self.latency_model.layer_latency(
                            spec, pe, precision, sparse=sparse, occupancy=occupancy
                        ).total
                        energy = self.energy_model.layer_energy(
                            spec, pe, precision, sparse=sparse, occupancy=occupancy
                        ).total
                        table.record(
                            node, pe.name, precision, sparse, ProfileEntry(latency, energy)
                        )
        return table

    def communication_time(
        self, producer: LayerSpec, precision: Precision, src: str, dst: str
    ) -> float:
        """Transfer time of ``producer``'s output activation from ``src`` to ``dst``."""
        return self.platform.transfer_time(producer.output_bytes(precision), src, dst)
