"""Dynamic Sparse Frame Aggregator (DSFA) — paper Section 4.2.

DSFA sits between E2SF and the network: it buffers incoming sparse frames,
greedily packs them into *merge buckets* and dispatches merged frames to the
inference queue, adapting the temporal granularity of the input to both the
event density and the hardware processing rate.

The implementation follows Figure 6 of the paper:

* an event buffer of capacity ``EBufsize`` holds incoming sparse frames,
  partitioned into merge buckets of capacity ``MBsize``;
* an incoming frame joins the earliest ``AVL`` bucket if (i) its delay from
  the bucket's earliest frame is within ``MtTh`` and (ii) the relative change
  in spatial density versus the bucket's merged density is within ``MdTh``;
  otherwise the bucket is marked ``FULL`` and the next bucket is tried
  (``cBatch`` mode always opens a new bucket);
* when the buffer occupancy exceeds ``EBufsize`` — or the hardware reports
  itself idle — the buckets are combined according to ``cMode``
  (``cAdd`` / ``cAverage`` / ``cBatch``) and forwarded to the inference
  queue, evicting the oldest pending entry if the queue is full.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, List, Optional

import numpy as np

from ..frames.sparse import SparseFrame, SparseFrameBatch
from ..frames.stack import FrameStack

__all__ = [
    "MergeMode",
    "BucketStatus",
    "MergeBucket",
    "StackMergeBucket",
    "DSFAConfig",
    "DynamicSparseFrameAggregator",
]


class MergeMode(Enum):
    """How the frames inside one merge bucket are combined (``cMode``)."""

    ADD = "cAdd"
    AVERAGE = "cAverage"
    BATCH = "cBatch"


class BucketStatus(Enum):
    """Whether a merge bucket can still accept frames."""

    AVAILABLE = "AVL"
    FULL = "FULL"


@dataclass
class MergeBucket:
    """One merge bucket: a bounded group of sparse frames merged together."""

    capacity: int
    frames: List[SparseFrame] = field(default_factory=list)
    status: BucketStatus = BucketStatus.AVAILABLE
    # Incrementally maintained cAdd merge of ``frames``, used for the
    # density queries of the placement test.  Merging is associative on the
    # *support* (the active-site union), so the incremental merge has
    # bit-identical density to re-merging the whole list — but each
    # ``accepts`` probe stops paying an O(bucket) re-merge.  ``merge()``
    # still combines the full list so dispatched values keep their exact
    # summation order.
    _merged: Optional[SparseFrame] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("bucket capacity must be >= 1")

    @property
    def occupancy(self) -> int:
        """Number of frames currently in the bucket."""
        return len(self.frames)

    @property
    def is_full(self) -> bool:
        """True when no further frame may be added."""
        return self.status is BucketStatus.FULL or self.occupancy >= self.capacity

    @property
    def earliest_time(self) -> float:
        """Timestamp of the earliest frame (``Time(Evf_1)``), inf when empty."""
        if not self.frames:
            return float("inf")
        return min(f.t_start for f in self.frames)

    def _merged_support(self) -> SparseFrame:
        """The (cached) cAdd merge of the bucket, for density queries."""
        if self._merged is None:
            self._merged = SparseFrame.add(self.frames)
        return self._merged

    @property
    def merged_density(self) -> float:
        """Spatial density of the bucket's frames merged with cAdd (``MBmerged``)."""
        if not self.frames:
            return 0.0
        return self._merged_support().density

    def accepts(self, frame: SparseFrame, max_delay: float, max_density_change: float) -> bool:
        """Greedy placement test: capacity, time-delay and density conditions."""
        if self.is_full:
            return False
        if not self.frames:
            return True
        if frame.t_start - self.earliest_time > max_delay:
            return False
        if self._merged_support().density_change(frame) > max_density_change:
            return False
        return True

    def add(self, frame: SparseFrame) -> None:
        """Insert ``frame`` (the caller must have checked :meth:`accepts`)."""
        if self.is_full:
            raise RuntimeError("cannot add a frame to a FULL merge bucket")
        self.frames.append(frame)
        if self._merged is not None:
            self._merged = SparseFrame.add([self._merged, frame])
        if self.occupancy >= self.capacity:
            self.seal()

    def seal(self) -> None:
        """Mark the bucket FULL and release its merged-support cache.

        A FULL bucket is never density-probed again — it only waits for
        dispatch — so the incremental cAdd support is dead weight from here.
        """
        self.status = BucketStatus.FULL
        self._merged = None

    def merge(self, mode: MergeMode) -> SparseFrame:
        """Combine the bucket's frames into one sparse frame per ``mode``.

        ``cBatch`` buckets hold a single frame by construction, so the merge
        is the identity for them.
        """
        if not self.frames:
            raise RuntimeError("cannot merge an empty bucket")
        if mode is MergeMode.ADD or mode is MergeMode.BATCH:
            return FrameStack.segment_add(self.frames)
        return FrameStack.segment_average(self.frames)


class StackMergeBucket:
    """A merge bucket backed by an index range into a :class:`FrameStack`.

    The stack-transport data plane pushes frames by ``(stack, index)``
    reference, so the bucket never materialises frame objects: it holds the
    contiguous range ``[start, stop)`` of stack indices placed into it.
    Contiguity is a structural invariant of the placement loop, not an
    assumption — once a bucket rejects a frame it is marked ``FULL``
    forever, so every placement lands in the *first* non-``FULL`` bucket
    and each bucket accumulates a contiguous run of pushed indices, with
    buckets in list order partitioning a contiguous range of the stack.

    Density probes read the stack's cached :meth:`FrameStack.densities`
    column and compute the merged-support density as the unique-key count
    of the range's flat pixel keys — bit-identical to the incremental
    cAdd merge of :class:`MergeBucket` (density depends only on the active-
    site union), without building any intermediate frame.
    """

    __slots__ = (
        "capacity",
        "stack",
        "start",
        "stop",
        "status",
        "_density",
        "_earliest",
    )

    def __init__(self, capacity: int, stack: FrameStack, start: int) -> None:
        if capacity < 1:
            raise ValueError("bucket capacity must be >= 1")
        self.capacity = capacity
        self.stack = stack
        self.start = start
        self.stop = start
        self.status = BucketStatus.AVAILABLE
        self._density: Optional[float] = None
        # Running min of the bucket's t_starts (the paper's Time(Evf_1)),
        # maintained in O(1) per add so placement probes never slice the
        # stack's time column.
        self._earliest = float("inf")

    @property
    def occupancy(self) -> int:
        """Number of frames currently in the bucket."""
        return self.stop - self.start

    @property
    def is_full(self) -> bool:
        """True when no further frame may be added."""
        return self.status is BucketStatus.FULL or self.occupancy >= self.capacity

    @property
    def earliest_time(self) -> float:
        """Timestamp of the earliest frame (``Time(Evf_1)``), inf when empty."""
        return self._earliest

    @property
    def frames(self) -> List[SparseFrame]:
        """The bucket's frames, materialised as zero-copy stack views."""
        return [self.stack.frame(i) for i in range(self.start, self.stop)]

    @property
    def merged_density(self) -> float:
        """Spatial density of the bucket's frames merged with cAdd (``MBmerged``)."""
        if self.stop == self.start:
            return 0.0
        if self._density is None:
            lo = int(self.stack.offsets[self.start])
            hi = int(self.stack.offsets[self.stop])
            # Cardinality of a key set equals ``np.unique(...).size`` and
            # the int64 -> python int round trip is exact, so the density
            # is bit-identical to the cAdd-merge's.  The set is transient:
            # a bucket holds at most ``capacity`` sparse frames, so
            # rebuilding it per probe beats both an ``np.unique`` dispatch
            # and retaining a per-bucket support cache across the fleet.
            support = set(self.stack.flat_buffer()[lo:hi].tolist())
            self._density = len(support) / float(
                self.stack.height * self.stack.width
            )
        return self._density

    def accepts_index(
        self,
        stack: FrameStack,
        index: int,
        max_delay: float,
        max_density_change: float,
        t_start: Optional[float] = None,
        density: Optional[float] = None,
    ) -> bool:
        """Greedy placement test for frame ``index`` of ``stack``.

        Same three conditions as :meth:`MergeBucket.accepts`; a bucket
        additionally never accepts indices of a *different* stack (the
        caller then marks it FULL, exactly as for a failed condition).
        ``t_start`` / ``density`` accept the frame's precomputed scalars —
        the placement loop probes one frame against many buckets and
        extracts them from the stack columns once, not per probe.
        """
        if stack is not self.stack or self.is_full:
            return False
        if self.stop == self.start:
            return True
        if t_start is None:
            t_start = stack.t_starts_list()[index]
        if t_start - self._earliest > max_delay:
            return False
        d1 = self.merged_density
        d2 = stack.frame_density(index) if density is None else density
        bottom = d1 if d1 > d2 else d2
        if bottom > 0 and abs(d1 - d2) / bottom > max_density_change:
            return False
        return True

    def add_index(self, index: int) -> None:
        """Append frame ``index`` (the caller must have checked :meth:`accepts_index`)."""
        if self.is_full:
            raise RuntimeError("cannot add a frame to a FULL merge bucket")
        if index != self.stop:
            raise RuntimeError(
                f"stack bucket holds [{self.start}, {self.stop}); "
                f"index {index} breaks contiguity"
            )
        self.stop = index + 1
        self._density = None
        t = self.stack.t_starts_list()[index]
        if t < self._earliest:
            self._earliest = t
        if self.occupancy >= self.capacity:
            self.seal()

    def seal(self) -> None:
        """Mark the bucket FULL; it is never density-probed again and only
        waits for dispatch."""
        self.status = BucketStatus.FULL

    def merge(self, mode: MergeMode) -> SparseFrame:
        """Combine the bucket's frames into one sparse frame per ``mode``."""
        if self.stop == self.start:
            raise RuntimeError("cannot merge an empty bucket")
        merged = self.stack.merge_ranges(
            [(self.start, self.stop)], average=mode is MergeMode.AVERAGE
        )
        return merged.frame(0)


@dataclass(frozen=True)
class DSFAConfig:
    """Tunable parameters of DSFA (all named as in the paper).

    Attributes
    ----------
    event_buffer_size:
        ``EBufsize`` — total frames buffered before a forced dispatch.
    merge_bucket_size:
        ``MBsize`` — frames per merge bucket.
    max_time_delay:
        ``MtTh`` — maximum delay (seconds) between an incoming frame and the
        earliest frame of the bucket it joins.
    max_density_change:
        ``MdTh`` — maximum relative change in spatial density.
    merge_mode:
        ``cMode`` — cAdd / cAverage / cBatch.
    inference_queue_depth:
        Depth of the per-task inference queue; the oldest entry is discarded
        when a new merged frame arrives at a full queue.
    """

    event_buffer_size: int = 8
    merge_bucket_size: int = 4
    max_time_delay: float = 0.05
    max_density_change: float = 0.5
    merge_mode: MergeMode = MergeMode.ADD
    inference_queue_depth: int = 4

    def __post_init__(self) -> None:
        if self.event_buffer_size < 1:
            raise ValueError("event_buffer_size must be >= 1")
        if self.merge_bucket_size < 1:
            raise ValueError("merge_bucket_size must be >= 1")
        if self.merge_bucket_size > self.event_buffer_size:
            raise ValueError("merge_bucket_size cannot exceed event_buffer_size")
        if self.max_time_delay <= 0:
            raise ValueError("max_time_delay must be positive")
        if self.max_density_change < 0:
            raise ValueError("max_density_change must be non-negative")
        if self.inference_queue_depth < 1:
            raise ValueError("inference_queue_depth must be >= 1")


class DynamicSparseFrameAggregator:
    """Runtime aggregator of sparse frames (one instance per task)."""

    def __init__(self, config: Optional[DSFAConfig] = None) -> None:
        self.config = config or DSFAConfig()
        self._buckets: List[MergeBucket] = []
        self._inference_queue: Deque[SparseFrameBatch] = deque(
            maxlen=self.config.inference_queue_depth
        )
        self.discarded_frames = 0
        self.dispatched_batches = 0
        # Running buffered-frame count: every _place adds exactly one frame
        # and _dispatch drains every bucket, so the counter is O(1) per push
        # instead of re-summing all bucket occupancies.
        self._buffered_frames = 0

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def buffer_occupancy(self) -> int:
        """Total frames currently buffered across all merge buckets."""
        return self._buffered_frames

    @property
    def num_buckets(self) -> int:
        """Number of (non-dispatched) merge buckets."""
        return len(self._buckets)

    @property
    def inference_queue(self) -> List[SparseFrameBatch]:
        """Snapshot of the pending merged-frame batches."""
        return list(self._inference_queue)

    # ------------------------------------------------------------------
    # main entry points
    # ------------------------------------------------------------------
    def push(self, frame: SparseFrame, hardware_available: bool = False) -> Optional[SparseFrameBatch]:
        """Offer a newly generated sparse frame to the aggregator.

        Returns a dispatched :class:`SparseFrameBatch` if this push caused a
        dispatch (buffer overflow or ``hardware_available``), else ``None``.
        """
        self._place(frame)
        return self._maybe_dispatch(hardware_available)

    def push_index(
        self, stack: FrameStack, index: int, hardware_available: bool = False
    ) -> Optional[SparseFrameBatch]:
        """Offer frame ``index`` of ``stack`` without materialising it.

        The stack-transport twin of :meth:`push`: placement probes read the
        stack's density/time columns, buckets record index ranges
        (:class:`StackMergeBucket`) and dispatch merges every bucket in one
        :meth:`FrameStack.merge_ranges` pass over the parent buffers.
        Dispatch decisions, accounting and merged values are bit-identical
        to pushing ``stack.frame(index)`` through :meth:`push`.
        """
        self._place_index(stack, index)
        return self._maybe_dispatch(hardware_available)

    def flush(self) -> Optional[SparseFrameBatch]:
        """Force-dispatch all buffered frames (end of a sequence)."""
        if self.num_buckets == 0:
            return None
        return self._dispatch()

    def pop_batch(self) -> Optional[SparseFrameBatch]:
        """Take the oldest pending batch from the inference queue."""
        if not self._inference_queue:
            return None
        return self._inference_queue.popleft()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _maybe_dispatch(self, hardware_available: bool) -> Optional[SparseFrameBatch]:
        if self.buffer_occupancy >= self.config.event_buffer_size:
            return self._dispatch()
        if hardware_available and self.num_buckets > 0:
            # Dispatch whatever is ready to keep the hardware busy.
            return self._dispatch()
        return None

    def _bucket_factory(self, capacity: int) -> MergeBucket:
        """Bucket constructor hook for the per-frame path (oracle subclasses override)."""
        return MergeBucket(capacity=capacity)

    def _place(self, frame: SparseFrame) -> None:
        cfg = self.config
        self._buffered_frames += 1
        if cfg.merge_mode is MergeMode.BATCH:
            # cBatch: every generated frame goes into a fresh bucket.
            bucket = self._bucket_factory(1)
            bucket.add(frame)
            self._buckets.append(bucket)
            return
        for bucket in self._buckets:
            if bucket.accepts(frame, cfg.max_time_delay, cfg.max_density_change):
                bucket.add(frame)
                return
            if not bucket.is_full:
                # Condition failed: the paper marks the bucket FULL and moves on.
                bucket.seal()
        bucket = self._bucket_factory(cfg.merge_bucket_size)
        bucket.add(frame)
        self._buckets.append(bucket)

    def _place_index(self, stack: FrameStack, index: int) -> None:
        cfg = self.config
        self._buffered_frames += 1
        if cfg.merge_mode is MergeMode.BATCH:
            # cBatch: every generated frame goes into a fresh bucket.
            bucket = StackMergeBucket(1, stack, index)
            bucket.add_index(index)
            self._buckets.append(bucket)
            return
        # Only the tail bucket can ever be open: a bucket that rejects a
        # frame is sealed on the spot and a full bucket stays FULL forever,
        # so every bucket before the last was closed before the last was
        # created.  Probing just the tail is therefore placement-identical
        # to the paper's full scan (every earlier probe would return False),
        # without the O(buckets) pass per push the oracle `_place` keeps.
        if self._buckets:
            bucket = self._buckets[-1]
            if isinstance(bucket, StackMergeBucket) and bucket.accepts_index(
                stack,
                index,
                cfg.max_time_delay,
                cfg.max_density_change,
                t_start=stack.t_starts_list()[index],
                density=stack.densities_list()[index],
            ):
                bucket.add_index(index)
                return
            if not bucket.is_full:
                # Condition failed: the paper marks the bucket FULL and moves on.
                bucket.seal()
        bucket = StackMergeBucket(cfg.merge_bucket_size, stack, index)
        bucket.add_index(index)
        self._buckets.append(bucket)

    def _merge_buckets(self) -> SparseFrameBatch:
        """Merge all buffered buckets into one dispatchable batch.

        Stack-backed buckets sharing one parent stack merge directly as
        index ranges (:meth:`FrameStack.merge_ranges` — the ranges are
        adjacent by the placement invariant, so the merge reads one parent
        slice) and yield a stack-backed batch; any other mix falls back to
        the segmented :meth:`FrameStack.merge_groups` pass over
        materialised frames.  Both produce bit-identical merged values.
        """
        buckets = [bucket for bucket in self._buckets if bucket.occupancy]
        average = self.config.merge_mode is MergeMode.AVERAGE
        if not buckets:
            return SparseFrameBatch([])
        stack = getattr(buckets[0], "stack", None)
        if stack is not None and all(
            isinstance(bucket, StackMergeBucket) and bucket.stack is stack
            for bucket in buckets
        ):
            merged_stack = stack.merge_ranges(
                [(bucket.start, bucket.stop) for bucket in buckets], average=average
            )
            return SparseFrameBatch.from_stack(merged_stack)
        merged_stack = FrameStack.merge_groups(
            [bucket.frames for bucket in buckets], average=average
        )
        return SparseFrameBatch(merged_stack.frames())

    def _finish_dispatch(self, batch: SparseFrameBatch) -> SparseFrameBatch:
        if len(self._inference_queue) == self._inference_queue.maxlen:
            # The earliest pending batch is discarded (stale data).
            dropped = self._inference_queue.popleft()
            self.discarded_frames += len(dropped)
        self._inference_queue.append(batch)
        self._buckets = []
        self._buffered_frames = 0
        self.dispatched_batches += 1
        return batch

    def _dispatch(self) -> SparseFrameBatch:
        # All buckets of the dispatch merge in one segmented grouped-reduce
        # pass (bit-identical to per-bucket MergeBucket.merge calls).
        return self._finish_dispatch(self._merge_buckets())

    # ------------------------------------------------------------------
    def merge_statistics(self) -> dict:
        """Summary counters for the experiment harnesses."""
        return {
            "dispatched_batches": self.dispatched_batches,
            "discarded_frames": self.discarded_frames,
            "pending_batches": len(self._inference_queue),
            "buffered_frames": self.buffer_occupancy,
        }
