"""Dynamic Sparse Frame Aggregator (DSFA) — paper Section 4.2.

DSFA sits between E2SF and the network: it buffers incoming sparse frames,
greedily packs them into *merge buckets* and dispatches merged frames to the
inference queue, adapting the temporal granularity of the input to both the
event density and the hardware processing rate.

The implementation follows Figure 6 of the paper:

* an event buffer of capacity ``EBufsize`` holds incoming sparse frames,
  partitioned into merge buckets of capacity ``MBsize``;
* an incoming frame joins the earliest ``AVL`` bucket if (i) its delay from
  the bucket's earliest frame is within ``MtTh`` and (ii) the relative change
  in spatial density versus the bucket's merged density is within ``MdTh``;
  otherwise the bucket is marked ``FULL`` and the next bucket is tried
  (``cBatch`` mode always opens a new bucket);
* when the buffer occupancy exceeds ``EBufsize`` — or the hardware reports
  itself idle — the buckets are combined according to ``cMode``
  (``cAdd`` / ``cAverage`` / ``cBatch``) and forwarded to the inference
  queue, evicting the oldest pending entry if the queue is full.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, List, Optional

from ..frames.sparse import SparseFrame, SparseFrameBatch
from ..frames.stack import FrameStack

__all__ = ["MergeMode", "BucketStatus", "MergeBucket", "DSFAConfig", "DynamicSparseFrameAggregator"]


class MergeMode(Enum):
    """How the frames inside one merge bucket are combined (``cMode``)."""

    ADD = "cAdd"
    AVERAGE = "cAverage"
    BATCH = "cBatch"


class BucketStatus(Enum):
    """Whether a merge bucket can still accept frames."""

    AVAILABLE = "AVL"
    FULL = "FULL"


@dataclass
class MergeBucket:
    """One merge bucket: a bounded group of sparse frames merged together."""

    capacity: int
    frames: List[SparseFrame] = field(default_factory=list)
    status: BucketStatus = BucketStatus.AVAILABLE
    # Incrementally maintained cAdd merge of ``frames``, used for the
    # density queries of the placement test.  Merging is associative on the
    # *support* (the active-site union), so the incremental merge has
    # bit-identical density to re-merging the whole list — but each
    # ``accepts`` probe stops paying an O(bucket) re-merge.  ``merge()``
    # still combines the full list so dispatched values keep their exact
    # summation order.
    _merged: Optional[SparseFrame] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("bucket capacity must be >= 1")

    @property
    def occupancy(self) -> int:
        """Number of frames currently in the bucket."""
        return len(self.frames)

    @property
    def is_full(self) -> bool:
        """True when no further frame may be added."""
        return self.status is BucketStatus.FULL or self.occupancy >= self.capacity

    @property
    def earliest_time(self) -> float:
        """Timestamp of the earliest frame (``Time(Evf_1)``), inf when empty."""
        if not self.frames:
            return float("inf")
        return min(f.t_start for f in self.frames)

    def _merged_support(self) -> SparseFrame:
        """The (cached) cAdd merge of the bucket, for density queries."""
        if self._merged is None:
            self._merged = SparseFrame.add(self.frames)
        return self._merged

    @property
    def merged_density(self) -> float:
        """Spatial density of the bucket's frames merged with cAdd (``MBmerged``)."""
        if not self.frames:
            return 0.0
        return self._merged_support().density

    def accepts(self, frame: SparseFrame, max_delay: float, max_density_change: float) -> bool:
        """Greedy placement test: capacity, time-delay and density conditions."""
        if self.is_full:
            return False
        if not self.frames:
            return True
        if frame.t_start - self.earliest_time > max_delay:
            return False
        if self._merged_support().density_change(frame) > max_density_change:
            return False
        return True

    def add(self, frame: SparseFrame) -> None:
        """Insert ``frame`` (the caller must have checked :meth:`accepts`)."""
        if self.is_full:
            raise RuntimeError("cannot add a frame to a FULL merge bucket")
        self.frames.append(frame)
        if self._merged is not None:
            self._merged = SparseFrame.add([self._merged, frame])
        if self.occupancy >= self.capacity:
            self.status = BucketStatus.FULL

    def merge(self, mode: MergeMode) -> SparseFrame:
        """Combine the bucket's frames into one sparse frame per ``mode``.

        ``cBatch`` buckets hold a single frame by construction, so the merge
        is the identity for them.
        """
        if not self.frames:
            raise RuntimeError("cannot merge an empty bucket")
        if mode is MergeMode.ADD or mode is MergeMode.BATCH:
            return FrameStack.segment_add(self.frames)
        return FrameStack.segment_average(self.frames)


@dataclass(frozen=True)
class DSFAConfig:
    """Tunable parameters of DSFA (all named as in the paper).

    Attributes
    ----------
    event_buffer_size:
        ``EBufsize`` — total frames buffered before a forced dispatch.
    merge_bucket_size:
        ``MBsize`` — frames per merge bucket.
    max_time_delay:
        ``MtTh`` — maximum delay (seconds) between an incoming frame and the
        earliest frame of the bucket it joins.
    max_density_change:
        ``MdTh`` — maximum relative change in spatial density.
    merge_mode:
        ``cMode`` — cAdd / cAverage / cBatch.
    inference_queue_depth:
        Depth of the per-task inference queue; the oldest entry is discarded
        when a new merged frame arrives at a full queue.
    """

    event_buffer_size: int = 8
    merge_bucket_size: int = 4
    max_time_delay: float = 0.05
    max_density_change: float = 0.5
    merge_mode: MergeMode = MergeMode.ADD
    inference_queue_depth: int = 4

    def __post_init__(self) -> None:
        if self.event_buffer_size < 1:
            raise ValueError("event_buffer_size must be >= 1")
        if self.merge_bucket_size < 1:
            raise ValueError("merge_bucket_size must be >= 1")
        if self.merge_bucket_size > self.event_buffer_size:
            raise ValueError("merge_bucket_size cannot exceed event_buffer_size")
        if self.max_time_delay <= 0:
            raise ValueError("max_time_delay must be positive")
        if self.max_density_change < 0:
            raise ValueError("max_density_change must be non-negative")
        if self.inference_queue_depth < 1:
            raise ValueError("inference_queue_depth must be >= 1")


class DynamicSparseFrameAggregator:
    """Runtime aggregator of sparse frames (one instance per task)."""

    def __init__(self, config: Optional[DSFAConfig] = None) -> None:
        self.config = config or DSFAConfig()
        self._buckets: List[MergeBucket] = []
        self._inference_queue: Deque[SparseFrameBatch] = deque(
            maxlen=self.config.inference_queue_depth
        )
        self.discarded_frames = 0
        self.dispatched_batches = 0
        # Running buffered-frame count: every _place adds exactly one frame
        # and _dispatch drains every bucket, so the counter is O(1) per push
        # instead of re-summing all bucket occupancies.
        self._buffered_frames = 0

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def buffer_occupancy(self) -> int:
        """Total frames currently buffered across all merge buckets."""
        return self._buffered_frames

    @property
    def num_buckets(self) -> int:
        """Number of (non-dispatched) merge buckets."""
        return len(self._buckets)

    @property
    def inference_queue(self) -> List[SparseFrameBatch]:
        """Snapshot of the pending merged-frame batches."""
        return list(self._inference_queue)

    # ------------------------------------------------------------------
    # main entry points
    # ------------------------------------------------------------------
    def push(self, frame: SparseFrame, hardware_available: bool = False) -> Optional[SparseFrameBatch]:
        """Offer a newly generated sparse frame to the aggregator.

        Returns a dispatched :class:`SparseFrameBatch` if this push caused a
        dispatch (buffer overflow or ``hardware_available``), else ``None``.
        """
        self._place(frame)
        if self.buffer_occupancy >= self.config.event_buffer_size:
            return self._dispatch()
        if hardware_available and self.num_buckets > 0:
            # Dispatch whatever is ready to keep the hardware busy.
            return self._dispatch()
        return None

    def flush(self) -> Optional[SparseFrameBatch]:
        """Force-dispatch all buffered frames (end of a sequence)."""
        if self.num_buckets == 0:
            return None
        return self._dispatch()

    def pop_batch(self) -> Optional[SparseFrameBatch]:
        """Take the oldest pending batch from the inference queue."""
        if not self._inference_queue:
            return None
        return self._inference_queue.popleft()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _place(self, frame: SparseFrame) -> None:
        cfg = self.config
        self._buffered_frames += 1
        if cfg.merge_mode is MergeMode.BATCH:
            # cBatch: every generated frame goes into a fresh bucket.
            bucket = MergeBucket(capacity=1)
            bucket.add(frame)
            self._buckets.append(bucket)
            return
        for bucket in self._buckets:
            if bucket.accepts(frame, cfg.max_time_delay, cfg.max_density_change):
                bucket.add(frame)
                return
            if not bucket.is_full:
                # Condition failed: the paper marks the bucket FULL and moves on.
                bucket.status = BucketStatus.FULL
        bucket = MergeBucket(capacity=cfg.merge_bucket_size)
        bucket.add(frame)
        self._buckets.append(bucket)

    def _dispatch(self) -> SparseFrameBatch:
        # All buckets of the dispatch merge in one segmented grouped-reduce
        # pass (bit-identical to per-bucket MergeBucket.merge calls).
        groups = [bucket.frames for bucket in self._buckets if bucket.frames]
        if groups:
            merged_stack = FrameStack.merge_groups(
                groups, average=self.config.merge_mode is MergeMode.AVERAGE
            )
            merged = merged_stack.frames()
        else:
            merged = []
        batch = SparseFrameBatch(merged)
        if len(self._inference_queue) == self._inference_queue.maxlen:
            # The earliest pending batch is discarded (stale data).
            dropped = self._inference_queue.popleft()
            self.discarded_frames += len(dropped)
        self._inference_queue.append(batch)
        self._buckets = []
        self._buffered_frames = 0
        self.dispatched_batches += 1
        return batch

    # ------------------------------------------------------------------
    def merge_statistics(self) -> dict:
        """Summary counters for the experiment harnesses."""
        return {
            "dispatched_batches": self.dispatched_batches,
            "discarded_frames": self.discarded_frames,
            "pending_batches": len(self._inference_queue),
            "buffered_frames": self.buffer_occupancy,
        }
