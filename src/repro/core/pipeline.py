"""Integrated Ev-Edge inference pipeline (paper Figure 4).

:class:`EvEdgePipeline` stitches the three optimizations together and
simulates the processing of a whole recorded sequence on the platform model:

1. E2SF converts each grayscale-frame interval's events into ``nB`` sparse
   frames as they are produced;
2. DSFA (when enabled) buffers and merges those frames, adapting to the
   event density and to whether the accelerator is still busy;
3. each dispatched batch is executed with the configured layer mapping
   (all-GPU for the baseline levels, the Network Mapper's mapping for the
   full configuration), using the measured occupancy of the merged frames to
   scale the sparse execution time.

The simulation is event-driven over frame arrival times, so back-pressure
effects are captured: during event bursts the baseline accumulates a backlog
(raising per-frame latency), which is exactly the behaviour DSFA removes.

The pipeline itself is a thin single-stream client of the shared simulation
kernel (:mod:`repro.runtime.sim`): the sequence becomes a
:class:`~repro.runtime.streams.StreamSource`, the frame/DSFA protocol runs
in a :class:`~repro.runtime.streams.StreamClient`, and execution costs come
from a memoized :class:`~repro.runtime.sim.NetworkCostModel`.  The
multi-stream traffic simulator reuses the same pieces.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..events.datasets import EventSequence
from ..hw.energy import EnergyModel
from ..hw.latency import LatencyModel
from ..hw.pe import Platform
from ..nn.graph import LayerGraph
from ..runtime.sim import (
    InferenceRecord,
    LayerCostTable,
    NetworkCostModel,
    PipelineReport,
    SimulationKernel,
)
from ..runtime.executor import SerialExecutor
from ..runtime.streams import StreamClient, StreamSource
from .config import EvEdgeConfig
from .nmp.candidate import MappingCandidate

__all__ = ["InferenceRecord", "PipelineReport", "EvEdgePipeline"]


class EvEdgePipeline:
    """Simulate the Ev-Edge inference pipeline for one network and sequence."""

    def __init__(
        self,
        network: LayerGraph,
        platform: Platform,
        config: Optional[EvEdgeConfig] = None,
        mapping: Optional[MappingCandidate] = None,
        latency_model: Optional[LatencyModel] = None,
        energy_model: Optional[EnergyModel] = None,
        cost_mode: str = "flat",
        dataplane: str = "stack",
        schedule_mode: str = "lazy",
    ) -> None:
        """``cost_mode`` selects the cost-stack semantics
        (:data:`~repro.runtime.sim.COST_MODES`): ``"flat"`` keeps the
        seed-identical scalar path; ``"profile"`` propagates each input's
        occupancy through the layers (per-layer occupancy profiles).
        ``dataplane`` selects the frame transport
        (:data:`~repro.runtime.streams.DATAPLANES`) and ``schedule_mode``
        the arrival discipline
        (:data:`~repro.runtime.streams.SCHEDULE_MODES` — lazy arrival
        cursors by default, ``"eager"`` for the horizon-wide oracle); every
        mode is report-identical."""
        self.network = network
        self.platform = platform
        self.config = config or EvEdgeConfig()
        self.mapping = mapping
        self.dataplane = dataplane
        self.schedule_mode = schedule_mode
        self.latency_model = latency_model or LatencyModel()
        self.energy_model = energy_model or EnergyModel(self.latency_model)
        self.cost_model = NetworkCostModel(
            network,
            platform,
            config=self.config,
            mapping=mapping,
            table=LayerCostTable(self.latency_model, self.energy_model),
            cost_mode=cost_mode,
        )

    # ------------------------------------------------------------------
    def inference_time_and_energy(
        self, occupancy: float, batch: int
    ) -> Tuple[float, float]:
        """Latency and energy of one network invocation.

        The measured occupancy of the merged input drives the first layer;
        deeper layers use their modelled activation sparsity.  When producer
        and consumer layers sit on different devices a unified-memory
        transfer is added (single-task execution is serial, so transfers are
        simply summed).  Results are memoized per ``(occupancy, batch)``.
        """
        return self.cost_model.inference_cost(occupancy, batch)

    # ------------------------------------------------------------------
    def run(self, sequence: EventSequence, trace: Optional[object] = None) -> PipelineReport:
        """Process ``sequence`` end to end and return the timing report.

        Pass a :class:`~repro.runtime.tracer.KernelTrace` as ``trace`` to
        record the kernel's event timeline alongside the report.
        """
        source = StreamSource(
            name=sequence.name,
            sequence=sequence,
            network=self.network,
            config=self.config,
            mapping=self.mapping,
        )
        kernel = SimulationKernel(trace=trace)
        client = StreamClient(
            source,
            kernel,
            executor=SerialExecutor(kernel),
            cost_model=self.cost_model,
            dataplane=self.dataplane,
            schedule_mode=self.schedule_mode,
        )
        client.prime()
        kernel.run()
        return client.report
