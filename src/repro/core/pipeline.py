"""Integrated Ev-Edge inference pipeline (paper Figure 4).

:class:`EvEdgePipeline` stitches the three optimizations together and
simulates the processing of a whole recorded sequence on the platform model:

1. E2SF converts each grayscale-frame interval's events into ``nB`` sparse
   frames as they are produced;
2. DSFA (when enabled) buffers and merges those frames, adapting to the
   event density and to whether the accelerator is still busy;
3. each dispatched batch is executed with the configured layer mapping
   (all-GPU for the baseline levels, the Network Mapper's mapping for the
   full configuration), using the measured occupancy of the merged frames to
   scale the sparse execution time.

The simulation is event-driven over frame arrival times, so back-pressure
effects are captured: during event bursts the baseline accumulates a backlog
(raising per-frame latency), which is exactly the behaviour DSFA removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..events.datasets import EventSequence
from ..frames.sparse import SparseFrame, SparseFrameBatch
from ..hw.energy import EnergyModel
from ..hw.latency import LatencyModel
from ..hw.pe import Platform
from ..nn.graph import LayerGraph
from ..nn.quantization import Precision
from .config import EvEdgeConfig, OptimizationLevel
from .dsfa import DynamicSparseFrameAggregator
from .e2sf import Event2SparseFrameConverter
from .nmp.candidate import MappingCandidate

__all__ = ["InferenceRecord", "PipelineReport", "EvEdgePipeline"]


@dataclass(frozen=True)
class InferenceRecord:
    """One simulated inference: which frames it covered and its timing."""

    dispatch_time: float
    start_time: float
    end_time: float
    num_frames: int
    occupancy: float
    energy: float

    @property
    def latency(self) -> float:
        """Completion time minus the time the newest covered frame was ready."""
        return self.end_time - self.dispatch_time


@dataclass
class PipelineReport:
    """Aggregate statistics of one pipeline run over a sequence."""

    records: List[InferenceRecord] = field(default_factory=list)
    frames_generated: int = 0
    frames_merged: int = 0
    frames_dropped: int = 0

    @property
    def num_inferences(self) -> int:
        """Number of network invocations performed."""
        return len(self.records)

    @property
    def total_time(self) -> float:
        """Wall-clock completion time of the last inference."""
        return max((r.end_time for r in self.records), default=0.0)

    @property
    def mean_latency(self) -> float:
        """Mean per-inference latency (dispatch to completion), seconds."""
        if not self.records:
            return 0.0
        return float(np.mean([r.latency for r in self.records]))

    @property
    def total_energy(self) -> float:
        """Total energy in joules."""
        return float(sum(r.energy for r in self.records))

    @property
    def mean_occupancy(self) -> float:
        """Mean input occupancy across inferences."""
        if not self.records:
            return 0.0
        return float(np.mean([r.occupancy for r in self.records]))


class EvEdgePipeline:
    """Simulate the Ev-Edge inference pipeline for one network and sequence."""

    def __init__(
        self,
        network: LayerGraph,
        platform: Platform,
        config: Optional[EvEdgeConfig] = None,
        mapping: Optional[MappingCandidate] = None,
        latency_model: Optional[LatencyModel] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.network = network
        self.platform = platform
        self.config = config or EvEdgeConfig()
        self.mapping = mapping
        self.latency_model = latency_model or LatencyModel()
        self.energy_model = energy_model or EnergyModel(self.latency_model)
        self.converter = Event2SparseFrameConverter(self.config.num_bins)

    # ------------------------------------------------------------------
    def _assignment_for(self, node_name: str):
        """(pe, precision) of one layer under the active mapping."""
        gpu = self.platform.gpu()
        if self.mapping is None or not self.config.optimization.uses_nmp:
            return gpu, self.config.baseline_precision
        full_node = f"{self.network.name}.{node_name}"
        if full_node in self.mapping:
            assignment = self.mapping[full_node]
        elif node_name in self.mapping:
            assignment = self.mapping[node_name]
        else:
            return gpu, self.config.baseline_precision
        return self.platform.pe(assignment.pe), assignment.precision

    def inference_time_and_energy(
        self, occupancy: float, batch: int
    ) -> Tuple[float, float]:
        """Latency and energy of one network invocation.

        The measured occupancy of the merged input drives the first layer;
        deeper layers use their modelled activation sparsity.  When producer
        and consumer layers sit on different devices a unified-memory
        transfer is added (single-task execution is serial, so transfers are
        simply summed).
        """
        sparse = self.config.optimization.uses_sparse
        total_latency = 0.0
        total_energy = 0.0
        previous_pe = None
        previous_spec = None
        previous_precision = None
        first = True
        for spec in self.network.layers():
            if not spec.kind.is_compute:
                continue
            pe, precision = self._assignment_for(spec.name)
            if not pe.supports_layer(spec):
                pe = self.platform.gpu()
            occ = occupancy if first else None
            layer_sparse = sparse and pe.supports_sparse
            total_latency += self.latency_model.layer_latency(
                spec, pe, precision, sparse=layer_sparse, occupancy=occ, batch=batch
            ).total
            total_energy += self.energy_model.layer_energy(
                spec, pe, precision, sparse=layer_sparse, occupancy=occ, batch=batch
            ).total
            if previous_pe is not None and previous_pe.name != pe.name:
                transfer_bytes = previous_spec.output_bytes(previous_precision) * batch
                total_latency += self.platform.transfer_time(
                    transfer_bytes, previous_pe.name, pe.name
                )
                total_energy += self.energy_model.transfer_energy(transfer_bytes)
            previous_pe, previous_spec, previous_precision = pe, spec, precision
            first = False
        return total_latency, total_energy

    # ------------------------------------------------------------------
    def run(self, sequence: EventSequence) -> PipelineReport:
        """Process ``sequence`` end to end and return the timing report."""
        report = PipelineReport()
        use_dsfa = self.config.optimization.uses_dsfa
        aggregator = DynamicSparseFrameAggregator(self.config.dsfa) if use_dsfa else None
        busy_until = 0.0

        timestamps = sequence.frame_timestamps
        for i in range(sequence.num_intervals):
            frames = self.converter.convert(
                sequence.events, float(timestamps[i]), float(timestamps[i + 1])
            )
            report.frames_generated += len(frames)
            for frame in frames:
                arrival = frame.t_end
                if aggregator is not None:
                    hardware_available = arrival >= busy_until
                    batch = aggregator.push(frame, hardware_available=hardware_available)
                    if batch is not None:
                        busy_until = self._execute_batch(batch, arrival, busy_until, report)
                        report.frames_merged += len(batch)
                else:
                    # Without DSFA every frame is processed individually.  A
                    # real deployment bounds its input queue, so when the
                    # backlog exceeds ``inference_queue_depth`` inferences the
                    # oldest frame is dropped instead of queued forever.
                    backlog = busy_until - arrival
                    last_latency = (
                        report.records[-1].end_time - report.records[-1].start_time
                        if report.records
                        else 0.0
                    )
                    if backlog > self.config.dsfa.inference_queue_depth * max(last_latency, 1e-9):
                        report.frames_dropped += 1
                        continue
                    batch = SparseFrameBatch([frame])
                    busy_until = self._execute_batch(batch, arrival, busy_until, report)
        if aggregator is not None:
            batch = aggregator.flush()
            if batch is not None:
                last_time = float(timestamps[-1])
                busy_until = self._execute_batch(batch, last_time, busy_until, report)
                report.frames_merged += len(batch)
        return report

    def _execute_batch(
        self,
        batch: SparseFrameBatch,
        dispatch_time: float,
        busy_until: float,
        report: PipelineReport,
    ) -> float:
        occupancy = batch.mean_density if self.config.optimization.uses_sparse else 1.0
        latency, energy = self.inference_time_and_energy(
            occupancy=max(occupancy, 1e-4), batch=max(len(batch), 1)
        )
        start = max(dispatch_time, busy_until)
        end = start + latency
        report.records.append(
            InferenceRecord(
                dispatch_time=dispatch_time,
                start_time=start,
                end_time=end,
                num_frames=len(batch),
                occupancy=occupancy,
                energy=energy,
            )
        )
        return end
