"""Event2Sparse Frame converter (E2SF) — paper Section 4.1.

E2SF converts the raw asynchronous event stream directly into a sparse
(COO) frame representation, skipping the dense intermediate event frame that
conventional pipelines build.  The steps follow the paper exactly:

1. the interval between two synchronized grayscale frames (``Tstart``,
   ``Tend``) is divided into ``nB`` event bins of duration
   ``biS = (Tend - Tstart) / nB`` (Equation 1);
2. each event is assigned to bin ``EB_k = floor((t_k - Tstart) / biS)``;
3. within each bin, positive and negative polarities are accumulated
   separately per pixel;
4. each accumulated bin is stored as row indices, column indices and the two
   polarity channels — a two-channel sparse frame in COO format.

The converter also reports the cost of the direct path next to the
dense-then-encode path so the paper's overhead argument can be reproduced
quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..events.types import EventStream
from ..frames.dense import assign_event_bins
from ..frames.encoding import ConversionCost, encode_cost, events_to_sparse_cost
from ..frames.sparse import SparseFrame

__all__ = ["E2SFReport", "Event2SparseFrameConverter"]


@dataclass
class E2SFReport:
    """Cost accounting for one conversion call.

    ``direct_cost`` is the events->sparse path E2SF takes; ``dense_path_cost``
    is what building a dense event frame first and then encoding it to COO
    would have cost (the overhead the paper avoids).
    """

    num_events: int
    num_bins: int
    total_active_sites: int
    direct_cost: ConversionCost
    dense_path_cost: ConversionCost

    @property
    def operation_saving(self) -> float:
        """Ratio of dense-path operations to direct-path operations."""
        if self.direct_cost.operations == 0:
            return float("inf") if self.dense_path_cost.operations else 1.0
        return self.dense_path_cost.operations / self.direct_cost.operations


class Event2SparseFrameConverter:
    """Convert raw event streams to per-bin two-channel sparse frames.

    Parameters
    ----------
    num_bins:
        Number of event bins ``nB`` per grayscale-frame interval; sets the
        temporal resolution of the representation.
    """

    def __init__(self, num_bins: int = 5) -> None:
        if num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        self.num_bins = num_bins

    # ------------------------------------------------------------------
    def convert(
        self,
        stream: EventStream,
        t_start: float,
        t_end: float,
    ) -> List[SparseFrame]:
        """Convert the events in ``[t_start, t_end)`` into ``num_bins`` sparse frames."""
        if t_end <= t_start:
            raise ValueError("t_end must be greater than t_start")
        window = stream.slice_time(t_start, t_end)
        geometry = stream.geometry
        bin_duration = (t_end - t_start) / self.num_bins
        frames: List[SparseFrame] = []
        if len(window) == 0:
            for k in range(self.num_bins):
                frames.append(
                    SparseFrame.empty(
                        geometry.height,
                        geometry.width,
                        t_start + k * bin_duration,
                        t_start + (k + 1) * bin_duration,
                    )
                )
            return frames
        bins = assign_event_bins(window.t, t_start, t_end, self.num_bins)
        for k in range(self.num_bins):
            mask = bins == k
            frames.append(
                SparseFrame.from_events(
                    window.x[mask],
                    window.y[mask],
                    window.p[mask],
                    geometry.height,
                    geometry.width,
                    t_start + k * bin_duration,
                    t_start + (k + 1) * bin_duration,
                )
            )
        return frames

    def convert_with_report(
        self, stream: EventStream, t_start: float, t_end: float
    ) -> Tuple[List[SparseFrame], E2SFReport]:
        """Convert and also report direct-path vs dense-path conversion cost."""
        frames = self.convert(stream, t_start, t_end)
        window = stream.slice_time(t_start, t_end)
        total_nnz = sum(f.num_active for f in frames)
        direct = events_to_sparse_cost(len(window), total_nnz)
        geometry = stream.geometry
        dense_path = ConversionCost(0, 0, 0)
        for f in frames:
            dense_path = dense_path + encode_cost(geometry.height, geometry.width, f.num_active)
        report = E2SFReport(
            num_events=len(window),
            num_bins=self.num_bins,
            total_active_sites=total_nnz,
            direct_cost=direct,
            dense_path_cost=dense_path,
        )
        return frames, report

    def convert_sequence(
        self,
        stream: EventStream,
        frame_timestamps: Sequence[float],
    ) -> List[List[SparseFrame]]:
        """Convert every consecutive grayscale-frame interval of a recording.

        Returns one list of ``num_bins`` sparse frames per interval.
        """
        timestamps = list(frame_timestamps)
        if len(timestamps) < 2:
            raise ValueError("at least two grayscale frame timestamps are required")
        return [
            self.convert(stream, timestamps[i], timestamps[i + 1])
            for i in range(len(timestamps) - 1)
        ]

    def input_occupancies(self, frames: Sequence[SparseFrame]) -> Tuple[float, ...]:
        """Per-bin input occupancies (spatial densities) of converted frames.

        The same quantity the runtime reads per dispatched batch via
        :meth:`repro.frames.sparse.SparseFrameBatch.frame_densities` to seed
        per-layer occupancy profiles; exposed here for analyses that work on
        raw converter output (e.g. the Figure 3 sparsity sweeps) before any
        batch exists.
        """
        return tuple(f.density for f in frames)

    def mean_occupancy(self, frames: Sequence[SparseFrame]) -> float:
        """Average fraction of active pixels across sparse frames (paper Fig. 3)."""
        occupancies = self.input_occupancies(frames)
        if not occupancies:
            return 0.0
        return float(np.mean(occupancies))
