"""Event2Sparse Frame converter (E2SF) — paper Section 4.1.

E2SF converts the raw asynchronous event stream directly into a sparse
(COO) frame representation, skipping the dense intermediate event frame that
conventional pipelines build.  The steps follow the paper exactly:

1. the interval between two synchronized grayscale frames (``Tstart``,
   ``Tend``) is divided into ``nB`` event bins of duration
   ``biS = (Tend - Tstart) / nB`` (Equation 1);
2. each event is assigned to bin ``EB_k = floor((t_k - Tstart) / biS)``;
3. within each bin, positive and negative polarities are accumulated
   separately per pixel;
4. each accumulated bin is stored as row indices, column indices and the two
   polarity channels — a two-channel sparse frame in COO format.

The converter also reports the cost of the direct path next to the
dense-then-encode path so the paper's overhead argument can be reproduced
quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..events.types import EventStream
from ..frames.dense import assign_event_bins
from ..frames.encoding import ConversionCost, encode_cost, events_to_sparse_cost
from ..frames.sparse import SparseFrame, _grouped_reduce
from ..frames.stack import FrameStack

__all__ = ["E2SFReport", "Event2SparseFrameConverter"]


@dataclass
class E2SFReport:
    """Cost accounting for one conversion call.

    ``direct_cost`` is the events->sparse path E2SF takes; ``dense_path_cost``
    is what building a dense event frame first and then encoding it to COO
    would have cost (the overhead the paper avoids).
    """

    num_events: int
    num_bins: int
    total_active_sites: int
    direct_cost: ConversionCost
    dense_path_cost: ConversionCost

    @property
    def operation_saving(self) -> float:
        """Ratio of dense-path operations to direct-path operations."""
        if self.direct_cost.operations == 0:
            return float("inf") if self.dense_path_cost.operations else 1.0
        return self.dense_path_cost.operations / self.direct_cost.operations


class Event2SparseFrameConverter:
    """Convert raw event streams to per-bin two-channel sparse frames.

    Parameters
    ----------
    num_bins:
        Number of event bins ``nB`` per grayscale-frame interval; sets the
        temporal resolution of the representation.
    """

    def __init__(self, num_bins: int = 5) -> None:
        if num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        self.num_bins = num_bins

    # ------------------------------------------------------------------
    def convert(
        self,
        stream: EventStream,
        t_start: float,
        t_end: float,
    ) -> List[SparseFrame]:
        """Convert the events in ``[t_start, t_end)`` into ``num_bins`` sparse frames."""
        if t_end <= t_start:
            raise ValueError("t_end must be greater than t_start")
        window = stream.slice_time(t_start, t_end)
        geometry = stream.geometry
        bin_duration = (t_end - t_start) / self.num_bins
        frames: List[SparseFrame] = []
        if len(window) == 0:
            for k in range(self.num_bins):
                frames.append(
                    SparseFrame.empty(
                        geometry.height,
                        geometry.width,
                        t_start + k * bin_duration,
                        t_start + (k + 1) * bin_duration,
                    )
                )
            return frames
        bins = assign_event_bins(window.t, t_start, t_end, self.num_bins)
        for k in range(self.num_bins):
            mask = bins == k
            frames.append(
                SparseFrame.from_events(
                    window.x[mask],
                    window.y[mask],
                    window.p[mask],
                    geometry.height,
                    geometry.width,
                    t_start + k * bin_duration,
                    t_start + (k + 1) * bin_duration,
                )
            )
        return frames

    def convert_with_report(
        self, stream: EventStream, t_start: float, t_end: float
    ) -> Tuple[List[SparseFrame], E2SFReport]:
        """Convert and also report direct-path vs dense-path conversion cost."""
        frames = self.convert(stream, t_start, t_end)
        window = stream.slice_time(t_start, t_end)
        total_nnz = sum(f.num_active for f in frames)
        direct = events_to_sparse_cost(len(window), total_nnz)
        geometry = stream.geometry
        dense_path = ConversionCost(0, 0, 0)
        for f in frames:
            dense_path = dense_path + encode_cost(geometry.height, geometry.width, f.num_active)
        report = E2SFReport(
            num_events=len(window),
            num_bins=self.num_bins,
            total_active_sites=total_nnz,
            direct_cost=direct,
            dense_path_cost=dense_path,
        )
        return frames, report

    def convert_sequence(
        self,
        stream: EventStream,
        frame_timestamps: Sequence[float],
    ) -> List[List[SparseFrame]]:
        """Convert every consecutive grayscale-frame interval of a recording.

        Returns one list of ``num_bins`` sparse frames per interval.  This
        is the per-interval × per-bin loop path, kept alive as the
        equivalence oracle for :meth:`convert_stack` (the
        :mod:`repro.runtime.legacy` pattern): the stack path must produce
        bit-identical frames.
        """
        timestamps = list(frame_timestamps)
        if len(timestamps) < 2:
            raise ValueError("at least two grayscale frame timestamps are required")
        return [
            self.convert(stream, timestamps[i], timestamps[i + 1])
            for i in range(len(timestamps) - 1)
        ]

    def convert_stack(
        self,
        stream: EventStream,
        frame_timestamps: Sequence[float],
    ) -> FrameStack:
        """Bin an entire recording into one columnar :class:`FrameStack`.

        One pass replaces the per-interval × per-bin loop of
        :meth:`convert_sequence`: every event gets an ``(interval, bin,
        pixel)`` key, a single stable sort groups the whole recording, and
        segmented reductions accumulate the two polarity channels.  The
        resulting stack holds ``num_intervals * num_bins`` frames in
        interval-major order — empty bins included — with the same time
        bounds, canonical (ascending-pixel) site order and accumulated
        values as the loop path, bit for bit.
        """
        timestamps = np.asarray(frame_timestamps, dtype=np.float64)
        if timestamps.ndim != 1 or timestamps.size < 2:
            raise ValueError("at least two grayscale frame timestamps are required")
        if np.any(np.diff(timestamps) <= 0):
            raise ValueError("frame timestamps must be strictly increasing")
        num_bins = self.num_bins
        num_intervals = timestamps.size - 1
        num_frames = num_intervals * num_bins
        geometry = stream.geometry
        h, w = geometry.height, geometry.width
        num_pixels = h * w

        # Per-frame time bounds, identical arithmetic to the loop path:
        # t_start + k * ((t_end - t_start) / num_bins) per interval.
        frame_idx = np.arange(num_frames, dtype=np.int64)
        interval_of_frame = frame_idx // num_bins
        bin_of_frame = frame_idx % num_bins
        interval_start = timestamps[interval_of_frame]
        bin_duration = (
            timestamps[interval_of_frame + 1] - interval_start
        ) / num_bins
        t_starts = interval_start + bin_of_frame * bin_duration
        t_ends = interval_start + (bin_of_frame + 1) * bin_duration

        # Events inside [timestamps[0], timestamps[-1]) — the union of the
        # per-interval slice_time windows.
        lo = int(np.searchsorted(stream.t, timestamps[0], side="left"))
        hi = int(np.searchsorted(stream.t, timestamps[-1], side="left"))
        t = stream.t[lo:hi]
        if t.size == 0:
            return FrameStack(
                np.zeros(0, dtype=np.int32),
                np.zeros(0, dtype=np.int32),
                np.zeros(0, dtype=np.float64),
                np.zeros(0, dtype=np.float64),
                np.zeros(num_frames + 1, dtype=np.int64),
                t_starts,
                t_ends,
                h,
                w,
            )
        x = stream.x[lo:hi]
        y = stream.y[lo:hi]
        p = stream.p[lo:hi]

        # (interval, bin, pixel) key per event.  An event exactly at a
        # grayscale timestamp opens the next interval (slice_time is
        # half-open), and the bin expression is elementwise-identical to
        # assign_event_bins' floor/clip.
        interval = np.searchsorted(timestamps, t, side="right") - 1
        t0 = timestamps[interval]
        bis = (timestamps[interval + 1] - t0) / num_bins
        bins = np.clip(
            np.floor((t - t0) / bis).astype(np.int64), 0, num_bins - 1
        )
        pixel = y.astype(np.int64) * w + x
        key = (interval * num_bins + bins) * num_pixels + pixel

        unique_key, pos, neg = _grouped_reduce(
            key,
            (p > 0).astype(np.float64),
            (p < 0).astype(np.float64),
        )
        unique_frame = unique_key // num_pixels
        unique_pixel = unique_key - unique_frame * num_pixels
        offsets = np.zeros(num_frames + 1, dtype=np.int64)
        np.cumsum(np.bincount(unique_frame, minlength=num_frames), out=offsets[1:])
        return FrameStack._view(
            (unique_pixel // w).astype(np.int32),
            (unique_pixel % w).astype(np.int32),
            pos,
            neg,
            offsets,
            t_starts,
            t_ends,
            h,
            w,
            flat=unique_pixel,
        )

    def input_occupancies(self, frames: Sequence[SparseFrame]) -> Tuple[float, ...]:
        """Per-bin input occupancies (spatial densities) of converted frames.

        The same quantity the runtime reads per dispatched batch via
        :meth:`repro.frames.sparse.SparseFrameBatch.frame_densities` to seed
        per-layer occupancy profiles; exposed here for analyses that work on
        raw converter output (e.g. the Figure 3 sparsity sweeps) before any
        batch exists.
        """
        return tuple(f.density for f in frames)

    def mean_occupancy(self, frames: Sequence[SparseFrame]) -> float:
        """Average fraction of active pixels across sparse frames (paper Fig. 3)."""
        occupancies = self.input_occupancies(frames)
        if not occupancies:
            return 0.0
        return float(np.mean(occupancies))
