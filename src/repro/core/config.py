"""Configuration objects for the integrated Ev-Edge pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..nn.quantization import Precision
from .dsfa import DSFAConfig

__all__ = ["OptimizationLevel", "EvEdgeConfig"]


class OptimizationLevel(Enum):
    """Which Ev-Edge optimizations are enabled (Figure 8's incremental bars)."""

    BASELINE = "all-gpu-dense"        # dense frames, all layers on the GPU
    E2SF = "e2sf"                     # sparse frames, all layers on the GPU
    E2SF_DSFA = "e2sf+dsfa"           # sparse frames + dynamic aggregation
    FULL = "e2sf+dsfa+nmp"            # sparse frames + aggregation + network mapper

    @property
    def uses_sparse(self) -> bool:
        """True when E2SF sparse frames are used."""
        return self is not OptimizationLevel.BASELINE

    @property
    def uses_dsfa(self) -> bool:
        """True when DSFA merging is active."""
        return self in (OptimizationLevel.E2SF_DSFA, OptimizationLevel.FULL)

    @property
    def uses_nmp(self) -> bool:
        """True when the Network Mapper's mapping is used."""
        return self is OptimizationLevel.FULL


@dataclass(frozen=True)
class EvEdgeConfig:
    """End-to-end configuration of the Ev-Edge inference pipeline.

    Attributes
    ----------
    num_bins:
        ``nB`` — event bins per grayscale frame interval (E2SF temporal
        resolution).
    dsfa:
        DSFA thresholds and merge mode.
    baseline_precision:
        Precision of the all-GPU baseline and of non-NMP levels.
    optimization:
        Which subset of the three optimizations is enabled.
    """

    num_bins: int = 5
    dsfa: DSFAConfig = field(default_factory=DSFAConfig)
    baseline_precision: Precision = Precision.FP32
    optimization: OptimizationLevel = OptimizationLevel.FULL

    def __post_init__(self) -> None:
        if self.num_bins < 1:
            raise ValueError("num_bins must be >= 1")
