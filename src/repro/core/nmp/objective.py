"""Fitness evaluation for mapping candidates (paper Equation 2).

The objective minimises the maximum task latency subject to every task's
accuracy degradation staying below a threshold:

    min  max_i Latency(T_i)
    s.t. dA_1, dA_2, ..., dA_n <= dA

Latency comes from the list scheduler (:mod:`.scheduler`); the accuracy
degradation of a task is measured by quantizing its surrogate per the
candidate's layer precisions and evaluating it on a sampled subset of the
validation set (:class:`~repro.nn.accuracy.TaskAccuracyEvaluator`).
Infeasible candidates are penalised proportionally to their constraint
violation rather than rejected, which keeps the evolutionary search able to
traverse the boundary of the feasible region.

Two caches keep the search cheap, mirroring the paper's caching
optimisation:

* whole-candidate fitness, keyed on the candidate's full assignment key, and
* **delta evaluation** of the accuracy term: per-task degradations are keyed
  on the task's layer-precision tuple, so a child that mutates only
  ``mutation_layers`` assignments re-measures accuracy only for the tasks it
  actually touched (and only when it changed their *precisions* — device
  moves never re-trigger accuracy evaluation).  ``delta_hits`` counts the
  reuses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...hw.pe import Platform
from ...hw.profiler import ProfileTable
from ...nn.accuracy import TaskAccuracyEvaluator, map_layer_precisions_to_stages
from ...nn.graph import MultiTaskGraph
from .candidate import MappingCandidate
from .scheduler import ExecutionScheduler

__all__ = ["FitnessBreakdown", "FitnessEvaluator"]


@dataclass(frozen=True)
class FitnessBreakdown:
    """Everything the search needs to know about one evaluated candidate."""

    fitness: float
    max_task_latency: float
    task_latencies: Dict[str, float]
    degradations: Dict[str, float]
    energy: float
    feasible: bool


class FitnessEvaluator:
    """Evaluate candidates against Equation 2 with caching.

    Parameters
    ----------
    graph, platform, profile:
        The multi-task graph, the platform and its profiled latency table.
    accuracy_evaluators:
        Optional per-task :class:`TaskAccuracyEvaluator`; tasks without one
        are treated as having zero degradation (useful to keep unit tests and
        latency-only studies fast).
    accuracy_threshold:
        The per-task degradation bound ``dA``.
    penalty_weight:
        Latency-units of penalty per unit of constraint violation.
    accuracy_subset:
        Number of validation intervals sampled per accuracy evaluation (the
        paper evaluates on a random subset to reduce search cost).
    sparse:
        Whether layers run on sparse inputs (E2SF enabled).
    use_flat_scheduler:
        Route latency estimation through the flattened fast path (default).
        ``False`` falls back to the original graph-walking scheduler — only
        useful to the benchmark that measures the flattening speedup.
    """

    def __init__(
        self,
        graph: MultiTaskGraph,
        platform: Platform,
        profile: ProfileTable,
        accuracy_evaluators: Optional[Dict[str, TaskAccuracyEvaluator]] = None,
        accuracy_threshold: float = 0.05,
        penalty_weight: float = 10.0,
        accuracy_subset: Optional[int] = 2,
        sparse: bool = True,
        use_flat_scheduler: bool = True,
    ) -> None:
        if accuracy_threshold < 0:
            raise ValueError("accuracy_threshold must be non-negative")
        self.graph = graph
        self.platform = platform
        self.profile = profile
        self.scheduler = ExecutionScheduler(platform, profile, sparse=sparse)
        self.accuracy_evaluators = accuracy_evaluators or {}
        self.accuracy_threshold = accuracy_threshold
        self.penalty_weight = penalty_weight
        self.accuracy_subset = accuracy_subset
        self.use_flat_scheduler = use_flat_scheduler
        # Per-task compute nodes in topological order, resolved once: both
        # the degradation keys and ``task_precisions`` re-derivations are on
        # the hot path.
        self._task_nodes: Dict[str, Tuple[str, ...]] = {
            name: tuple(
                n for n in graph.compute_nodes() if graph.network_of(n) == name
            )
            for name in graph.task_names
        }
        self._cache: Dict[tuple, FitnessBreakdown] = {}
        self._degradation_cache: Dict[tuple, float] = {}
        self.evaluations = 0
        self.cache_hits = 0
        self.delta_hits = 0

    # ------------------------------------------------------------------
    def _task_degradation(self, candidate: MappingCandidate, task_name: str) -> float:
        evaluator = self.accuracy_evaluators.get(task_name)
        if evaluator is None:
            return 0.0
        assignments = candidate.assignments
        layer_precisions = tuple(
            assignments[node].precision for node in self._task_nodes[task_name]
        )
        key = (task_name, layer_precisions)
        cached = self._degradation_cache.get(key)
        if cached is not None:
            self.delta_hits += 1
            return cached
        task = self.graph.task(task_name)
        surrogate_stages = 3 if task.network.task != "object_tracking" else 2
        stage_precisions = map_layer_precisions_to_stages(
            list(layer_precisions), surrogate_stages
        )
        value = evaluator.degradation(stage_precisions, subset=self.accuracy_subset)
        self._degradation_cache[key] = value
        return value

    def evaluate(self, candidate: MappingCandidate) -> FitnessBreakdown:
        """Return (cached) fitness details for ``candidate``."""
        key = candidate.key()
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        self.evaluations += 1
        if self.use_flat_scheduler:
            task_latencies, energy = self.scheduler.schedule_metrics(
                self.graph, candidate
            )
        else:
            result = self.scheduler.schedule_reference(self.graph, candidate)
            task_latencies, energy = dict(result.task_latencies), result.energy
        degradations = {
            name: self._task_degradation(candidate, name) for name in self.graph.task_names
        }
        violation = sum(
            max(d - self.accuracy_threshold, 0.0) for d in degradations.values()
        )
        feasible = violation == 0.0
        latency = max(task_latencies.values()) if task_latencies else 0.0
        fitness = latency * (1.0 + self.penalty_weight * violation)
        breakdown = FitnessBreakdown(
            fitness=fitness,
            max_task_latency=latency,
            task_latencies=task_latencies,
            degradations=degradations,
            energy=energy,
            feasible=feasible,
        )
        self._cache[key] = breakdown
        return breakdown
