"""Random-search baseline for the Network Mapper (paper Figure 10b).

Samples a fresh random population every generation (no selection, crossover
or mutation) and tracks the best candidate seen, using exactly the same
fitness evaluator as the evolutionary mapper so the comparison isolates the
search strategy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ...hw.pe import Platform
from ...hw.profiler import ProfileTable
from ...nn.accuracy import TaskAccuracyEvaluator
from ...nn.graph import MultiTaskGraph
from .candidate import MappingCandidate
from .evolutionary import GenerationStats, NMPConfig, NMPResult
from .objective import FitnessEvaluator

__all__ = ["RandomSearchMapper"]


class RandomSearchMapper:
    """Uniform random sampling of mapping candidates."""

    def __init__(
        self,
        graph: MultiTaskGraph,
        platform: Platform,
        profile: ProfileTable,
        config: Optional[NMPConfig] = None,
        accuracy_evaluators: Optional[Dict[str, TaskAccuracyEvaluator]] = None,
        sparse: bool = True,
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.profile = profile
        self.config = config or NMPConfig()
        self.evaluator = FitnessEvaluator(
            graph,
            platform,
            profile,
            accuracy_evaluators=accuracy_evaluators,
            accuracy_threshold=self.config.accuracy_threshold,
            sparse=sparse,
        )
        self._rng = np.random.default_rng(self.config.seed)

    def run(self) -> NMPResult:
        """Sample ``generations x population_size`` candidates and keep the best."""
        history: List[GenerationStats] = []
        best_candidate = None
        best_breakdown = None
        for generation in range(self.config.generations):
            population = [
                MappingCandidate.random(
                    self.graph,
                    self.platform,
                    self._rng,
                    full_precision_only=self.config.full_precision_only,
                )
                for _ in range(self.config.population_size)
            ]
            evaluated = [(c, self.evaluator.evaluate(c)) for c in population]
            evaluated.sort(key=lambda pair: pair[1].fitness)
            gen_best_candidate, gen_best = evaluated[0]
            if best_breakdown is None or gen_best.fitness < best_breakdown.fitness:
                best_candidate, best_breakdown = gen_best_candidate.copy(), gen_best
            history.append(
                GenerationStats(
                    generation=generation,
                    best_fitness=best_breakdown.fitness,
                    mean_fitness=float(np.mean([b.fitness for _, b in evaluated])),
                    best_latency=best_breakdown.max_task_latency,
                )
            )
        assert best_candidate is not None and best_breakdown is not None
        return NMPResult(
            best_candidate=best_candidate,
            best_breakdown=best_breakdown,
            history=history,
            evaluations=self.evaluator.evaluations,
            cache_hits=self.evaluator.cache_hits,
        )
