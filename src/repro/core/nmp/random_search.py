"""Random-search baseline for the Network Mapper (paper Figure 10b).

Samples a fresh random population every generation (no selection, crossover
or mutation) and tracks the best candidate seen, using exactly the same
fitness evaluator as the evolutionary mapper so the comparison isolates the
search strategy.  The loop lives in :class:`~.search.MapperEngine` driving
:class:`~.search.RandomSearchStrategy`; this wrapper keeps the original
constructor and ``run()`` signature.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...hw.pe import Platform
from ...hw.profiler import ProfileTable
from ...nn.accuracy import TaskAccuracyEvaluator
from ...nn.graph import MultiTaskGraph
from .search import MapperEngine, NMPConfig, NMPResult, RandomSearchStrategy

__all__ = ["RandomSearchMapper"]


class RandomSearchMapper:
    """Uniform random sampling of mapping candidates."""

    def __init__(
        self,
        graph: MultiTaskGraph,
        platform: Platform,
        profile: ProfileTable,
        config: Optional[NMPConfig] = None,
        accuracy_evaluators: Optional[Dict[str, TaskAccuracyEvaluator]] = None,
        sparse: bool = True,
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.profile = profile
        self.config = config or NMPConfig()
        self.engine = MapperEngine(
            graph,
            platform,
            profile,
            config=self.config,
            accuracy_evaluators=accuracy_evaluators,
            sparse=sparse,
        )
        self.evaluator = self.engine.evaluator

    def run(self) -> NMPResult:
        """Sample ``generations x population_size`` candidates and keep the best."""
        return self.engine.run(RandomSearchStrategy())
