"""List scheduling and latency estimation for mapping candidates.

Implements the paper's Section 4.3.2: every device (plus the unified memory
link used for inter-device transfers) gets an execution queue; nodes are
serialised within their queues following the topological order of the
multi-task graph; the end time of every node obeys

    End_T(node) = max(End_T(parent_1) ... End_T(parent_N), CurDeviceQ_T)
                  + Exec_T(node)                                     (Eq. 3)

and the candidate's latency is the critical-path maximum of the end times.
Data-transfer nodes are inserted automatically whenever a producer/consumer
pair is mapped to different devices.

The scheduler sits on the search's hot path — it runs once per candidate
evaluation — so the multi-task graph is **flattened once per graph** into
index-based arrays (:class:`FlatGraph`): topological node order, parent
indices, compute mask, per-precision output bytes and pre-resolved profile
entries per (PE, precision) with the sparse/dense preference already applied.
``schedule`` / ``schedule_metrics`` then run a tight loop over those arrays
instead of re-resolving ``graph.spec()`` / ``graph.predecessors()`` and
re-querying the profile table for every node of every candidate.
``schedule_reference`` keeps the original graph-walking implementation as the
bit-for-bit oracle for regression tests and the
``benchmarks/bench_nmp_search.py`` speedup measurement.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...hw.pe import Platform
from ...hw.profiler import ProfileEntry, ProfileTable
from ...nn.graph import MultiTaskGraph
from ...nn.quantization import Precision
from .candidate import MappingCandidate

__all__ = [
    "ScheduledNode",
    "ScheduleResult",
    "FlatGraph",
    "ExecutionScheduler",
]

_MEMORY_QUEUE = "unified_memory"


@dataclass(frozen=True)
class ScheduledNode:
    """One entry of the execution timeline."""

    node: str
    queue: str
    start: float
    end: float
    kind: str = "compute"  # "compute" or "transfer"

    @property
    def duration(self) -> float:
        """Execution time of this entry."""
        return self.end - self.start


@dataclass
class ScheduleResult:
    """Outcome of scheduling one mapping candidate."""

    timeline: List[ScheduledNode]
    task_latencies: Dict[str, float]
    energy: float

    @property
    def makespan(self) -> float:
        """Critical-path latency across all tasks (max node end time)."""
        if not self.timeline:
            return 0.0
        return max(entry.end for entry in self.timeline)

    @property
    def max_task_latency(self) -> float:
        """The objective of Equation 2: the slowest task's latency."""
        if not self.task_latencies:
            return 0.0
        return max(self.task_latencies.values())

    def device_busy_time(self) -> Dict[str, float]:
        """Total busy time per execution queue (for utilisation plots)."""
        busy: Dict[str, float] = {}
        for entry in self.timeline:
            busy[entry.queue] = busy.get(entry.queue, 0.0) + entry.duration
        return busy


class FlatGraph:
    """A multi-task graph flattened to index-based arrays for scheduling.

    Built once per (graph, profile, sparse-mode) and reused for every
    candidate evaluation.  Per node ``i`` in topological order:

    * ``names[i]`` — the global node id;
    * ``is_compute[i]`` — pseudo layers forward their parents' end times;
    * ``parents[i]`` — flat indices of the data-dependency parents, in the
      graph's predecessor order (transfer insertion order matters);
    * ``task_index[i]`` — index into ``task_names`` (compute nodes only);
    * ``options[i]`` — ``(pe_name, precision) -> ProfileEntry`` with the
      scheduler's sparse preference already resolved (compute nodes only);
    * ``output_bytes[i]`` — ``precision -> bytes`` of the node's output
      activation (compute nodes only; consumed when inserting transfers).
    """

    __slots__ = (
        "names",
        "is_compute",
        "parents",
        "task_index",
        "task_names",
        "options",
        "output_bytes",
        "num_nodes",
    )

    def __init__(
        self,
        graph: MultiTaskGraph,
        platform: Platform,
        profile: ProfileTable,
        sparse: bool,
    ) -> None:
        nodes = graph.nodes()
        index = {name: i for i, name in enumerate(nodes)}
        self.num_nodes = len(nodes)
        self.names: List[str] = nodes
        self.is_compute: List[bool] = []
        self.parents: List[Tuple[int, ...]] = []
        self.task_names: List[str] = list(graph.task_names)
        task_index = {name: i for i, name in enumerate(self.task_names)}
        self.task_index: List[int] = []
        self.options: List[Optional[Dict[Tuple[str, Precision], ProfileEntry]]] = []
        self.output_bytes: List[Optional[Dict[Precision, int]]] = []
        for name in nodes:
            spec = graph.spec(name)
            compute = spec.kind.is_compute
            self.is_compute.append(compute)
            self.parents.append(tuple(index[p] for p in graph.predecessors(name)))
            self.task_index.append(task_index[graph.network_of(name)])
            if not compute:
                self.options.append(None)
                self.output_bytes.append(None)
                continue
            options: Dict[Tuple[str, Precision], ProfileEntry] = {}
            for pe in platform:
                if not pe.supports_layer(spec):
                    continue
                for precision in pe.supported_precisions:
                    use_sparse = sparse and profile.has(name, pe.name, precision, True)
                    if not profile.has(name, pe.name, precision, use_sparse):
                        continue
                    options[(pe.name, precision)] = profile.lookup(
                        name, pe.name, precision, use_sparse
                    )
            self.options.append(options)
            self.output_bytes.append(
                {precision: spec.output_bytes(precision) for precision in Precision}
            )


class ExecutionScheduler:
    """Estimate the latency of a mapping candidate with per-device queues."""

    def __init__(
        self,
        platform: Platform,
        profile: ProfileTable,
        sparse: bool = False,
    ) -> None:
        self.platform = platform
        self.profile = profile
        self.sparse = sparse
        # Flattenings are keyed on graph identity; WeakKey so long-dead
        # graphs do not pin their arrays.
        self._flat: "weakref.WeakKeyDictionary[MultiTaskGraph, FlatGraph]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    def flatten(self, graph: MultiTaskGraph) -> FlatGraph:
        """The (cached) flattened form of ``graph`` for this scheduler."""
        flat = self._flat.get(graph)
        if flat is None:
            flat = FlatGraph(graph, self.platform, self.profile, self.sparse)
            self._flat[graph] = flat
        return flat

    def schedule(self, graph: MultiTaskGraph, mapping: MappingCandidate) -> ScheduleResult:
        """Schedule every compute node of ``graph`` per ``mapping`` (Eq. 3)."""
        timeline: List[ScheduledNode] = []
        task_latencies, energy = self._run(self.flatten(graph), mapping, timeline)
        return ScheduleResult(
            timeline=timeline, task_latencies=task_latencies, energy=energy
        )

    def schedule_metrics(
        self, graph: MultiTaskGraph, mapping: MappingCandidate
    ) -> Tuple[Dict[str, float], float]:
        """Fast path: ``(task_latencies, energy)`` without building a timeline.

        Numerically identical to :meth:`schedule` (same operations in the
        same order); used by the fitness evaluator, whose objective needs
        only the per-task end times and the energy total.
        """
        return self._run(self.flatten(graph), mapping, None)

    # ------------------------------------------------------------------
    def _run(
        self,
        flat: FlatGraph,
        mapping: MappingCandidate,
        timeline: Optional[List[ScheduledNode]],
    ) -> Tuple[Dict[str, float], float]:
        assignments = mapping.assignments
        names = flat.names
        is_compute = flat.is_compute
        parents = flat.parents
        options = flat.options
        output_bytes = flat.output_bytes
        task_index = flat.task_index
        transfer_latency = self.platform.transfer_latency
        bandwidth = self.platform.unified_memory_bandwidth

        end: List[float] = [0.0] * flat.num_nodes
        queue_ready: Dict[str, float] = {pe.name: 0.0 for pe in self.platform}
        memory_ready = 0.0
        task_end = [0.0] * len(flat.task_names)
        total_energy = 0.0

        for i in range(flat.num_nodes):
            node_parents = parents[i]
            if not is_compute[i]:
                # Pseudo layers take no time; they simply forward their parents' end.
                latest = 0.0
                for p in node_parents:
                    if end[p] > latest:
                        latest = end[p]
                end[i] = latest
                continue
            name = names[i]
            assignment = assignments[name]
            pe_name = assignment.pe

            # Insert transfer nodes for parents mapped to a different device.
            ready = 0.0
            for p in node_parents:
                parent_end = end[p]
                if not is_compute[p]:
                    if parent_end > ready:
                        ready = parent_end
                    continue
                parent_assignment = assignments.get(names[p])
                if parent_assignment is None or parent_assignment.pe == pe_name:
                    if parent_end > ready:
                        ready = parent_end
                    continue
                num_bytes = output_bytes[p][parent_assignment.precision]
                if num_bytes <= 0:
                    transfer_time = transfer_latency
                else:
                    transfer_time = transfer_latency + 2.0 * num_bytes / bandwidth
                start = parent_end if parent_end > memory_ready else memory_ready
                finish = start + transfer_time
                memory_ready = finish
                if timeline is not None:
                    timeline.append(
                        ScheduledNode(
                            node=f"{names[p]}->{name}",
                            queue=_MEMORY_QUEUE,
                            start=start,
                            end=finish,
                            kind="transfer",
                        )
                    )
                if finish > ready:
                    ready = finish

            entry = options[i][(pe_name, assignment.precision)]
            device_ready = queue_ready[pe_name]
            start = ready if ready > device_ready else device_ready
            finish = start + entry.latency
            queue_ready[pe_name] = finish
            end[i] = finish
            total_energy += entry.energy
            if timeline is not None:
                timeline.append(
                    ScheduledNode(node=name, queue=pe_name, start=start, end=finish)
                )
            t = task_index[i]
            if finish > task_end[t]:
                task_end[t] = finish

        task_latencies = dict(zip(flat.task_names, task_end))
        return task_latencies, total_energy

    # ------------------------------------------------------------------
    def schedule_reference(
        self, graph: MultiTaskGraph, mapping: MappingCandidate
    ) -> ScheduleResult:
        """The original graph-walking list scheduler (pre-flattening).

        Kept verbatim as the correctness oracle: regression tests assert the
        flat path reproduces it bit-for-bit, and
        ``benchmarks/bench_nmp_search.py`` measures the flattening speedup
        against it.
        """
        queue_ready: Dict[str, float] = {pe.name: 0.0 for pe in self.platform}
        queue_ready[_MEMORY_QUEUE] = 0.0
        end_time: Dict[str, float] = {}
        timeline: List[ScheduledNode] = []
        task_latencies: Dict[str, float] = {name: 0.0 for name in graph.task_names}
        total_energy = 0.0

        for node in graph.nodes():
            spec = graph.spec(node)
            if not spec.kind.is_compute:
                parents = graph.predecessors(node)
                end_time[node] = max((end_time[p] for p in parents), default=0.0)
                continue
            assignment = mapping[node]
            pe_name = assignment.pe
            precision = assignment.precision

            ready = 0.0
            for parent in graph.predecessors(node):
                parent_end = end_time.get(parent, 0.0)
                parent_spec = graph.spec(parent)
                if not parent_spec.kind.is_compute or parent not in mapping:
                    ready = max(ready, parent_end)
                    continue
                parent_assignment = mapping[parent]
                if parent_assignment.pe == pe_name:
                    ready = max(ready, parent_end)
                    continue
                transfer_time = self.platform.transfer_time(
                    parent_spec.output_bytes(parent_assignment.precision),
                    parent_assignment.pe,
                    pe_name,
                )
                start = max(parent_end, queue_ready[_MEMORY_QUEUE])
                finish = start + transfer_time
                queue_ready[_MEMORY_QUEUE] = finish
                timeline.append(
                    ScheduledNode(
                        node=f"{parent}->{node}",
                        queue=_MEMORY_QUEUE,
                        start=start,
                        end=finish,
                        kind="transfer",
                    )
                )
                ready = max(ready, finish)

            use_sparse = self.sparse and self.profile.has(node, pe_name, precision, True)
            entry = self.profile.lookup(node, pe_name, precision, use_sparse)
            start = max(ready, queue_ready[pe_name])
            finish = start + entry.latency
            queue_ready[pe_name] = finish
            end_time[node] = finish
            total_energy += entry.energy
            timeline.append(
                ScheduledNode(node=node, queue=pe_name, start=start, end=finish)
            )
            task = graph.network_of(node)
            task_latencies[task] = max(task_latencies[task], finish)

        return ScheduleResult(
            timeline=timeline,
            task_latencies=task_latencies,
            energy=total_energy,
        )
