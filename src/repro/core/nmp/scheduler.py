"""List scheduling and latency estimation for mapping candidates.

Implements the paper's Section 4.3.2: every device (plus the unified memory
link used for inter-device transfers) gets an execution queue; nodes are
serialised within their queues following the topological order of the
multi-task graph; the end time of every node obeys

    End_T(node) = max(End_T(parent_1) ... End_T(parent_N), CurDeviceQ_T)
                  + Exec_T(node)                                     (Eq. 3)

and the candidate's latency is the critical-path maximum of the end times.
Data-transfer nodes are inserted automatically whenever a producer/consumer
pair is mapped to different devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...hw.pe import Platform
from ...hw.profiler import ProfileTable
from ...nn.graph import MultiTaskGraph
from .candidate import MappingCandidate

__all__ = ["ScheduledNode", "ScheduleResult", "ExecutionScheduler"]

_MEMORY_QUEUE = "unified_memory"


@dataclass(frozen=True)
class ScheduledNode:
    """One entry of the execution timeline."""

    node: str
    queue: str
    start: float
    end: float
    kind: str = "compute"  # "compute" or "transfer"

    @property
    def duration(self) -> float:
        """Execution time of this entry."""
        return self.end - self.start


@dataclass
class ScheduleResult:
    """Outcome of scheduling one mapping candidate."""

    timeline: List[ScheduledNode]
    task_latencies: Dict[str, float]
    energy: float

    @property
    def makespan(self) -> float:
        """Critical-path latency across all tasks (max node end time)."""
        if not self.timeline:
            return 0.0
        return max(entry.end for entry in self.timeline)

    @property
    def max_task_latency(self) -> float:
        """The objective of Equation 2: the slowest task's latency."""
        if not self.task_latencies:
            return 0.0
        return max(self.task_latencies.values())

    def device_busy_time(self) -> Dict[str, float]:
        """Total busy time per execution queue (for utilisation plots)."""
        busy: Dict[str, float] = {}
        for entry in self.timeline:
            busy[entry.queue] = busy.get(entry.queue, 0.0) + entry.duration
        return busy


class ExecutionScheduler:
    """Estimate the latency of a mapping candidate with per-device queues."""

    def __init__(
        self,
        platform: Platform,
        profile: ProfileTable,
        sparse: bool = False,
    ) -> None:
        self.platform = platform
        self.profile = profile
        self.sparse = sparse

    # ------------------------------------------------------------------
    def schedule(self, graph: MultiTaskGraph, mapping: MappingCandidate) -> ScheduleResult:
        """Schedule every compute node of ``graph`` per ``mapping`` (Eq. 3)."""
        queue_ready: Dict[str, float] = {pe.name: 0.0 for pe in self.platform}
        queue_ready[_MEMORY_QUEUE] = 0.0
        end_time: Dict[str, float] = {}
        timeline: List[ScheduledNode] = []
        task_latencies: Dict[str, float] = {name: 0.0 for name in graph.task_names}
        total_energy = 0.0

        for node in graph.nodes():
            spec = graph.spec(node)
            if not spec.kind.is_compute:
                # Pseudo layers take no time; they simply forward their parents' end.
                parents = graph.predecessors(node)
                end_time[node] = max((end_time[p] for p in parents), default=0.0)
                continue
            assignment = mapping[node]
            pe_name = assignment.pe
            precision = assignment.precision

            # Insert transfer nodes for parents mapped to a different device.
            ready = 0.0
            for parent in graph.predecessors(node):
                parent_end = end_time.get(parent, 0.0)
                parent_spec = graph.spec(parent)
                if not parent_spec.kind.is_compute or parent not in mapping:
                    ready = max(ready, parent_end)
                    continue
                parent_assignment = mapping[parent]
                if parent_assignment.pe == pe_name:
                    ready = max(ready, parent_end)
                    continue
                transfer_time = self.platform.transfer_time(
                    parent_spec.output_bytes(parent_assignment.precision),
                    parent_assignment.pe,
                    pe_name,
                )
                start = max(parent_end, queue_ready[_MEMORY_QUEUE])
                finish = start + transfer_time
                queue_ready[_MEMORY_QUEUE] = finish
                timeline.append(
                    ScheduledNode(
                        node=f"{parent}->{node}",
                        queue=_MEMORY_QUEUE,
                        start=start,
                        end=finish,
                        kind="transfer",
                    )
                )
                ready = max(ready, finish)

            use_sparse = self.sparse and self.profile.has(node, pe_name, precision, True)
            entry = self.profile.lookup(node, pe_name, precision, use_sparse)
            start = max(ready, queue_ready[pe_name])
            finish = start + entry.latency
            queue_ready[pe_name] = finish
            end_time[node] = finish
            total_energy += entry.energy
            timeline.append(
                ScheduledNode(node=node, queue=pe_name, start=start, end=finish)
            )
            task = graph.network_of(node)
            task_latencies[task] = max(task_latencies[task], finish)

        return ScheduleResult(
            timeline=timeline,
            task_latencies=task_latencies,
            energy=total_energy,
        )
