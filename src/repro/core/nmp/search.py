"""Pluggable search engine for the Network Mapping Problem (paper Section 4.3).

The search space of the NMP — every layer of every concurrently executing
network may go to any capable processing element at any supported precision —
grows as ``(#precisions * #PEs) ** #layers``, and the paper explores it with
an evolutionary algorithm (Figure 10 compares it against random sampling of
the same number of candidates).  This module generalises that comparison into
a strategy plug-in architecture:

* :class:`SearchStrategy` — the protocol a search strategy implements: it
  proposes an initial population and, given the evaluated previous
  population, the next one.  Strategies never evaluate candidates themselves.
* :class:`MapperEngine` — the shared driver.  It owns ONE
  :class:`~.objective.FitnessEvaluator` (and therefore one fitness cache, one
  flattened schedule and one per-task degradation cache) for any number of
  strategy runs over the same graph, tracks the best candidate, records the
  per-generation convergence history (Figure 10a), enforces an optional
  evaluation budget and stops early when the best fitness stagnates for
  ``patience`` generations.
* Four built-in strategies: :class:`EvolutionaryStrategy` (the paper's
  genetic search, bit-for-bit identical to the pre-engine ``NetworkMapper``
  for a given seed), :class:`RandomSearchStrategy` (the paper's Figure 10b
  baseline), :class:`SimulatedAnnealingStrategy` (parallel Metropolis chains
  with geometric cooling) and :class:`GreedyLayerwiseStrategy` (coordinate
  descent over layers: sweep every (PE, precision) option of one layer per
  generation).

``NetworkMapper`` and ``RandomSearchMapper`` remain as thin wrappers in
:mod:`.evolutionary` / :mod:`.random_search` for backwards compatibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from ...hw.pe import Platform
from ...hw.profiler import ProfileTable
from ...nn.accuracy import TaskAccuracyEvaluator
from ...nn.graph import MultiTaskGraph
from .candidate import Assignment, MappingCandidate
from .objective import FitnessBreakdown, FitnessEvaluator

__all__ = [
    "GenerationStats",
    "NMPConfig",
    "NMPResult",
    "SearchContext",
    "SearchStrategy",
    "EvolutionaryStrategy",
    "RandomSearchStrategy",
    "SimulatedAnnealingStrategy",
    "GreedyLayerwiseStrategy",
    "MapperEngine",
    "STRATEGIES",
    "make_strategy",
]


@dataclass(frozen=True)
class GenerationStats:
    """Best / mean fitness of one generation (Figure 10a data point)."""

    generation: int
    best_fitness: float
    mean_fitness: float
    best_latency: float


@dataclass(frozen=True)
class NMPConfig:
    """Hyper-parameters shared by every search strategy.

    ``max_evaluations`` bounds the number of candidate evaluations the engine
    *requests* (cached repeats included), so strategies with different
    population shapes can be compared under an equal budget.  ``patience``
    stops a run after that many consecutive generations without improvement
    of the best fitness.  Both default to off, which preserves the seed's
    fixed ``generations x population_size`` schedule.
    """

    population_size: int = 24
    generations: int = 20
    elite_fraction: float = 0.25
    mutation_layers: int = 2
    accuracy_threshold: float = 0.05
    full_precision_only: bool = False
    seed: int = 0
    max_evaluations: Optional[int] = None
    patience: Optional[int] = None

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 < self.elite_fraction <= 1.0:
            raise ValueError("elite_fraction must be in (0, 1]")
        if self.mutation_layers < 0:
            raise ValueError("mutation_layers must be non-negative")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1 when set")
        if self.patience is not None and self.patience < 1:
            raise ValueError("patience must be >= 1 when set")


@dataclass
class NMPResult:
    """Outcome of one search run.

    ``evaluations`` / ``cache_hits`` count *this run's* scheduler evaluations
    and fitness-cache hits even when several runs share one evaluator;
    ``requested_evaluations`` counts every candidate the engine asked the
    evaluator about (the budget currency).
    """

    best_candidate: MappingCandidate
    best_breakdown: FitnessBreakdown
    history: List[GenerationStats]
    evaluations: int
    cache_hits: int
    strategy: str = ""
    requested_evaluations: int = 0

    @property
    def best_latency(self) -> float:
        """Maximum task latency of the best mapping found."""
        return self.best_breakdown.max_task_latency

    @property
    def convergence(self) -> List[float]:
        """Best fitness per generation (Figure 10a series)."""
        return [g.best_fitness for g in self.history]


@dataclass
class SearchContext:
    """Everything a strategy may consult while proposing candidates."""

    graph: MultiTaskGraph
    platform: Platform
    config: NMPConfig
    rng: np.random.Generator
    initial_candidates: List[MappingCandidate]


@runtime_checkable
class SearchStrategy(Protocol):
    """Candidate-proposal protocol driven by :class:`MapperEngine`.

    Strategies are stateful across one run (``reset`` is called at the start
    of every run) and must draw all randomness from ``ctx.rng`` so that a
    fixed :attr:`NMPConfig.seed` makes the whole search deterministic.
    """

    name: str

    def reset(self) -> None:
        """Clear any per-run state before a new search starts."""

    def initial_population(self, ctx: SearchContext) -> List[MappingCandidate]:
        """Propose the first population."""

    def next_population(
        self,
        evaluated: List[Tuple[MappingCandidate, FitnessBreakdown]],
        ctx: SearchContext,
    ) -> List[MappingCandidate]:
        """Propose the next population given the evaluated previous one.

        ``evaluated`` is in population order (NOT ranked); strategies that
        need a ranking sort it themselves.
        """


def _warm_started_population(ctx: SearchContext) -> List[MappingCandidate]:
    """Warm starts truncated to the population size, padded with random candidates.

    Seeding with known-reasonable mappings (all-GPU, round-robin) guarantees
    the search never returns something worse than the heuristics it is
    compared against and speeds up convergence.
    """
    cfg = ctx.config
    population = [c.copy() for c in ctx.initial_candidates[: cfg.population_size]]
    while len(population) < cfg.population_size:
        population.append(
            MappingCandidate.random(
                ctx.graph,
                ctx.platform,
                ctx.rng,
                full_precision_only=cfg.full_precision_only,
            )
        )
    return population


def _ranked(
    evaluated: List[Tuple[MappingCandidate, FitnessBreakdown]]
) -> List[Tuple[MappingCandidate, FitnessBreakdown]]:
    """Stable sort by ascending fitness (ties keep population order)."""
    return sorted(evaluated, key=lambda pair: pair[1].fitness)


class EvolutionaryStrategy:
    """The paper's genetic search: elitism + neighbour-pair crossover + mutation.

    Reproduces the pre-engine ``NetworkMapper`` exactly: for a given
    :attr:`NMPConfig.seed` it consumes the RNG in the same order and
    therefore returns the same best candidate and convergence history.
    """

    name = "evolutionary"

    def reset(self) -> None:
        pass

    def initial_population(self, ctx: SearchContext) -> List[MappingCandidate]:
        return _warm_started_population(ctx)

    def next_population(
        self,
        evaluated: List[Tuple[MappingCandidate, FitnessBreakdown]],
        ctx: SearchContext,
    ) -> List[MappingCandidate]:
        cfg = ctx.config
        ranked = [c for c, _ in _ranked(evaluated)]
        num_elite = max(int(round(cfg.elite_fraction * cfg.population_size)), 1)
        elites = [c.copy() for c in ranked[:num_elite]]
        children: List[MappingCandidate] = []
        parents = ranked[: max(num_elite * 2, 2)]
        while len(children) < cfg.population_size - num_elite:
            i = int(ctx.rng.integers(len(parents) - 1)) if len(parents) > 1 else 0
            pair = (parents[i], parents[min(i + 1, len(parents) - 1)])
            # Paper crossover: one of the neighbouring parents is chosen as
            # the child with equal likelihood.
            chosen = pair[int(ctx.rng.integers(2))]
            child = chosen.mutate(
                ctx.graph,
                ctx.platform,
                ctx.rng,
                num_mutations=cfg.mutation_layers,
                full_precision_only=cfg.full_precision_only,
            )
            children.append(child)
        return elites + children


class RandomSearchStrategy:
    """Uniform random sampling (Figure 10b): a fresh population every generation.

    Ignores warm starts by design — the comparison against the evolutionary
    strategy isolates the effect of selection/crossover/mutation.
    """

    name = "random"

    def reset(self) -> None:
        pass

    def _sample(self, ctx: SearchContext) -> List[MappingCandidate]:
        cfg = ctx.config
        return [
            MappingCandidate.random(
                ctx.graph,
                ctx.platform,
                ctx.rng,
                full_precision_only=cfg.full_precision_only,
            )
            for _ in range(cfg.population_size)
        ]

    def initial_population(self, ctx: SearchContext) -> List[MappingCandidate]:
        return self._sample(ctx)

    def next_population(
        self,
        evaluated: List[Tuple[MappingCandidate, FitnessBreakdown]],
        ctx: SearchContext,
    ) -> List[MappingCandidate]:
        return self._sample(ctx)


class SimulatedAnnealingStrategy:
    """Parallel Metropolis chains with geometric cooling.

    Each population slot is one independent annealing chain.  Every
    generation each chain proposes a ``mutation_layers``-neighbour of its
    current state; a worse proposal is accepted with probability
    ``exp(-delta / T)``.  The initial temperature is derived from the spread
    of the initial population's fitness values so the first generations
    accept most moves, and cools by ``cooling`` per generation.
    """

    name = "annealing"

    def __init__(self, cooling: float = 0.85, initial_acceptance_scale: float = 1.0) -> None:
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if initial_acceptance_scale <= 0.0:
            raise ValueError("initial_acceptance_scale must be positive")
        self.cooling = cooling
        self.initial_acceptance_scale = initial_acceptance_scale
        self.reset()

    def reset(self) -> None:
        self._states: Optional[List[Tuple[MappingCandidate, float]]] = None
        self._temperature = 0.0

    def _propose(self, ctx: SearchContext) -> List[MappingCandidate]:
        cfg = ctx.config
        num_mutations = max(cfg.mutation_layers, 1)
        assert self._states is not None
        return [
            state.mutate(
                ctx.graph,
                ctx.platform,
                ctx.rng,
                num_mutations=num_mutations,
                full_precision_only=cfg.full_precision_only,
            )
            for state, _ in self._states
        ]

    def initial_population(self, ctx: SearchContext) -> List[MappingCandidate]:
        return _warm_started_population(ctx)

    def next_population(
        self,
        evaluated: List[Tuple[MappingCandidate, FitnessBreakdown]],
        ctx: SearchContext,
    ) -> List[MappingCandidate]:
        if self._states is None:
            # The evaluated initial population becomes the chain states.
            self._states = [(c, b.fitness) for c, b in evaluated]
            fitnesses = [b.fitness for _, b in evaluated]
            spread = float(np.std(fitnesses))
            scale = float(np.mean(np.abs(fitnesses)))
            self._temperature = self.initial_acceptance_scale * max(
                spread, 0.05 * scale, 1e-12
            )
            return self._propose(ctx)
        temperature = max(self._temperature, 1e-300)
        for i, (candidate, breakdown) in enumerate(evaluated):
            _, current_fitness = self._states[i]
            delta = breakdown.fitness - current_fitness
            if delta <= 0.0 or ctx.rng.random() < math.exp(-delta / temperature):
                self._states[i] = (candidate, breakdown.fitness)
        self._temperature *= self.cooling
        return self._propose(ctx)


class GreedyLayerwiseStrategy:
    """Greedy layer-wise local search (coordinate descent over layers).

    Starts from the best of the warm-started initial population and then, one
    layer per generation (cycling through the compute nodes in topological
    order), proposes every (PE, precision) option for that layer while the
    rest of the mapping is held fixed.  The engine's ranking picks the best
    variant, which becomes the incumbent for the next sweep step.  The
    incumbent itself is always among the variants, so the best fitness is
    monotonically non-increasing.
    """

    name = "greedy"

    def reset(self) -> None:
        self._incumbent: Optional[MappingCandidate] = None
        self._incumbent_fitness = float("inf")
        self._nodes: Optional[List[str]] = None
        self._cursor = 0

    def initial_population(self, ctx: SearchContext) -> List[MappingCandidate]:
        self._nodes = ctx.graph.compute_nodes()
        return _warm_started_population(ctx)

    def _variants(self, ctx: SearchContext) -> List[MappingCandidate]:
        assert self._incumbent is not None and self._nodes
        node = self._nodes[self._cursor % len(self._nodes)]
        self._cursor += 1
        spec = ctx.graph.spec(node)
        variants: List[MappingCandidate] = []
        for pe in ctx.platform.candidates_for(spec):
            if ctx.config.full_precision_only:
                precisions = [pe.highest_supported_precision()]
            else:
                precisions = list(pe.supported_precisions)
            for precision in precisions:
                variant = self._incumbent.copy()
                variant.assignments[node] = Assignment(pe.name, precision)
                variants.append(variant)
        return variants

    def next_population(
        self,
        evaluated: List[Tuple[MappingCandidate, FitnessBreakdown]],
        ctx: SearchContext,
    ) -> List[MappingCandidate]:
        best_candidate, best_breakdown = _ranked(evaluated)[0]
        if best_breakdown.fitness < self._incumbent_fitness:
            self._incumbent = best_candidate.copy()
            self._incumbent_fitness = best_breakdown.fitness
        return self._variants(ctx)


class MapperEngine:
    """Shared driver for every NMP search strategy.

    One engine owns one :class:`FitnessEvaluator` — and therefore one fitness
    cache, one flattened schedule of the graph and one per-task degradation
    cache — for any number of ``run`` calls, so strategy comparisons (Figure
    10) and repeated online remaps reuse each other's work.

    Parameters mirror the original ``NetworkMapper``; ``evaluator`` lets
    callers share an existing evaluator across engines.
    """

    def __init__(
        self,
        graph: MultiTaskGraph,
        platform: Platform,
        profile: ProfileTable,
        config: Optional[NMPConfig] = None,
        accuracy_evaluators: Optional[Dict[str, TaskAccuracyEvaluator]] = None,
        sparse: bool = True,
        initial_candidates: Optional[List[MappingCandidate]] = None,
        evaluator: Optional[FitnessEvaluator] = None,
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.profile = profile
        self.config = config or NMPConfig()
        self.evaluator = evaluator or FitnessEvaluator(
            graph,
            platform,
            profile,
            accuracy_evaluators=accuracy_evaluators,
            accuracy_threshold=self.config.accuracy_threshold,
            sparse=sparse,
        )
        self.initial_candidates = list(initial_candidates or [])

    # ------------------------------------------------------------------
    def run(
        self,
        strategy: SearchStrategy,
        initial_candidates: Optional[Sequence[MappingCandidate]] = None,
        config: Optional[NMPConfig] = None,
    ) -> NMPResult:
        """Drive ``strategy`` to completion and return the best mapping found.

        ``config`` overrides the engine's default configuration for this run
        (e.g. to hand different strategies an equal ``max_evaluations``
        budget); ``initial_candidates`` overrides the warm starts.  The
        ``accuracy_threshold`` cannot be overridden per run — it is baked
        into the shared evaluator (and its fitness cache) at engine
        construction, so a differing value raises rather than being
        silently ignored.
        """
        cfg = config or self.config
        if cfg.accuracy_threshold != self.evaluator.accuracy_threshold:
            raise ValueError(
                "accuracy_threshold cannot be overridden per run: the shared "
                f"FitnessEvaluator was built with {self.evaluator.accuracy_threshold}, "
                f"got {cfg.accuracy_threshold}; construct a new MapperEngine instead"
            )
        seeds = list(
            self.initial_candidates if initial_candidates is None else initial_candidates
        )
        ctx = SearchContext(
            graph=self.graph,
            platform=self.platform,
            config=cfg,
            rng=np.random.default_rng(cfg.seed),
            initial_candidates=seeds,
        )
        strategy.reset()
        evaluations_before = self.evaluator.evaluations
        cache_hits_before = self.evaluator.cache_hits
        requested = 0
        best_candidate: Optional[MappingCandidate] = None
        best_breakdown: Optional[FitnessBreakdown] = None
        history: List[GenerationStats] = []
        stale_generations = 0

        population = strategy.initial_population(ctx)
        generation = 0
        while population:
            if cfg.max_evaluations is not None:
                remaining = cfg.max_evaluations - requested
                if remaining <= 0:
                    break
                population = population[:remaining]
            evaluated = [(c, self.evaluator.evaluate(c)) for c in population]
            requested += len(evaluated)
            ranked = _ranked(evaluated)
            gen_best_candidate, gen_best = ranked[0]
            if best_breakdown is None or gen_best.fitness < best_breakdown.fitness:
                best_candidate, best_breakdown = gen_best_candidate.copy(), gen_best
                stale_generations = 0
            else:
                stale_generations += 1
            history.append(
                GenerationStats(
                    generation=generation,
                    best_fitness=best_breakdown.fitness,
                    # Mean over the ranked order: summation order is part of
                    # the bit-for-bit seed-reproduction contract.
                    mean_fitness=float(np.mean([b.fitness for _, b in ranked])),
                    best_latency=best_breakdown.max_task_latency,
                )
            )
            generation += 1
            if generation >= cfg.generations:
                break
            if cfg.patience is not None and stale_generations >= cfg.patience:
                break
            if cfg.max_evaluations is not None and requested >= cfg.max_evaluations:
                break
            population = strategy.next_population(evaluated, ctx)

        assert best_candidate is not None and best_breakdown is not None
        return NMPResult(
            best_candidate=best_candidate,
            best_breakdown=best_breakdown,
            history=history,
            evaluations=self.evaluator.evaluations - evaluations_before,
            cache_hits=self.evaluator.cache_hits - cache_hits_before,
            strategy=strategy.name,
            requested_evaluations=requested,
        )

    def run_named(self, strategy_name: str, **kwargs) -> NMPResult:
        """Convenience wrapper: ``run(make_strategy(strategy_name), ...)``."""
        return self.run(make_strategy(strategy_name), **kwargs)

    def equal_budget_config(self, generous_generations: int = 10_000) -> NMPConfig:
        """The engine's config with ``max_evaluations`` pinned to its schedule.

        Strategies whose population shape differs from the evolutionary
        ``generations x population_size`` grid (e.g. the greedy layer sweep)
        run with this config so every strategy spends the same budget.
        """
        budget = self.config.generations * self.config.population_size
        return replace(
            self.config,
            max_evaluations=budget,
            generations=max(self.config.generations, generous_generations),
        )


#: Registry of built-in strategies for name-based construction.
STRATEGIES = {
    "evolutionary": EvolutionaryStrategy,
    "random": RandomSearchStrategy,
    "annealing": SimulatedAnnealingStrategy,
    "greedy": GreedyLayerwiseStrategy,
}


def make_strategy(name: str, **kwargs) -> SearchStrategy:
    """Instantiate a registered strategy by name."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown search strategy '{name}' (available: {sorted(STRATEGIES)})"
        ) from None
    return factory(**kwargs)
