"""Mapping candidates for the Network Mapper's evolutionary search.

A candidate assigns every compute layer of the multi-task graph to one
processing element and one precision supported by that element (paper
Section 4.3.1).  Candidates know how to generate themselves randomly, mutate
and produce a hashable key for fitness caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ...hw.pe import Platform
from ...nn.graph import MultiTaskGraph
from ...nn.quantization import Precision

__all__ = ["Assignment", "MappingCandidate"]


@dataclass(frozen=True)
class Assignment:
    """Placement of one layer: which device and at which precision."""

    pe: str
    precision: Precision


class MappingCandidate:
    """A complete mapping of every compute node to (device, precision)."""

    def __init__(self, assignments: Dict[str, Assignment]) -> None:
        self.assignments = dict(assignments)

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        graph: MultiTaskGraph,
        platform: Platform,
        rng: np.random.Generator,
        full_precision_only: bool = False,
    ) -> "MappingCandidate":
        """Sample a uniformly random valid candidate.

        ``full_precision_only`` restricts the precision choice to the highest
        precision each device supports (the Ev-Edge-NMP-FP variant).
        """
        assignments: Dict[str, Assignment] = {}
        for node in graph.compute_nodes():
            spec = graph.spec(node)
            candidates = platform.candidates_for(spec)
            pe = candidates[rng.integers(len(candidates))]
            if full_precision_only:
                precision = pe.highest_supported_precision()
            else:
                precisions = list(pe.supported_precisions)
                precision = precisions[rng.integers(len(precisions))]
            assignments[node] = Assignment(pe.name, precision)
        return cls(assignments)

    @classmethod
    def uniform(
        cls,
        graph: MultiTaskGraph,
        pe_name: str,
        precision: Precision,
    ) -> "MappingCandidate":
        """Map every compute node to the same device and precision."""
        return cls(
            {node: Assignment(pe_name, precision) for node in graph.compute_nodes()}
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.assignments)

    def __getitem__(self, node: str) -> Assignment:
        return self.assignments[node]

    def __contains__(self, node: str) -> bool:
        return node in self.assignments

    def key(self) -> Tuple:
        """Hashable identity used for fitness caching."""
        return tuple(
            (node, a.pe, a.precision.value) for node, a in sorted(self.assignments.items())
        )

    def copy(self) -> "MappingCandidate":
        """Independent copy of the candidate."""
        return MappingCandidate(dict(self.assignments))

    # ------------------------------------------------------------------
    def mutate(
        self,
        graph: MultiTaskGraph,
        platform: Platform,
        rng: np.random.Generator,
        num_mutations: int = 2,
        full_precision_only: bool = False,
    ) -> "MappingCandidate":
        """Return a copy with ``num_mutations`` random layers re-assigned.

        This is the paper's mutation operator: "a specified number of layers
        in each task is replaced with a random mapping resource and precision
        choice".
        """
        child = self.copy()
        nodes = list(child.assignments)
        if not nodes:
            return child
        num_mutations = min(max(num_mutations, 0), len(nodes))
        chosen = rng.choice(len(nodes), size=num_mutations, replace=False)
        for idx in np.atleast_1d(chosen):
            node = nodes[int(idx)]
            spec = graph.spec(node)
            candidates = platform.candidates_for(spec)
            pe = candidates[rng.integers(len(candidates))]
            if full_precision_only:
                precision = pe.highest_supported_precision()
            else:
                precisions = list(pe.supported_precisions)
                precision = precisions[rng.integers(len(precisions))]
            child.assignments[node] = Assignment(pe.name, precision)
        return child

    # ------------------------------------------------------------------
    def task_precisions(self, graph: MultiTaskGraph, task_name: str) -> List[Precision]:
        """Per-layer precisions of one task, in topological layer order."""
        return [
            self.assignments[node].precision
            for node in graph.compute_nodes()
            if graph.network_of(node) == task_name
        ]

    def pe_utilisation(self) -> Dict[str, int]:
        """Number of layers mapped to each device."""
        counts: Dict[str, int] = {}
        for a in self.assignments.values():
            counts[a.pe] = counts.get(a.pe, 0) + 1
        return counts

    def __repr__(self) -> str:
        return f"MappingCandidate(nodes={len(self)}, utilisation={self.pe_utilisation()})"
