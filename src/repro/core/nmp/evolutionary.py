"""Evolutionary search of the Network Mapper (paper Section 4.3.1).

The search space — every layer of every concurrently executing network may go
to any capable processing element at any supported precision — grows as
``(#precisions * #PEs) ** #layers``, so the mapper explores it with a genetic
algorithm:

1. sample a random initial population of mapping candidates;
2. evaluate each candidate's fitness (Equation 2) with the list scheduler and
   the (subset-sampled, cached) accuracy evaluators;
3. keep the fittest candidates as parents ("elitism"), create children by the
   paper's neighbour-pair crossover (one of each neighbouring pair of parents
   survives with equal likelihood) and mutate a fixed number of layers per
   child;
4. repeat for a configured number of generations, recording the best and mean
   fitness per generation (the convergence curve of Figure 10a).

Since the search-engine refactor the actual loop lives in
:class:`~.search.MapperEngine` driving :class:`~.search.EvolutionaryStrategy`;
:class:`NetworkMapper` is kept as a thin compatibility wrapper with the
original constructor and ``run()`` signature.  For a given
:attr:`NMPConfig.seed` it returns exactly the result the pre-engine
implementation produced.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...hw.pe import Platform
from ...hw.profiler import ProfileTable
from ...nn.accuracy import TaskAccuracyEvaluator
from ...nn.graph import MultiTaskGraph
from .candidate import MappingCandidate
from .search import (
    EvolutionaryStrategy,
    GenerationStats,
    MapperEngine,
    NMPConfig,
    NMPResult,
)

__all__ = ["GenerationStats", "NMPConfig", "NMPResult", "NetworkMapper"]


class NetworkMapper:
    """Offline evolutionary mapper for concurrently executing networks."""

    def __init__(
        self,
        graph: MultiTaskGraph,
        platform: Platform,
        profile: ProfileTable,
        config: Optional[NMPConfig] = None,
        accuracy_evaluators: Optional[Dict[str, TaskAccuracyEvaluator]] = None,
        sparse: bool = True,
        initial_candidates: Optional[List[MappingCandidate]] = None,
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.profile = profile
        self.config = config or NMPConfig()
        self.engine = MapperEngine(
            graph,
            platform,
            profile,
            config=self.config,
            accuracy_evaluators=accuracy_evaluators,
            sparse=sparse,
            initial_candidates=initial_candidates,
        )
        self.evaluator = self.engine.evaluator
        self.initial_candidates = self.engine.initial_candidates

    def run(self) -> NMPResult:
        """Execute the configured number of generations and return the best mapping."""
        return self.engine.run(EvolutionaryStrategy())
