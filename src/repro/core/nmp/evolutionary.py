"""Evolutionary search of the Network Mapper (paper Section 4.3.1).

The search space — every layer of every concurrently executing network may go
to any capable processing element at any supported precision — grows as
``(#precisions * #PEs) ** #layers``, so the mapper explores it with a genetic
algorithm:

1. sample a random initial population of mapping candidates;
2. evaluate each candidate's fitness (Equation 2) with the list scheduler and
   the (subset-sampled, cached) accuracy evaluators;
3. keep the fittest candidates as parents ("elitism"), create children by the
   paper's neighbour-pair crossover (one of each neighbouring pair of parents
   survives with equal likelihood) and mutate a fixed number of layers per
   child;
4. repeat for a configured number of generations, recording the best and mean
   fitness per generation (the convergence curve of Figure 10a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ...hw.pe import Platform
from ...hw.profiler import ProfileTable
from ...nn.accuracy import TaskAccuracyEvaluator
from ...nn.graph import MultiTaskGraph
from .candidate import MappingCandidate
from .objective import FitnessBreakdown, FitnessEvaluator

__all__ = ["GenerationStats", "NMPConfig", "NMPResult", "NetworkMapper"]


@dataclass(frozen=True)
class GenerationStats:
    """Best / mean fitness of one generation (Figure 10a data point)."""

    generation: int
    best_fitness: float
    mean_fitness: float
    best_latency: float


@dataclass(frozen=True)
class NMPConfig:
    """Hyper-parameters of the evolutionary search."""

    population_size: int = 24
    generations: int = 20
    elite_fraction: float = 0.25
    mutation_layers: int = 2
    accuracy_threshold: float = 0.05
    full_precision_only: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 < self.elite_fraction <= 1.0:
            raise ValueError("elite_fraction must be in (0, 1]")
        if self.mutation_layers < 0:
            raise ValueError("mutation_layers must be non-negative")


@dataclass
class NMPResult:
    """Outcome of one Network Mapper run."""

    best_candidate: MappingCandidate
    best_breakdown: FitnessBreakdown
    history: List[GenerationStats]
    evaluations: int
    cache_hits: int

    @property
    def best_latency(self) -> float:
        """Maximum task latency of the best mapping found."""
        return self.best_breakdown.max_task_latency

    @property
    def convergence(self) -> List[float]:
        """Best fitness per generation (Figure 10a series)."""
        return [g.best_fitness for g in self.history]


class NetworkMapper:
    """Offline evolutionary mapper for concurrently executing networks."""

    def __init__(
        self,
        graph: MultiTaskGraph,
        platform: Platform,
        profile: ProfileTable,
        config: Optional[NMPConfig] = None,
        accuracy_evaluators: Optional[Dict[str, TaskAccuracyEvaluator]] = None,
        sparse: bool = True,
        initial_candidates: Optional[List[MappingCandidate]] = None,
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.profile = profile
        self.config = config or NMPConfig()
        self.evaluator = FitnessEvaluator(
            graph,
            platform,
            profile,
            accuracy_evaluators=accuracy_evaluators,
            accuracy_threshold=self.config.accuracy_threshold,
            sparse=sparse,
        )
        self.initial_candidates = list(initial_candidates or [])
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _initial_population(self) -> List[MappingCandidate]:
        """Random candidates, optionally warm-started with heuristic seeds.

        Seeding the population with known-reasonable mappings (all-GPU,
        round-robin) guarantees the search never returns something worse than
        the heuristics it is compared against and speeds up convergence.
        """
        population = [c.copy() for c in self.initial_candidates[: self.config.population_size]]
        while len(population) < self.config.population_size:
            population.append(
                MappingCandidate.random(
                    self.graph,
                    self.platform,
                    self._rng,
                    full_precision_only=self.config.full_precision_only,
                )
            )
        return population

    def _next_generation(
        self, ranked: List[MappingCandidate]
    ) -> List[MappingCandidate]:
        """Elitism + neighbour-pair crossover + mutation."""
        cfg = self.config
        num_elite = max(int(round(cfg.elite_fraction * cfg.population_size)), 1)
        elites = [c.copy() for c in ranked[:num_elite]]
        children: List[MappingCandidate] = []
        parents = ranked[: max(num_elite * 2, 2)]
        while len(children) < cfg.population_size - num_elite:
            i = int(self._rng.integers(len(parents) - 1)) if len(parents) > 1 else 0
            pair = (parents[i], parents[min(i + 1, len(parents) - 1)])
            # Paper crossover: one of the neighbouring parents is chosen as
            # the child with equal likelihood.
            chosen = pair[int(self._rng.integers(2))]
            child = chosen.mutate(
                self.graph,
                self.platform,
                self._rng,
                num_mutations=cfg.mutation_layers,
                full_precision_only=cfg.full_precision_only,
            )
            children.append(child)
        return elites + children

    # ------------------------------------------------------------------
    def run(self) -> NMPResult:
        """Execute the configured number of generations and return the best mapping."""
        population = self._initial_population()
        history: List[GenerationStats] = []
        best_candidate: Optional[MappingCandidate] = None
        best_breakdown: Optional[FitnessBreakdown] = None

        for generation in range(self.config.generations):
            evaluated = [(c, self.evaluator.evaluate(c)) for c in population]
            evaluated.sort(key=lambda pair: pair[1].fitness)
            gen_best_candidate, gen_best = evaluated[0]
            if best_breakdown is None or gen_best.fitness < best_breakdown.fitness:
                best_candidate, best_breakdown = gen_best_candidate.copy(), gen_best
            history.append(
                GenerationStats(
                    generation=generation,
                    best_fitness=gen_best.fitness,
                    mean_fitness=float(np.mean([b.fitness for _, b in evaluated])),
                    best_latency=gen_best.max_task_latency,
                )
            )
            population = self._next_generation([c for c, _ in evaluated])

        assert best_candidate is not None and best_breakdown is not None
        return NMPResult(
            best_candidate=best_candidate,
            best_breakdown=best_breakdown,
            history=history,
            evaluations=self.evaluator.evaluations,
            cache_hits=self.evaluator.cache_hits,
        )
