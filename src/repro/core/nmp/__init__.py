"""Network Mapper (NMP): evolutionary layer-to-PE mapping with precision search."""

from .candidate import Assignment, MappingCandidate
from .evolutionary import GenerationStats, NMPConfig, NMPResult, NetworkMapper
from .objective import FitnessBreakdown, FitnessEvaluator
from .random_search import RandomSearchMapper
from .scheduler import ExecutionScheduler, ScheduledNode, ScheduleResult

__all__ = [
    "Assignment",
    "MappingCandidate",
    "ExecutionScheduler",
    "ScheduleResult",
    "ScheduledNode",
    "FitnessEvaluator",
    "FitnessBreakdown",
    "NetworkMapper",
    "NMPConfig",
    "NMPResult",
    "GenerationStats",
    "RandomSearchMapper",
]
