"""Network Mapper (NMP): pluggable layer-to-PE mapping search with precision choice."""

from .candidate import Assignment, MappingCandidate
from .evolutionary import NetworkMapper
from .objective import FitnessBreakdown, FitnessEvaluator
from .random_search import RandomSearchMapper
from .scheduler import ExecutionScheduler, FlatGraph, ScheduledNode, ScheduleResult
from .search import (
    EvolutionaryStrategy,
    GenerationStats,
    GreedyLayerwiseStrategy,
    MapperEngine,
    NMPConfig,
    NMPResult,
    RandomSearchStrategy,
    STRATEGIES,
    SearchContext,
    SearchStrategy,
    SimulatedAnnealingStrategy,
    make_strategy,
)

__all__ = [
    "Assignment",
    "MappingCandidate",
    "ExecutionScheduler",
    "FlatGraph",
    "ScheduleResult",
    "ScheduledNode",
    "FitnessEvaluator",
    "FitnessBreakdown",
    "NetworkMapper",
    "NMPConfig",
    "NMPResult",
    "GenerationStats",
    "RandomSearchMapper",
    "MapperEngine",
    "SearchContext",
    "SearchStrategy",
    "EvolutionaryStrategy",
    "RandomSearchStrategy",
    "SimulatedAnnealingStrategy",
    "GreedyLayerwiseStrategy",
    "STRATEGIES",
    "make_strategy",
]
