"""Ev-Edge core: E2SF, DSFA and the Network Mapper, plus the integrated pipeline."""

from .config import EvEdgeConfig, OptimizationLevel
from .dsfa import (
    BucketStatus,
    DSFAConfig,
    DynamicSparseFrameAggregator,
    MergeBucket,
    MergeMode,
)
from .e2sf import E2SFReport, Event2SparseFrameConverter
from .nmp import (
    Assignment,
    ExecutionScheduler,
    FitnessBreakdown,
    FitnessEvaluator,
    GenerationStats,
    MappingCandidate,
    NetworkMapper,
    NMPConfig,
    NMPResult,
    RandomSearchMapper,
    ScheduleResult,
    ScheduledNode,
)
from .pipeline import EvEdgePipeline, InferenceRecord, PipelineReport

__all__ = [
    "Event2SparseFrameConverter",
    "E2SFReport",
    "DynamicSparseFrameAggregator",
    "DSFAConfig",
    "MergeBucket",
    "MergeMode",
    "BucketStatus",
    "Assignment",
    "MappingCandidate",
    "ExecutionScheduler",
    "ScheduleResult",
    "ScheduledNode",
    "FitnessEvaluator",
    "FitnessBreakdown",
    "NetworkMapper",
    "NMPConfig",
    "NMPResult",
    "GenerationStats",
    "RandomSearchMapper",
    "EvEdgeConfig",
    "OptimizationLevel",
    "EvEdgePipeline",
    "PipelineReport",
    "InferenceRecord",
]
