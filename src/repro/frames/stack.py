"""Columnar COO frame stacks: many sparse frames in one set of buffers.

The per-frame data plane allocates four small numpy arrays per
``SparseFrame`` — thousands of tiny allocations per compiled stream at fleet
scale, plus a Python property walk per density query.  A :class:`FrameStack`
stores an entire rendering (every ``(interval, bin)`` of a recording, or
every merged bucket of a DSFA dispatch) as **one** contiguous set of
``rows/cols/pos/neg`` buffers with a CSR-style ``offsets`` array over
frames, per-frame ``t_starts``/``t_ends`` columns, and a cached flat
pixel-key buffer shared by every sliced frame view.

Operations on the stack are vectorised across frames:

* :meth:`FrameStack.densities` — all per-frame spatial densities from one
  ``np.diff`` over ``offsets`` (no per-frame property walks);
* :meth:`FrameStack.frame` — a zero-copy :class:`~repro.frames.sparse.
  SparseFrame` view over the buffers (buffer slices share memory with the
  stack and carry their slice of the key cache);
* :meth:`FrameStack.merge_groups` — the segmented merge kernel behind DSFA
  dispatches: merges *all* buckets of a dispatch in one grouped-reduce pass
  instead of one ``np.unique`` round trip per bucket;
* :func:`segment_add` / :func:`segment_average` — single-group wrappers, the
  allocation-lean path behind :meth:`SparseFrame.add` /
  :meth:`SparseFrame.average`.

All kernels are bit-identical to the per-frame reference path (stable sort,
input-order accumulation; see :func:`~repro.frames.sparse._grouped_reduce`)
and run pure numpy — numba, when present, accelerates the inner reduction
through :mod:`repro.frames._jit`, but is never required.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .sparse import SparseFrame, _grouped_reduce

__all__ = ["FrameStack", "segment_add", "segment_average"]


class FrameStack:
    """A sequence of same-geometry sparse frames in contiguous COO buffers.

    Parameters
    ----------
    rows, cols, pos, neg:
        Concatenated COO columns of every frame, frame-major (frame ``i``
        occupies ``[offsets[i], offsets[i+1])``).
    offsets:
        CSR-style int64 array of length ``num_frames + 1`` with
        ``offsets[0] == 0`` and ``offsets[-1] == rows.size``.
    t_starts, t_ends:
        Per-frame time bounds (float64, length ``num_frames``).
    height, width:
        Shared dense frame dimensions.
    flat:
        Optional precomputed ``row * width + col`` keys (int64, same length
        as ``rows``); computed lazily when omitted.
    """

    __slots__ = (
        "rows",
        "cols",
        "pos",
        "neg",
        "offsets",
        "t_starts",
        "t_ends",
        "height",
        "width",
        "_flat",
        "_dens",
        "_ts_list",
        "_te_list",
        "_d_list",
    )

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        pos: np.ndarray,
        neg: np.ndarray,
        offsets: np.ndarray,
        t_starts: np.ndarray,
        t_ends: np.ndarray,
        height: int,
        width: int,
        flat: Optional[np.ndarray] = None,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int32)
        cols = np.asarray(cols, dtype=np.int32)
        pos = np.asarray(pos, dtype=np.float64)
        neg = np.asarray(neg, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        t_starts = np.asarray(t_starts, dtype=np.float64)
        t_ends = np.asarray(t_ends, dtype=np.float64)
        if not (rows.shape == cols.shape == pos.shape == neg.shape):
            raise ValueError("rows, cols, pos, neg must have identical shapes")
        if rows.ndim != 1:
            raise ValueError("stack columns must be one-dimensional")
        if height <= 0 or width <= 0:
            raise ValueError("frame dimensions must be positive")
        if offsets.ndim != 1 or offsets.size < 1:
            raise ValueError("offsets must be a non-empty one-dimensional array")
        if offsets[0] != 0 or offsets[-1] != rows.size:
            raise ValueError("offsets must start at 0 and end at the buffer length")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if not (t_starts.shape == t_ends.shape == (offsets.size - 1,)):
            raise ValueError("t_starts/t_ends must have one entry per frame")
        if rows.size:
            if rows.min() < 0 or rows.max() >= height:
                raise ValueError("row indices out of bounds")
            if cols.min() < 0 or cols.max() >= width:
                raise ValueError("column indices out of bounds")
        self.rows = rows
        self.cols = cols
        self.pos = pos
        self.neg = neg
        self.offsets = offsets
        self.t_starts = t_starts
        self.t_ends = t_ends
        self.height = int(height)
        self.width = int(width)
        self._flat = None if flat is None else np.asarray(flat, dtype=np.int64)
        self._dens = None
        self._ts_list = None
        self._te_list = None
        self._d_list = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def _view(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        pos: np.ndarray,
        neg: np.ndarray,
        offsets: np.ndarray,
        t_starts: np.ndarray,
        t_ends: np.ndarray,
        height: int,
        width: int,
        flat: Optional[np.ndarray] = None,
    ) -> "FrameStack":
        """Trusted constructor: adopt kernel-produced buffers without
        re-validating them (the kernels guarantee the invariants)."""
        stack = cls.__new__(cls)
        stack.rows = rows
        stack.cols = cols
        stack.pos = pos
        stack.neg = neg
        stack.offsets = offsets
        stack.t_starts = t_starts
        stack.t_ends = t_ends
        stack.height = height
        stack.width = width
        stack._flat = flat
        stack._dens = None
        stack._ts_list = None
        stack._te_list = None
        stack._d_list = None
        return stack

    @classmethod
    def from_frames(cls, frames: Sequence[SparseFrame]) -> "FrameStack":
        """Pack existing sparse frames into one contiguous stack."""
        frames = list(frames)
        if not frames:
            raise ValueError("cannot build a stack from an empty frame list")
        h, w = frames[0].height, frames[0].width
        for f in frames[1:]:
            if (f.height, f.width) != (h, w):
                raise ValueError("all frames must share the same dimensions")
        offsets = np.zeros(len(frames) + 1, dtype=np.int64)
        np.cumsum([f.num_active for f in frames], out=offsets[1:])
        return cls(
            np.concatenate([f.rows for f in frames]),
            np.concatenate([f.cols for f in frames]),
            np.concatenate([f.pos for f in frames]),
            np.concatenate([f.neg for f in frames]),
            offsets,
            np.array([f.t_start for f in frames], dtype=np.float64),
            np.array([f.t_end for f in frames], dtype=np.float64),
            h,
            w,
        )

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Number of frames in the stack."""
        return int(self.offsets.size - 1)

    def __len__(self) -> int:
        return self.num_frames

    def __iter__(self):
        for i in range(self.num_frames):
            yield self.frame(i)

    def __repr__(self) -> str:
        return (
            f"FrameStack({self.num_frames} frames, {self.height}x{self.width}, "
            f"nnz={self.rows.size})"
        )

    @property
    def total_active(self) -> int:
        """Total active sites across every frame."""
        return int(self.rows.size)

    def flat_buffer(self) -> np.ndarray:
        """The (cached) flat ``row * width + col`` key buffer."""
        if self._flat is None:
            self._flat = self.rows.astype(np.int64) * self.width + self.cols
        return self._flat

    # ------------------------------------------------------------------
    # vectorised per-frame queries
    # ------------------------------------------------------------------
    def nnz_counts(self) -> np.ndarray:
        """Active sites per frame (int64), one ``np.diff`` over ``offsets``."""
        return np.diff(self.offsets)

    def densities(self) -> np.ndarray:
        """Per-frame spatial densities, vectorised (cached).

        Equals ``[stack.frame(i).density for i in range(len(stack))]``
        without materialising a frame view per entry.  The column is cached:
        DSFA placement probes and batch cost queries read it repeatedly on
        the fleet hot path.  Callers must not mutate the returned array.
        """
        if self._dens is None:
            self._dens = self.nnz_counts() / float(self.height * self.width)
        return self._dens

    def frame_density(self, index: int) -> float:
        """Spatial density of frame ``index`` — O(1) off the cached
        :meth:`densities` column, bit-identical to ``frame(index).density``."""
        return float(self.densities()[index])

    def t_starts_list(self) -> List[float]:
        """``t_starts`` as a cached list of python floats.

        ``float64.tolist()`` round-trips every value exactly, so indexing
        this list is bit-identical to ``float(self.t_starts[i])`` — but a
        list index is a pointer load, while extracting a numpy scalar per
        DSFA push costs ~1µs.  Placement probes read one entry per frame.
        """
        if self._ts_list is None:
            self._ts_list = self.t_starts.tolist()
        return self._ts_list

    def t_ends_list(self) -> List[float]:
        """``t_ends`` as a cached list of python floats (exact, same
        rationale as :meth:`t_starts_list`)."""
        if self._te_list is None:
            self._te_list = self.t_ends.tolist()
        return self._te_list

    def densities_list(self) -> List[float]:
        """:meth:`densities` as a cached list of python floats (exact,
        same rationale as :meth:`t_starts_list`)."""
        if self._d_list is None:
            self._d_list = self.densities().tolist()
        return self._d_list

    def event_counts(self) -> np.ndarray:
        """Per-frame accumulated event counts (``pos + neg``), vectorised."""
        counts = np.zeros(self.num_frames, dtype=np.float64)
        if self.rows.size:
            starts = self.offsets[:-1]
            occupied = np.flatnonzero(np.diff(self.offsets) > 0)
            # reduceat cannot express empty segments directly: reduce only
            # the occupied frames and scatter the sums back.
            totals = np.add.reduceat(self.pos + self.neg, starts[occupied])
            counts[occupied] = totals
        return counts

    # ------------------------------------------------------------------
    # frame views
    # ------------------------------------------------------------------
    def frame(self, index: int) -> SparseFrame:
        """Zero-copy :class:`SparseFrame` view of frame ``index``.

        The view's columns are slices of the stack buffers (shared memory).
        Its flat-key cache is pre-seeded from the stack's key buffer only
        when that buffer already exists: computing the whole column just to
        seed one view would charge merged dispatch stacks — whose views are
        materialised for density reads that never touch the keys — an int64
        column per dispatch.  Callers that materialise every frame for
        key-consuming merges warm :meth:`flat_buffer` first.
        """
        if not 0 <= index < self.num_frames:
            raise IndexError(f"frame index {index} out of range")
        lo = int(self.offsets[index])
        hi = int(self.offsets[index + 1])
        return SparseFrame._view(
            self.rows[lo:hi],
            self.cols[lo:hi],
            self.pos[lo:hi],
            self.neg[lo:hi],
            self.height,
            self.width,
            float(self.t_starts[index]),
            float(self.t_ends[index]),
            flat=None if self._flat is None else self._flat[lo:hi],
        )

    def frames(self) -> List[SparseFrame]:
        """All frames as zero-copy views, in stack order."""
        return [self.frame(i) for i in range(self.num_frames)]

    def slice(self, start: int, stop: int) -> "FrameStack":
        """Zero-copy sub-stack over frames ``[start, stop)``.

        Buffer columns and time bounds are numpy views into this stack
        (shared memory); only the rebased ``offsets`` array is newly
        allocated.  A cached flat-key buffer is carried into the slice (as a
        view) when present — it is never computed just for the slice.  This
        is how shard workers and churned streams ship index ranges instead
        of frame lists; pickling a slice serialises only the sliced
        elements and drops the derived caches (see :meth:`__getstate__`).
        """
        if not 0 <= start <= stop <= self.num_frames:
            raise IndexError(
                f"slice [{start}, {stop}) out of range for {self.num_frames} frames"
            )
        lo = int(self.offsets[start])
        hi = int(self.offsets[stop])
        return FrameStack._view(
            self.rows[lo:hi],
            self.cols[lo:hi],
            self.pos[lo:hi],
            self.neg[lo:hi],
            self.offsets[start : stop + 1] - lo,
            self.t_starts[start:stop],
            self.t_ends[start:stop],
            self.height,
            self.width,
            flat=None if self._flat is None else self._flat[lo:hi],
        )

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        # The flat-key and density caches are derived data (and may alias
        # buffers of a parent stack) — rebuild them lazily on the other side
        # instead of shipping them through worker pipes.  Pickling array
        # views serialises only the viewed elements, so sliced sub-stacks
        # ship compactly.
        return (
            self.rows,
            self.cols,
            self.pos,
            self.neg,
            self.offsets,
            self.t_starts,
            self.t_ends,
            self.height,
            self.width,
        )

    def __setstate__(self, state) -> None:
        (
            self.rows,
            self.cols,
            self.pos,
            self.neg,
            self.offsets,
            self.t_starts,
            self.t_ends,
            self.height,
            self.width,
        ) = state
        self._flat = None
        self._dens = None
        self._ts_list = None
        self._te_list = None
        self._d_list = None

    # ------------------------------------------------------------------
    # segmented merge kernels
    # ------------------------------------------------------------------
    @classmethod
    def merge_groups(
        cls, groups: Sequence[Sequence[SparseFrame]], average: bool = False
    ) -> "FrameStack":
        """Merge every group of frames with cAdd (or cAverage) in one pass.

        This is the DSFA dispatch kernel: instead of one concatenate +
        ``np.unique`` round trip per merge bucket, the frames of *all*
        buckets are reduced together — group index folded into the sort key
        — and the merged frames come back as one stack (frame ``i`` is the
        merge of ``groups[i]``).  Bit-identical to merging each group with
        :meth:`SparseFrame.add` / :meth:`SparseFrame.average`: the grouped
        reduction accumulates in input order and the per-group time bounds
        are the same min/max.
        """
        groups = [list(group) for group in groups]
        if not groups:
            raise ValueError("cannot merge an empty list of groups")
        if any(not group for group in groups):
            raise ValueError("cannot merge an empty group")
        first = groups[0][0]
        h, w = first.height, first.width
        for group in groups:
            for f in group:
                if (f.height, f.width) != (h, w):
                    raise ValueError("all frames must share the same dimensions")
        num_pixels = h * w
        flat_parts: List[np.ndarray] = []
        pos_parts: List[np.ndarray] = []
        neg_parts: List[np.ndarray] = []
        group_sizes = np.zeros(len(groups), dtype=np.int64)
        for g, group in enumerate(groups):
            size = 0
            for f in group:
                flat_parts.append(f.flat_keys())
                pos_parts.append(f.pos)
                neg_parts.append(f.neg)
                size += f.num_active
            group_sizes[g] = size
        flat = np.concatenate(flat_parts)
        pos = np.concatenate(pos_parts)
        neg = np.concatenate(neg_parts)
        segment = np.repeat(np.arange(len(groups), dtype=np.int64), group_sizes)
        key = segment * num_pixels + flat
        unique_key, pos_sum, neg_sum = _grouped_reduce(key, pos, neg)
        unique_segment = unique_key // num_pixels
        unique_flat = unique_key - unique_segment * num_pixels
        if average:
            # Same elementwise multiply as SparseFrame.scale(1.0 / n).
            factors = np.array(
                [1.0 / len(group) for group in groups], dtype=np.float64
            )
            per_entry = factors[unique_segment]
            pos_sum = pos_sum * per_entry
            neg_sum = neg_sum * per_entry
        offsets = np.zeros(len(groups) + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(unique_segment, minlength=len(groups)), out=offsets[1:]
        )
        return cls._view(
            (unique_flat // w).astype(np.int32),
            (unique_flat % w).astype(np.int32),
            pos_sum,
            neg_sum,
            offsets,
            np.array([min(f.t_start for f in g) for g in groups], dtype=np.float64),
            np.array([max(f.t_end for f in g) for g in groups], dtype=np.float64),
            h,
            w,
            flat=unique_flat,
        )

    def merge_ranges(
        self, ranges: Sequence[Tuple[int, int]], average: bool = False
    ) -> "FrameStack":
        """Merge frame index ranges of *this* stack with cAdd (or cAverage).

        ``ranges`` is a sequence of non-empty ``(start, stop)`` frame-index
        ranges; merged frame ``i`` of the result is the merge of frames
        ``[ranges[i][0], ranges[i][1])``.  This is the slice-backed DSFA
        dispatch kernel: buckets that hold index ranges into one stream's
        stack merge without ever materialising per-frame views.  When the
        ranges are adjacent and ascending — always true for DSFA buckets,
        which partition a contiguous run of arrivals — the entry columns are
        one parent slice and nothing is concatenated at all.

        Bit-identical to :meth:`merge_groups` over the equivalent frame-view
        groups: the entry buffers, segment labels and grouped reduction are
        the same arrays in the same order.
        """
        if not len(ranges):
            raise ValueError("cannot merge an empty list of ranges")
        starts = np.array([r[0] for r in ranges], dtype=np.int64)
        stops = np.array([r[1] for r in ranges], dtype=np.int64)
        if np.any(stops <= starts):
            raise ValueError("cannot merge an empty range")
        if starts.min() < 0 or stops.max() > self.num_frames:
            raise IndexError("merge range out of bounds")
        lo = self.offsets[starts]
        hi = self.offsets[stops]
        if np.array_equal(starts[1:], stops[:-1]):
            # Adjacent ascending ranges: one contiguous parent slice.
            flat = self.flat_buffer()[int(lo[0]) : int(hi[-1])]
            pos = self.pos[int(lo[0]) : int(hi[-1])]
            neg = self.neg[int(lo[0]) : int(hi[-1])]
        else:
            whole = self.flat_buffer()
            flat = np.concatenate([whole[a:b] for a, b in zip(lo, hi)])
            pos = np.concatenate([self.pos[a:b] for a, b in zip(lo, hi)])
            neg = np.concatenate([self.neg[a:b] for a, b in zip(lo, hi)])
        num_pixels = self.height * self.width
        ts = self.t_starts_list()
        te = self.t_ends_list()
        segment = np.repeat(np.arange(len(ranges), dtype=np.int64), hi - lo)
        key = segment * num_pixels + flat
        unique_key, pos_sum, neg_sum = _grouped_reduce(key, pos, neg)
        unique_segment = unique_key // num_pixels
        unique_flat = unique_key - unique_segment * num_pixels
        if average:
            factors = 1.0 / (stops - starts).astype(np.float64)
            pos_sum = pos_sum * factors[unique_segment]
            neg_sum = neg_sum * factors[unique_segment]
        offsets = np.zeros(len(ranges) + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(unique_segment, minlength=len(ranges)), out=offsets[1:]
        )
        # The flat key cache is deliberately NOT carried onto the result:
        # dispatched batches sit in inference queues for a while and are
        # never re-merged, so retaining the int64 key column would grow the
        # fleet's steady-state footprint ~25% for keys nobody reads (they
        # recompute lazily in the rare paths that want them).
        return FrameStack._view(
            (unique_flat // self.width).astype(np.int32),
            (unique_flat % self.width).astype(np.int32),
            pos_sum,
            neg_sum,
            offsets,
            # min/max over the cached python-float columns: bit-identical
            # to the numpy reductions (same float64 values, no NaN) without
            # a ufunc dispatch per range.
            np.array(
                [min(ts[r[0] : r[1]]) for r in ranges], dtype=np.float64
            ),
            np.array(
                [max(te[r[0] : r[1]]) for r in ranges], dtype=np.float64
            ),
            self.height,
            self.width,
        )

    @staticmethod
    def segment_add(frames: Sequence[SparseFrame]) -> SparseFrame:
        """cAdd-merge one group of frames through the grouped-reduce kernel."""
        return SparseFrame.add(frames)

    @staticmethod
    def segment_average(frames: Sequence[SparseFrame]) -> SparseFrame:
        """cAverage-merge one group of frames through the grouped-reduce kernel."""
        return SparseFrame.average(frames)


# Module-level aliases for callers that want the kernel without the class.
segment_add = FrameStack.segment_add
segment_average = FrameStack.segment_average
