"""Columnar COO frame stacks: many sparse frames in one set of buffers.

The per-frame data plane allocates four small numpy arrays per
``SparseFrame`` — thousands of tiny allocations per compiled stream at fleet
scale, plus a Python property walk per density query.  A :class:`FrameStack`
stores an entire rendering (every ``(interval, bin)`` of a recording, or
every merged bucket of a DSFA dispatch) as **one** contiguous set of
``rows/cols/pos/neg`` buffers with a CSR-style ``offsets`` array over
frames, per-frame ``t_starts``/``t_ends`` columns, and a cached flat
pixel-key buffer shared by every sliced frame view.

Operations on the stack are vectorised across frames:

* :meth:`FrameStack.densities` — all per-frame spatial densities from one
  ``np.diff`` over ``offsets`` (no per-frame property walks);
* :meth:`FrameStack.frame` — a zero-copy :class:`~repro.frames.sparse.
  SparseFrame` view over the buffers (buffer slices share memory with the
  stack and carry their slice of the key cache);
* :meth:`FrameStack.merge_groups` — the segmented merge kernel behind DSFA
  dispatches: merges *all* buckets of a dispatch in one grouped-reduce pass
  instead of one ``np.unique`` round trip per bucket;
* :func:`segment_add` / :func:`segment_average` — single-group wrappers, the
  allocation-lean path behind :meth:`SparseFrame.add` /
  :meth:`SparseFrame.average`.

All kernels are bit-identical to the per-frame reference path (stable sort,
input-order accumulation; see :func:`~repro.frames.sparse._grouped_reduce`)
and run pure numpy — numba, when present, accelerates the inner reduction
through :mod:`repro.frames._jit`, but is never required.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .sparse import SparseFrame, _grouped_reduce

__all__ = ["FrameStack", "segment_add", "segment_average"]


class FrameStack:
    """A sequence of same-geometry sparse frames in contiguous COO buffers.

    Parameters
    ----------
    rows, cols, pos, neg:
        Concatenated COO columns of every frame, frame-major (frame ``i``
        occupies ``[offsets[i], offsets[i+1])``).
    offsets:
        CSR-style int64 array of length ``num_frames + 1`` with
        ``offsets[0] == 0`` and ``offsets[-1] == rows.size``.
    t_starts, t_ends:
        Per-frame time bounds (float64, length ``num_frames``).
    height, width:
        Shared dense frame dimensions.
    flat:
        Optional precomputed ``row * width + col`` keys (int64, same length
        as ``rows``); computed lazily when omitted.
    """

    __slots__ = (
        "rows",
        "cols",
        "pos",
        "neg",
        "offsets",
        "t_starts",
        "t_ends",
        "height",
        "width",
        "_flat",
    )

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        pos: np.ndarray,
        neg: np.ndarray,
        offsets: np.ndarray,
        t_starts: np.ndarray,
        t_ends: np.ndarray,
        height: int,
        width: int,
        flat: Optional[np.ndarray] = None,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int32)
        cols = np.asarray(cols, dtype=np.int32)
        pos = np.asarray(pos, dtype=np.float64)
        neg = np.asarray(neg, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        t_starts = np.asarray(t_starts, dtype=np.float64)
        t_ends = np.asarray(t_ends, dtype=np.float64)
        if not (rows.shape == cols.shape == pos.shape == neg.shape):
            raise ValueError("rows, cols, pos, neg must have identical shapes")
        if rows.ndim != 1:
            raise ValueError("stack columns must be one-dimensional")
        if height <= 0 or width <= 0:
            raise ValueError("frame dimensions must be positive")
        if offsets.ndim != 1 or offsets.size < 1:
            raise ValueError("offsets must be a non-empty one-dimensional array")
        if offsets[0] != 0 or offsets[-1] != rows.size:
            raise ValueError("offsets must start at 0 and end at the buffer length")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if not (t_starts.shape == t_ends.shape == (offsets.size - 1,)):
            raise ValueError("t_starts/t_ends must have one entry per frame")
        if rows.size:
            if rows.min() < 0 or rows.max() >= height:
                raise ValueError("row indices out of bounds")
            if cols.min() < 0 or cols.max() >= width:
                raise ValueError("column indices out of bounds")
        self.rows = rows
        self.cols = cols
        self.pos = pos
        self.neg = neg
        self.offsets = offsets
        self.t_starts = t_starts
        self.t_ends = t_ends
        self.height = int(height)
        self.width = int(width)
        self._flat = None if flat is None else np.asarray(flat, dtype=np.int64)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def _view(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        pos: np.ndarray,
        neg: np.ndarray,
        offsets: np.ndarray,
        t_starts: np.ndarray,
        t_ends: np.ndarray,
        height: int,
        width: int,
        flat: Optional[np.ndarray] = None,
    ) -> "FrameStack":
        """Trusted constructor: adopt kernel-produced buffers without
        re-validating them (the kernels guarantee the invariants)."""
        stack = cls.__new__(cls)
        stack.rows = rows
        stack.cols = cols
        stack.pos = pos
        stack.neg = neg
        stack.offsets = offsets
        stack.t_starts = t_starts
        stack.t_ends = t_ends
        stack.height = height
        stack.width = width
        stack._flat = flat
        return stack

    @classmethod
    def from_frames(cls, frames: Sequence[SparseFrame]) -> "FrameStack":
        """Pack existing sparse frames into one contiguous stack."""
        frames = list(frames)
        if not frames:
            raise ValueError("cannot build a stack from an empty frame list")
        h, w = frames[0].height, frames[0].width
        for f in frames[1:]:
            if (f.height, f.width) != (h, w):
                raise ValueError("all frames must share the same dimensions")
        offsets = np.zeros(len(frames) + 1, dtype=np.int64)
        np.cumsum([f.num_active for f in frames], out=offsets[1:])
        return cls(
            np.concatenate([f.rows for f in frames]),
            np.concatenate([f.cols for f in frames]),
            np.concatenate([f.pos for f in frames]),
            np.concatenate([f.neg for f in frames]),
            offsets,
            np.array([f.t_start for f in frames], dtype=np.float64),
            np.array([f.t_end for f in frames], dtype=np.float64),
            h,
            w,
        )

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Number of frames in the stack."""
        return int(self.offsets.size - 1)

    def __len__(self) -> int:
        return self.num_frames

    def __iter__(self):
        for i in range(self.num_frames):
            yield self.frame(i)

    def __repr__(self) -> str:
        return (
            f"FrameStack({self.num_frames} frames, {self.height}x{self.width}, "
            f"nnz={self.rows.size})"
        )

    @property
    def total_active(self) -> int:
        """Total active sites across every frame."""
        return int(self.rows.size)

    def flat_buffer(self) -> np.ndarray:
        """The (cached) flat ``row * width + col`` key buffer."""
        if self._flat is None:
            self._flat = self.rows.astype(np.int64) * self.width + self.cols
        return self._flat

    # ------------------------------------------------------------------
    # vectorised per-frame queries
    # ------------------------------------------------------------------
    def nnz_counts(self) -> np.ndarray:
        """Active sites per frame (int64), one ``np.diff`` over ``offsets``."""
        return np.diff(self.offsets)

    def densities(self) -> np.ndarray:
        """Per-frame spatial densities, vectorised.

        Equals ``[stack.frame(i).density for i in range(len(stack))]``
        without materialising a frame view per entry.
        """
        return self.nnz_counts() / float(self.height * self.width)

    def event_counts(self) -> np.ndarray:
        """Per-frame accumulated event counts (``pos + neg``), vectorised."""
        counts = np.zeros(self.num_frames, dtype=np.float64)
        if self.rows.size:
            starts = self.offsets[:-1]
            occupied = np.flatnonzero(np.diff(self.offsets) > 0)
            # reduceat cannot express empty segments directly: reduce only
            # the occupied frames and scatter the sums back.
            totals = np.add.reduceat(self.pos + self.neg, starts[occupied])
            counts[occupied] = totals
        return counts

    # ------------------------------------------------------------------
    # frame views
    # ------------------------------------------------------------------
    def frame(self, index: int) -> SparseFrame:
        """Zero-copy :class:`SparseFrame` view of frame ``index``.

        The view's columns are slices of the stack buffers (shared memory)
        and its flat-key cache is pre-seeded from the stack's key buffer.
        """
        if not 0 <= index < self.num_frames:
            raise IndexError(f"frame index {index} out of range")
        lo = int(self.offsets[index])
        hi = int(self.offsets[index + 1])
        return SparseFrame._view(
            self.rows[lo:hi],
            self.cols[lo:hi],
            self.pos[lo:hi],
            self.neg[lo:hi],
            self.height,
            self.width,
            float(self.t_starts[index]),
            float(self.t_ends[index]),
            flat=self.flat_buffer()[lo:hi],
        )

    def frames(self) -> List[SparseFrame]:
        """All frames as zero-copy views, in stack order."""
        return [self.frame(i) for i in range(self.num_frames)]

    # ------------------------------------------------------------------
    # segmented merge kernels
    # ------------------------------------------------------------------
    @classmethod
    def merge_groups(
        cls, groups: Sequence[Sequence[SparseFrame]], average: bool = False
    ) -> "FrameStack":
        """Merge every group of frames with cAdd (or cAverage) in one pass.

        This is the DSFA dispatch kernel: instead of one concatenate +
        ``np.unique`` round trip per merge bucket, the frames of *all*
        buckets are reduced together — group index folded into the sort key
        — and the merged frames come back as one stack (frame ``i`` is the
        merge of ``groups[i]``).  Bit-identical to merging each group with
        :meth:`SparseFrame.add` / :meth:`SparseFrame.average`: the grouped
        reduction accumulates in input order and the per-group time bounds
        are the same min/max.
        """
        groups = [list(group) for group in groups]
        if not groups:
            raise ValueError("cannot merge an empty list of groups")
        if any(not group for group in groups):
            raise ValueError("cannot merge an empty group")
        first = groups[0][0]
        h, w = first.height, first.width
        for group in groups:
            for f in group:
                if (f.height, f.width) != (h, w):
                    raise ValueError("all frames must share the same dimensions")
        num_pixels = h * w
        flat_parts: List[np.ndarray] = []
        pos_parts: List[np.ndarray] = []
        neg_parts: List[np.ndarray] = []
        group_sizes = np.zeros(len(groups), dtype=np.int64)
        for g, group in enumerate(groups):
            size = 0
            for f in group:
                flat_parts.append(f.flat_keys())
                pos_parts.append(f.pos)
                neg_parts.append(f.neg)
                size += f.num_active
            group_sizes[g] = size
        flat = np.concatenate(flat_parts)
        pos = np.concatenate(pos_parts)
        neg = np.concatenate(neg_parts)
        segment = np.repeat(np.arange(len(groups), dtype=np.int64), group_sizes)
        key = segment * num_pixels + flat
        unique_key, pos_sum, neg_sum = _grouped_reduce(key, pos, neg)
        unique_segment = unique_key // num_pixels
        unique_flat = unique_key - unique_segment * num_pixels
        if average:
            # Same elementwise multiply as SparseFrame.scale(1.0 / n).
            factors = np.array(
                [1.0 / len(group) for group in groups], dtype=np.float64
            )
            per_entry = factors[unique_segment]
            pos_sum = pos_sum * per_entry
            neg_sum = neg_sum * per_entry
        offsets = np.zeros(len(groups) + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(unique_segment, minlength=len(groups)), out=offsets[1:]
        )
        return cls._view(
            (unique_flat // w).astype(np.int32),
            (unique_flat % w).astype(np.int32),
            pos_sum,
            neg_sum,
            offsets,
            np.array([min(f.t_start for f in g) for g in groups], dtype=np.float64),
            np.array([max(f.t_end for f in g) for g in groups], dtype=np.float64),
            h,
            w,
            flat=unique_flat,
        )

    @staticmethod
    def segment_add(frames: Sequence[SparseFrame]) -> SparseFrame:
        """cAdd-merge one group of frames through the grouped-reduce kernel."""
        return SparseFrame.add(frames)

    @staticmethod
    def segment_average(frames: Sequence[SparseFrame]) -> SparseFrame:
        """cAverage-merge one group of frames through the grouped-reduce kernel."""
        return SparseFrame.average(frames)


# Module-level aliases for callers that want the kernel without the class.
segment_add = FrameStack.segment_add
segment_average = FrameStack.segment_average
