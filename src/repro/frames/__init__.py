"""Event frame representations: dense frames, sparse COO frames and conversions."""

from ._jit import HAS_NUMBA, jit_ifnumba
from .dense import (
    assign_event_bins,
    bin_boundaries,
    discretized_event_bins,
    ev_flownet_frame,
    event_count_frame,
    frame_occupancy,
    time_surface,
)
from .encoding import (
    ConversionCost,
    decode_cost,
    dense_to_sparse,
    encode_cost,
    events_to_sparse_cost,
    sparse_to_dense,
)
from .sparse import SparseFrame, SparseFrameBatch
from .stack import FrameStack, segment_add, segment_average

__all__ = [
    "SparseFrame",
    "SparseFrameBatch",
    "FrameStack",
    "segment_add",
    "segment_average",
    "HAS_NUMBA",
    "jit_ifnumba",
    "event_count_frame",
    "time_surface",
    "ev_flownet_frame",
    "discretized_event_bins",
    "bin_boundaries",
    "assign_event_bins",
    "frame_occupancy",
    "ConversionCost",
    "dense_to_sparse",
    "sparse_to_dense",
    "encode_cost",
    "decode_cost",
    "events_to_sparse_cost",
]
