"""Optional numba acceleration for the columnar frame kernels.

The data-plane kernels (:mod:`repro.frames.stack`) are written twice: a
vectorised numpy path that every environment runs, and tight per-element
loops that numba can compile to machine code when it happens to be
installed.  numba is **never** a dependency of this package — the decorator
below degrades to a no-op, the loop kernels simply stay unused, and the
numpy path serves production (the benchmark gates in
``benchmarks/bench_dataplane.py`` are asserted numpy-only).

This mirrors the ``jit_ifnumba`` idiom of rosettasciio's stream-to-sparse
readers: decorate unconditionally, dispatch on :data:`HAS_NUMBA` at the call
site.
"""

from __future__ import annotations

__all__ = ["HAS_NUMBA", "jit_ifnumba"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
except ImportError:
    numba = None
    HAS_NUMBA = False


def jit_ifnumba(*args, **kwargs):
    """``numba.njit`` when numba is importable, identity otherwise.

    Usable both bare (``@jit_ifnumba``) and with keyword options
    (``@jit_ifnumba(cache=True)``).  Without numba the decorated function is
    returned unchanged, so callers gating on :data:`HAS_NUMBA` never pay an
    interpreted per-element loop by accident.
    """
    if args and callable(args[0]) and not kwargs:
        func = args[0]
        if HAS_NUMBA:  # pragma: no cover - numba-only branch
            return numba.njit(cache=True)(func)
        return func

    def decorator(func):
        if HAS_NUMBA:  # pragma: no cover - numba-only branch
            return numba.njit(*args, **kwargs)(func)
        return func

    return decorator
