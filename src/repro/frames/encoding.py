"""Dense <-> sparse conversion with explicit overhead accounting.

The paper's argument for E2SF (Section 4.1) is that although dense event
frames *could* be converted to sparse tensors and processed with sparse
libraries, the encoding/decoding overhead outweighs the benefit.  To study
that trade-off quantitatively we model the conversion cost in elementary
operations and bytes moved, and expose both the "dense -> sparse" encode
path and the direct "events -> sparse" E2SF path for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .dense import discretized_event_bins
from .sparse import SparseFrame

__all__ = [
    "ConversionCost",
    "dense_to_sparse",
    "sparse_to_dense",
    "encode_cost",
    "decode_cost",
    "events_to_sparse_cost",
]


@dataclass(frozen=True)
class ConversionCost:
    """Cost of one representation conversion.

    Attributes
    ----------
    operations:
        Number of elementary scalar operations (comparisons, copies,
        additions) performed.
    bytes_read, bytes_written:
        Data volume moved through memory.
    """

    operations: int
    bytes_read: int
    bytes_written: int

    @property
    def total_bytes(self) -> int:
        """Total traffic in bytes."""
        return self.bytes_read + self.bytes_written

    def __add__(self, other: "ConversionCost") -> "ConversionCost":
        return ConversionCost(
            self.operations + other.operations,
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
        )


def dense_to_sparse(dense: np.ndarray) -> Tuple[SparseFrame, ConversionCost]:
    """Encode a dense ``(2, H, W)`` frame into COO format, with its cost.

    The encode pass must scan every dense pixel (that is the overhead the
    paper wants to avoid): ``operations = H*W`` comparisons plus one copy per
    non-zero.
    """
    frame = SparseFrame.from_dense(dense)
    _, h, w = dense.shape
    cost = ConversionCost(
        operations=h * w + 3 * frame.num_active,
        bytes_read=dense.size * 4,
        bytes_written=frame.nnz_bytes,
    )
    return frame, cost


def sparse_to_dense(frame: SparseFrame) -> Tuple[np.ndarray, ConversionCost]:
    """Decode a COO frame back to dense, with its cost.

    Decoding must zero-fill the whole dense frame and then scatter the
    non-zeros.  The cost is analytic (:func:`decode_cost` from the frame's
    ``nnz``) and the decode itself is the flat ``bincount`` scatter of
    :meth:`SparseFrame.to_dense` — nothing dense is built to price the
    conversion.
    """
    cost = decode_cost(frame.height, frame.width, frame.num_active)
    return frame.to_dense(), cost


def encode_cost(height: int, width: int, nnz: int) -> ConversionCost:
    """Analytic cost of dense->sparse encoding without materialising arrays."""
    return ConversionCost(
        operations=height * width + 3 * nnz,
        bytes_read=2 * height * width * 4,
        bytes_written=nnz * 24,
    )


def decode_cost(height: int, width: int, nnz: int) -> ConversionCost:
    """Analytic cost of sparse->dense decoding without materialising arrays."""
    return ConversionCost(
        operations=height * width + 2 * nnz,
        bytes_read=nnz * 24,
        bytes_written=2 * height * width * 4,
    )


def events_to_sparse_cost(num_events: int, nnz: int) -> ConversionCost:
    """Analytic cost of the direct E2SF path (events -> sparse frame).

    The direct path touches each event once (bin assignment + accumulate)
    and writes only the non-zero entries; crucially it never scans the dense
    pixel grid, so the cost is proportional to the number of events rather
    than the frame area.
    """
    return ConversionCost(
        operations=4 * num_events + nnz,
        bytes_read=num_events * 16,
        bytes_written=nnz * 24,
    )
