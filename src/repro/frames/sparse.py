"""Sparse frame representation (COO) used throughout Ev-Edge.

The Event2Sparse Frame converter (paper Section 4.1) accumulates the events
of one temporal bin into a *two-channel sparse frame*: for every active pixel
it stores the row index, the column index and the accumulated positive and
negative polarity counts — essentially the sparse Coordinate (COO) format.

:class:`SparseFrame` is that representation plus the operations the Dynamic
Sparse Frame Aggregator needs: element-wise add, average, batching
(concatenation), density queries and conversion to/from dense arrays.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ._jit import HAS_NUMBA, jit_ifnumba

__all__ = ["SparseFrame", "SparseFrameBatch"]


@jit_ifnumba
def _reduce_sorted_loop(sorted_flat, sorted_pos, sorted_neg, out_flat, out_pos, out_neg):
    """One-pass duplicate reduction over key-sorted COO columns.

    Only called when numba compiles it (see :data:`~repro.frames._jit.
    HAS_NUMBA`); the numpy path below does the same reduction with
    ``reduceat``.  Returns the number of unique keys written.
    """
    count = -1
    last = np.int64(-1)
    for i in range(sorted_flat.size):
        key = sorted_flat[i]
        if count < 0 or key != last:
            count += 1
            out_flat[count] = key
            out_pos[count] = sorted_pos[i]
            out_neg[count] = sorted_neg[i]
            last = key
        else:
            out_pos[count] += sorted_pos[i]
            out_neg[count] += sorted_neg[i]
    return count + 1


def _grouped_reduce(
    flat: np.ndarray, pos: np.ndarray, neg: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sum ``pos``/``neg`` per duplicate key of ``flat``.

    Returns ``(unique_keys, pos_sums, neg_sums)`` with keys ascending.  The
    per-group accumulation is sequential in *input* order: the stable sort
    only labels the groups, and the sums themselves come from
    ``np.bincount`` over the input-order group labels — exactly the
    accumulation the ``np.unique`` + ``np.bincount`` reference path
    (:meth:`SparseFrame.add_reference`) performs, so the kernel is
    bit-identical to it for arbitrary float values.  (``np.add.reduceat``
    would not be: it sums pairwise above eight elements.)  This is the
    shared grouped-reduce kernel of the columnar data plane: one argsort
    plus sequential bincounts instead of a ``unique``/``bincount``/divmod
    round trip per merge.
    """
    if flat.size == 0:
        empty = np.zeros(0, dtype=np.float64)
        return flat.astype(np.int64, copy=False), empty, empty
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    if HAS_NUMBA:  # pragma: no cover - numba-only branch
        sorted_pos = pos[order]
        sorted_neg = neg[order]
        out_flat = np.empty(sorted_flat.size, dtype=np.int64)
        out_pos = np.empty(sorted_flat.size, dtype=np.float64)
        out_neg = np.empty(sorted_flat.size, dtype=np.float64)
        count = _reduce_sorted_loop(
            sorted_flat, sorted_pos, sorted_neg, out_flat, out_pos, out_neg
        )
        return out_flat[:count], out_pos[:count], out_neg[:count]
    boundary = np.empty(sorted_flat.size, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_flat[1:], sorted_flat[:-1], out=boundary[1:])
    group_sorted = np.cumsum(boundary) - 1
    # Scatter the group labels back to input positions so bincount
    # accumulates each group's weights in input order.
    group = np.empty_like(group_sorted)
    group[order] = group_sorted
    num_groups = int(group_sorted[-1]) + 1
    return (
        sorted_flat[boundary],
        np.bincount(group, weights=pos, minlength=num_groups),
        np.bincount(group, weights=neg, minlength=num_groups),
    )


class SparseFrame:
    """A two-channel (positive / negative polarity) sparse event frame.

    Parameters
    ----------
    rows, cols:
        Coordinates of the active pixels (unique pairs, any order).
    pos, neg:
        Accumulated positive / negative event counts per active pixel.
    height, width:
        Dense frame dimensions.
    t_start, t_end:
        Time interval covered by the events accumulated into this frame.

    Notes
    -----
    Values are stored as float64 so that the ``cAverage`` merge mode (which
    produces fractional counts) is exact.
    """

    __slots__ = (
        "rows",
        "cols",
        "pos",
        "neg",
        "height",
        "width",
        "t_start",
        "t_end",
        "_flat",
    )

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        pos: np.ndarray,
        neg: np.ndarray,
        height: int,
        width: int,
        t_start: float = 0.0,
        t_end: float = 0.0,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int32)
        cols = np.asarray(cols, dtype=np.int32)
        pos = np.asarray(pos, dtype=np.float64)
        neg = np.asarray(neg, dtype=np.float64)
        if not (rows.shape == cols.shape == pos.shape == neg.shape):
            raise ValueError("rows, cols, pos, neg must have identical shapes")
        if rows.ndim != 1:
            raise ValueError("sparse frame columns must be one-dimensional")
        if height <= 0 or width <= 0:
            raise ValueError("frame dimensions must be positive")
        if rows.size:
            if rows.min() < 0 or rows.max() >= height:
                raise ValueError("row indices out of bounds")
            if cols.min() < 0 or cols.max() >= width:
                raise ValueError("column indices out of bounds")
        self.rows = rows
        self.cols = cols
        self.pos = pos
        self.neg = neg
        self.height = int(height)
        self.width = int(width)
        self.t_start = float(t_start)
        self.t_end = float(t_end)
        self._flat = None

    @classmethod
    def _view(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        pos: np.ndarray,
        neg: np.ndarray,
        height: int,
        width: int,
        t_start: float,
        t_end: float,
        flat: Optional[np.ndarray] = None,
    ) -> "SparseFrame":
        """Zero-copy construction from already-validated column buffers.

        Used by :class:`~repro.frames.stack.FrameStack` slices and the merge
        kernels, whose buffers were bounds-checked once at stack build time;
        re-validating per frame would reintroduce the per-frame overhead the
        columnar plane removes.  ``flat`` optionally seeds the
        :meth:`flat_keys` cache.
        """
        frame = cls.__new__(cls)
        frame.rows = rows
        frame.cols = cols
        frame.pos = pos
        frame.neg = neg
        frame.height = int(height)
        frame.width = int(width)
        frame.t_start = float(t_start)
        frame.t_end = float(t_end)
        frame._flat = flat
        return frame

    def flat_keys(self) -> np.ndarray:
        """Flattened ``row * width + col`` pixel keys (int64), cached.

        Frames sliced out of a :class:`~repro.frames.stack.FrameStack`
        inherit their slice of the stack's key buffer, so merge kernels on
        the fleet hot path never recompute (or re-allocate) the keys.
        """
        if self._flat is None:
            self._flat = self.rows.astype(np.int64) * self.width + self.cols
        return self._flat

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls, height: int, width: int, t_start: float = 0.0, t_end: float = 0.0
    ) -> "SparseFrame":
        """A sparse frame with no active pixels."""
        zero = np.zeros(0)
        return cls(zero, zero, zero, zero, height, width, t_start, t_end)

    @classmethod
    def from_events(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        p: np.ndarray,
        height: int,
        width: int,
        t_start: float = 0.0,
        t_end: float = 0.0,
    ) -> "SparseFrame":
        """Accumulate raw event columns into a sparse frame.

        Positive and negative polarities are accumulated separately per
        pixel, exactly as E2SF specifies.
        """
        x = np.asarray(x, dtype=np.int64)
        y = np.asarray(y, dtype=np.int64)
        p = np.asarray(p)
        if np.any(p == 0):
            # A zero polarity would accumulate into neither channel and the
            # event would silently vanish from the frame; AER polarities are
            # strictly +1 / -1, so reject instead of dropping.
            raise ValueError("polarities must be non-zero (+1 or -1)")
        if x.size == 0:
            return cls.empty(height, width, t_start, t_end)
        flat = y * width + x
        unique_flat, inverse = np.unique(flat, return_inverse=True)
        pos = np.bincount(inverse, weights=(p > 0).astype(np.float64), minlength=unique_flat.size)
        neg = np.bincount(inverse, weights=(p < 0).astype(np.float64), minlength=unique_flat.size)
        rows = (unique_flat // width).astype(np.int32)
        cols = (unique_flat % width).astype(np.int32)
        return cls(rows, cols, pos, neg, height, width, t_start, t_end)

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        t_start: float = 0.0,
        t_end: float = 0.0,
    ) -> "SparseFrame":
        """Build a sparse frame from a dense ``(2, H, W)`` array.

        Channel 0 is the positive-polarity plane, channel 1 the negative one.
        This is the *encode* path whose overhead the paper argues against;
        it exists so the overhead can be measured (see
        :mod:`repro.frames.encoding`).
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 3 or dense.shape[0] != 2:
            raise ValueError("expected a (2, H, W) dense frame")
        _, h, w = dense.shape
        active = (dense[0] != 0) | (dense[1] != 0)
        rows, cols = np.nonzero(active)
        return cls(
            rows.astype(np.int32),
            cols.astype(np.int32),
            dense[0][rows, cols],
            dense[1][rows, cols],
            h,
            w,
            t_start,
            t_end,
        )

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        """Number of active (non-zero) pixel locations."""
        return int(self.rows.size)

    @property
    def num_events(self) -> float:
        """Total accumulated event count (positive + negative)."""
        return float(self.pos.sum() + self.neg.sum())

    @property
    def density(self) -> float:
        """Fraction of pixels that are active — the paper's ``%events``."""
        return self.num_active / float(self.height * self.width)

    @property
    def duration(self) -> float:
        """Time span covered by the frame (seconds)."""
        return max(self.t_end - self.t_start, 0.0)

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Dense-equivalent shape ``(2, H, W)``."""
        return (2, self.height, self.width)

    @property
    def nnz_bytes(self) -> int:
        """Memory footprint of the COO representation in bytes."""
        # rows + cols as int32, pos + neg as float64
        return self.num_active * (4 + 4 + 8 + 8)

    @property
    def dense_bytes(self) -> int:
        """Memory footprint of the equivalent dense frame in bytes (float32)."""
        return 2 * self.height * self.width * 4

    def __repr__(self) -> str:
        return (
            f"SparseFrame({self.height}x{self.width}, nnz={self.num_active}, "
            f"density={self.density:.4%}, t=[{self.t_start:.4f}, {self.t_end:.4f}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseFrame):
            return NotImplemented
        if self.height != other.height or self.width != other.width:
            return False
        self_flat, self_values = self._canonical()
        other_flat, other_values = other._canonical()
        return np.array_equal(self_flat, other_flat) and np.allclose(
            self_values, other_values
        )

    def _canonical(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (sorted flat indices, stacked values) for comparisons."""
        flat = self.rows.astype(np.int64) * self.width + self.cols
        order = np.argsort(flat)
        values = np.stack([self.pos, self.neg], axis=1)
        return flat[order], values[order]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Decode into a dense ``(2, H, W)`` array.

        A flat ``np.bincount`` scatter per channel: duplicate coordinates
        accumulate exactly as the ``np.add.at`` reference path
        (:meth:`to_dense_reference`), in input order, but without the
        notoriously slow buffered ``ufunc.at`` dispatch.
        """
        size = self.height * self.width
        flat = self.flat_keys()
        dense = np.empty((2, self.height, self.width), dtype=np.float64)
        dense[0] = np.bincount(flat, weights=self.pos, minlength=size).reshape(
            self.height, self.width
        )
        dense[1] = np.bincount(flat, weights=self.neg, minlength=size).reshape(
            self.height, self.width
        )
        return dense

    def to_dense_reference(self) -> np.ndarray:
        """The pre-columnar ``np.add.at`` decode, kept as equivalence oracle."""
        dense = np.zeros((2, self.height, self.width), dtype=np.float64)
        np.add.at(dense[0], (self.rows, self.cols), self.pos)
        np.add.at(dense[1], (self.rows, self.cols), self.neg)
        return dense

    def __getstate__(self):
        # The flat-key cache is derived data (and may alias a whole
        # FrameStack buffer) — rebuild it lazily on the other side instead
        # of shipping it through worker pipes.
        return (
            self.rows,
            self.cols,
            self.pos,
            self.neg,
            self.height,
            self.width,
            self.t_start,
            self.t_end,
        )

    def __setstate__(self, state) -> None:
        (
            self.rows,
            self.cols,
            self.pos,
            self.neg,
            self.height,
            self.width,
            self.t_start,
            self.t_end,
        ) = state
        self._flat = None

    def copy(self) -> "SparseFrame":
        """Deep copy."""
        return SparseFrame(
            self.rows.copy(),
            self.cols.copy(),
            self.pos.copy(),
            self.neg.copy(),
            self.height,
            self.width,
            self.t_start,
            self.t_end,
        )

    def scale(self, factor: float) -> "SparseFrame":
        """Return a copy with all values multiplied by ``factor``."""
        out = self.copy()
        out.pos *= factor
        out.neg *= factor
        return out

    def prune_zeros(self, tolerance: float = 0.0) -> "SparseFrame":
        """Drop entries whose positive and negative values are both ~0."""
        keep = (np.abs(self.pos) > tolerance) | (np.abs(self.neg) > tolerance)
        return SparseFrame(
            self.rows[keep],
            self.cols[keep],
            self.pos[keep],
            self.neg[keep],
            self.height,
            self.width,
            self.t_start,
            self.t_end,
        )

    # ------------------------------------------------------------------
    # merge operations (used by DSFA cAdd / cAverage)
    # ------------------------------------------------------------------
    @staticmethod
    def add(frames: Sequence["SparseFrame"]) -> "SparseFrame":
        """Element-wise sum of several sparse frames (``cAdd`` mode).

        Runs the grouped-reduce merge kernel of the columnar data plane:
        cached flat pixel keys (free for frames sliced out of a
        :class:`~repro.frames.stack.FrameStack`), one stable argsort and
        segmented reductions — no per-frame ``astype`` copies, no
        ``np.unique`` inverse construction, no divmod over the merged
        support.  Bit-identical to :meth:`add_reference` (kept as the
        equivalence oracle).
        """
        frames = list(frames)
        if not frames:
            raise ValueError("cannot add an empty list of frames")
        h, w = frames[0].height, frames[0].width
        for f in frames[1:]:
            if (f.height, f.width) != (h, w):
                raise ValueError("all frames must share the same dimensions")
        if len(frames) == 1:
            flat = frames[0].flat_keys()
            pos = frames[0].pos
            neg = frames[0].neg
        else:
            flat = np.concatenate([f.flat_keys() for f in frames])
            pos = np.concatenate([f.pos for f in frames])
            neg = np.concatenate([f.neg for f in frames])
        unique_flat, pos_sum, neg_sum = _grouped_reduce(flat, pos, neg)
        return SparseFrame._view(
            (unique_flat // w).astype(np.int32),
            (unique_flat % w).astype(np.int32),
            pos_sum,
            neg_sum,
            h,
            w,
            min(f.t_start for f in frames),
            max(f.t_end for f in frames),
            flat=unique_flat,
        )

    @staticmethod
    def add_reference(frames: Sequence["SparseFrame"]) -> "SparseFrame":
        """The pre-columnar ``np.unique``-based cAdd merge.

        Deliberately unoptimized code kept alive as the equivalence oracle
        for :meth:`add` (the :mod:`repro.runtime.legacy` pattern):
        ``benchmarks/bench_dataplane.py`` measures the merge speedup against
        it and the frame tests assert bit-identical output.
        """
        frames = list(frames)
        if not frames:
            raise ValueError("cannot add an empty list of frames")
        h, w = frames[0].height, frames[0].width
        for f in frames[1:]:
            if (f.height, f.width) != (h, w):
                raise ValueError("all frames must share the same dimensions")
        rows = np.concatenate([f.rows.astype(np.int64) for f in frames])
        cols = np.concatenate([f.cols.astype(np.int64) for f in frames])
        pos = np.concatenate([f.pos for f in frames])
        neg = np.concatenate([f.neg for f in frames])
        flat = rows * w + cols
        unique_flat, inverse = np.unique(flat, return_inverse=True)
        pos_sum = np.bincount(inverse, weights=pos, minlength=unique_flat.size)
        neg_sum = np.bincount(inverse, weights=neg, minlength=unique_flat.size)
        return SparseFrame(
            (unique_flat // w).astype(np.int32),
            (unique_flat % w).astype(np.int32),
            pos_sum,
            neg_sum,
            h,
            w,
            min(f.t_start for f in frames),
            max(f.t_end for f in frames),
        )

    @staticmethod
    def average(frames: Sequence["SparseFrame"]) -> "SparseFrame":
        """Element-wise average of several sparse frames (``cAverage`` mode)."""
        frames = list(frames)
        if not frames:
            raise ValueError("cannot average an empty list of frames")
        summed = SparseFrame.add(frames)
        return summed.scale(1.0 / len(frames))

    def density_change(self, other: "SparseFrame") -> float:
        """Relative change in spatial density between ``self`` and ``other``.

        DSFA uses this to decide whether an incoming frame may join an
        existing merge bucket (the ``MdTh`` threshold).  Defined as
        ``|d_self - d_other| / max(d_self, d_other)`` and 0 when both are
        empty.
        """
        d1, d2 = self.density, other.density
        top = abs(d1 - d2)
        bottom = max(d1, d2)
        if bottom == 0:
            return 0.0
        return top / bottom


class SparseFrameBatch:
    """An ordered batch of sparse frames (the ``cBatch`` merge mode output).

    The batch is what gets presented to the network as a multi-channel /
    multi-timestep input: ``B`` sparse frames concatenated along a leading
    batch dimension.

    A batch has two interchangeable backings:

    * **frame-list** (the ``SparseFrameBatch([...])`` constructor) — an
      explicit list of :class:`SparseFrame` objects, the pre-columnar
      representation;
    * **stack-range** (:meth:`from_stack`) — an index range into a
      :class:`~repro.frames.stack.FrameStack`, the columnar transport the
      runtime uses end to end: density and time-bound queries read the
      stack's vectorised columns, :meth:`to_dense` scatters the whole batch
      in one flat ``bincount`` pass, and no per-frame objects exist until a
      caller explicitly asks for :attr:`frames` (which materialises
      zero-copy views lazily).

    Every query is bit-identical across the two backings; the per-frame
    formulas are kept in :meth:`to_dense_reference` and the frame tests.
    """

    __slots__ = ("_frames", "_stack", "_start", "_stop")

    def __init__(self, frames: Optional[Sequence[SparseFrame]] = None) -> None:
        frames = list(frames) if frames is not None else []
        if frames:
            h, w = frames[0].height, frames[0].width
            for f in frames[1:]:
                if (f.height, f.width) != (h, w):
                    raise ValueError("all frames in a batch must share dimensions")
        self._frames: Optional[List[SparseFrame]] = frames
        self._stack = None
        self._start = 0
        self._stop = 0

    @classmethod
    def from_stack(
        cls, stack, start: int = 0, stop: Optional[int] = None
    ) -> "SparseFrameBatch":
        """Batch over frames ``[start, stop)`` of ``stack``, zero-copy.

        The stack's buffers were validated at build time, so no per-frame
        re-validation happens; the batch holds only the stack reference and
        the index range.
        """
        stop = stack.num_frames if stop is None else int(stop)
        start = int(start)
        if not 0 <= start <= stop <= stack.num_frames:
            raise IndexError(
                f"batch range [{start}, {stop}) out of range for "
                f"{stack.num_frames} frames"
            )
        batch = cls.__new__(cls)
        batch._frames = None
        batch._stack = stack
        batch._start = start
        batch._stop = stop
        return batch

    @property
    def stack(self):
        """The backing :class:`FrameStack` (``None`` for frame-list batches)."""
        return self._stack

    @property
    def stack_range(self) -> Optional[Tuple[int, int]]:
        """The backing ``(start, stop)`` index range, ``None`` if frame-backed."""
        if self._stack is None:
            return None
        return (self._start, self._stop)

    @property
    def frames(self) -> List[SparseFrame]:
        """The batch's frames (stack-backed batches materialise views lazily).

        Callers must not mutate the returned list.
        """
        if self._frames is None:
            self._frames = [
                self._stack.frame(i) for i in range(self._start, self._stop)
            ]
        return self._frames

    def __repr__(self) -> str:
        backing = "stack" if self._stack is not None else "frames"
        return f"SparseFrameBatch({len(self)} frames, {backing}-backed)"

    def __len__(self) -> int:
        if self._stack is not None:
            return self._stop - self._start
        return len(self._frames)

    def __iter__(self):
        return iter(self.frames)

    def __getitem__(self, index: int) -> SparseFrame:
        return self.frames[index]

    @property
    def t_start(self) -> float:
        """Earliest start time in the batch."""
        if self._stack is not None:
            if self._stop == self._start:
                return 0.0
            return float(self._stack.t_starts[self._start : self._stop].min())
        return min((f.t_start for f in self._frames), default=0.0)

    @property
    def t_end(self) -> float:
        """Latest end time in the batch."""
        if self._stack is not None:
            if self._stop == self._start:
                return 0.0
            return float(self._stack.t_ends[self._start : self._stop].max())
        return max((f.t_end for f in self._frames), default=0.0)

    @property
    def num_events(self) -> float:
        """Total number of events across the batch.

        Deliberately summed frame by frame (not over the whole stack buffer)
        so the floating-point accumulation order is identical across both
        backings, including fractional cAverage values.
        """
        return float(sum(f.num_events for f in self.frames))

    @property
    def mean_density(self) -> float:
        """Mean spatial density across the batch (0 for an empty batch)."""
        if self._stack is not None:
            n = self._stop - self._start
            if n == 0:
                return 0.0
            if n == 1:
                return self._stack.frame_density(self._start)
            return float(np.mean(self._stack.densities()[self._start : self._stop]))
        if not self._frames:
            return 0.0
        if len(self._frames) == 1:
            # Bit-identical to np.mean over one element; single-frame
            # batches dominate the traffic hot path.
            return float(self._frames[0].density)
        return float(np.mean([f.density for f in self._frames]))

    def frame_densities(self) -> Tuple[float, ...]:
        """Per-frame spatial densities, in batch order.

        These seed the per-member occupancy profiles of the layered cost
        stack: a merged dispatch's per-layer occupancy is the mean of its
        members' propagated profiles, so the combination needs the
        individual densities, not just :attr:`mean_density`.  Stack-backed
        batches read the stack's cached density column directly.
        """
        if self._stack is not None:
            return tuple(
                self._stack.densities()[self._start : self._stop].tolist()
            )
        return tuple(f.density for f in self._frames)

    def to_dense(self) -> np.ndarray:
        """Decode into a dense ``(B, 2, H, W)`` tensor.

        Stack-backed batches scatter *all* frames in one flat ``bincount``
        pass per channel over the concatenated COO columns (the frame index
        folded into the pixel key) instead of stacking per-frame decodes —
        bit-identical to :meth:`to_dense_reference` because ``bincount``
        accumulates duplicate coordinates in input order within each frame,
        exactly as the per-frame scatter does.
        """
        if self._stack is not None:
            stack = self._stack
            num = self._stop - self._start
            if num == 0:
                return np.zeros((0, 2, 0, 0))
            h, w = stack.height, stack.width
            size = h * w
            lo = int(stack.offsets[self._start])
            hi = int(stack.offsets[self._stop])
            key = (
                np.repeat(
                    np.arange(num, dtype=np.int64),
                    stack.nnz_counts()[self._start : self._stop],
                )
                * size
                + stack.flat_buffer()[lo:hi]
            )
            dense = np.empty((num, 2, h, w), dtype=np.float64)
            dense[:, 0] = np.bincount(
                key, weights=stack.pos[lo:hi], minlength=num * size
            ).reshape(num, h, w)
            dense[:, 1] = np.bincount(
                key, weights=stack.neg[lo:hi], minlength=num * size
            ).reshape(num, h, w)
            return dense
        if not self._frames:
            return np.zeros((0, 2, 0, 0))
        return np.stack([f.to_dense() for f in self._frames], axis=0)

    def to_dense_reference(self) -> np.ndarray:
        """The per-frame ``np.stack`` decode, kept as equivalence oracle."""
        if not self.frames:
            return np.zeros((0, 2, 0, 0))
        return np.stack([f.to_dense() for f in self.frames], axis=0)

    @staticmethod
    def concatenate(batches: Sequence["SparseFrameBatch"]) -> "SparseFrameBatch":
        """Concatenate several batches preserving order.

        A single input batch is returned as-is (batches are value objects —
        callers never mutate them), so the unmerged dispatch hot path pays
        no copy or re-validation.  When every member is a view into the
        *same* :class:`FrameStack` and the index ranges are adjacent in
        order, the result is the index-range union — still zero-copy, no
        buffers touched.  Otherwise the member frames are gathered into a
        frame-list batch.
        """
        if len(batches) == 1:
            return batches[0]
        first = batches[0]
        stack = first._stack
        if stack is not None:
            stop = first._stop
            contiguous = True
            for b in batches[1:]:
                if b._stack is not stack or b._start != stop:
                    contiguous = False
                    break
                stop = b._stop
            if contiguous:
                return SparseFrameBatch.from_stack(stack, first._start, stop)
        frames: List[SparseFrame] = []
        for b in batches:
            frames.extend(b.frames)
        return SparseFrameBatch(frames)
