"""Dense event-frame representations.

State-of-the-art event networks convert raw events into dense image-like
inputs before inference (paper Section 2, Figure 2).  This module implements
the popular representations so the baselines (all-GPU dense pipeline) and the
input-representation experiments (Figures 1 and 3) have the exact dense path
that Ev-Edge's E2SF avoids:

* **count frames** — per-pixel event counts, one channel per polarity;
* **discretized voxel grids / event bins** — events between two grayscale
  frames split into ``nB`` uniformly spaced bins (EV-FlowNet, Spike-FlowNet
  style);
* **time surfaces** — per-pixel most-recent timestamp (EV-FlowNet's
  four-channel representation combines counts and time surfaces).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..events.types import EventStream

__all__ = [
    "event_count_frame",
    "time_surface",
    "ev_flownet_frame",
    "discretized_event_bins",
    "bin_boundaries",
    "assign_event_bins",
    "frame_occupancy",
]


def bin_boundaries(t_start: float, t_end: float, num_bins: int) -> np.ndarray:
    """Return the ``num_bins + 1`` uniformly spaced bin edges in ``[t_start, t_end]``.

    Mirrors Equation 1 of the paper: ``biS = (Tend - Tstart) / nB``.
    """
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    if t_end <= t_start:
        raise ValueError("t_end must be greater than t_start")
    return np.linspace(t_start, t_end, num_bins + 1)


def assign_event_bins(
    t: np.ndarray, t_start: float, t_end: float, num_bins: int
) -> np.ndarray:
    """Map event timestamps to bin indices per the paper's Equation 1.

    ``EB_k = floor((t_k - Tstart) / biS)``, clamped so events exactly at
    ``Tend`` fall into the last bin.
    """
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    bis = (t_end - t_start) / num_bins
    if bis <= 0:
        raise ValueError("t_end must be greater than t_start")
    idx = np.floor((np.asarray(t, dtype=np.float64) - t_start) / bis).astype(np.int64)
    return np.clip(idx, 0, num_bins - 1)


def event_count_frame(
    stream: EventStream, t_start: Optional[float] = None, t_end: Optional[float] = None
) -> np.ndarray:
    """Accumulate events into a dense ``(2, H, W)`` count frame.

    Channel 0 holds positive-polarity counts, channel 1 negative ones.
    """
    if t_start is not None or t_end is not None:
        stream = stream.slice_time(
            t_start if t_start is not None else -np.inf,
            t_end if t_end is not None else np.inf,
        )
    h, w = stream.geometry.height, stream.geometry.width
    frame = np.zeros((2, h, w), dtype=np.float64)
    if len(stream):
        pos = stream.p > 0
        np.add.at(frame[0], (stream.y[pos], stream.x[pos]), 1.0)
        np.add.at(frame[1], (stream.y[~pos], stream.x[~pos]), 1.0)
    return frame


def time_surface(
    stream: EventStream,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
    normalize: bool = True,
) -> np.ndarray:
    """Per-pixel most recent event timestamp, one channel per polarity.

    When ``normalize`` is True the timestamps are mapped to ``[0, 1]`` over
    the covered interval (the representation used by EV-FlowNet).
    """
    if t_start is None:
        t_start = stream.t_start
    if t_end is None:
        t_end = stream.t_end
    window = stream.slice_time(t_start, t_end + 1e-12)
    h, w = stream.geometry.height, stream.geometry.width
    surface = np.zeros((2, h, w), dtype=np.float64)
    if len(window):
        # Events are time sorted, so later writes overwrite earlier ones.
        pos = window.p > 0
        surface[0][window.y[pos], window.x[pos]] = window.t[pos]
        surface[1][window.y[~pos], window.x[~pos]] = window.t[~pos]
        if normalize and t_end > t_start:
            active = surface > 0
            surface[active] = (surface[active] - t_start) / (t_end - t_start)
    return surface


def ev_flownet_frame(
    stream: EventStream, t_start: float, t_end: float
) -> np.ndarray:
    """EV-FlowNet style 4-channel frame: [count+, count-, ts+, ts-].

    This is the fully-accumulated representation of [4] in the paper
    (events between two consecutive grayscale frames, counts plus the most
    recent timestamp per pixel).
    """
    counts = event_count_frame(stream, t_start, t_end)
    surfaces = time_surface(stream, t_start, t_end, normalize=True)
    return np.concatenate([counts, surfaces], axis=0)


def discretized_event_bins(
    stream: EventStream,
    t_start: float,
    t_end: float,
    num_bins: int,
) -> np.ndarray:
    """Discretize events into ``num_bins`` dense two-channel frames.

    Returns a ``(num_bins, 2, H, W)`` tensor — the dense counterpart of what
    E2SF produces sparsely.  This is the representation of Spike-FlowNet /
    Fusion-FlowNet ([7, 11] in the paper) and the dense baseline that the
    encode/decode-overhead experiments compare against.
    """
    window = stream.slice_time(t_start, t_end + 1e-12)
    h, w = stream.geometry.height, stream.geometry.width
    grid = np.zeros((num_bins, 2, h, w), dtype=np.float64)
    if len(window) == 0:
        return grid
    bins = assign_event_bins(window.t, t_start, t_end, num_bins)
    pos = window.p > 0
    np.add.at(grid, (bins[pos], 0, window.y[pos], window.x[pos]), 1.0)
    np.add.at(grid, (bins[~pos], 1, window.y[~pos], window.x[~pos]), 1.0)
    return grid


def frame_occupancy(frame: np.ndarray) -> float:
    """Fraction of pixels with at least one event in a dense frame.

    Accepts ``(2, H, W)`` or ``(B, 2, H, W)`` tensors; for batched input the
    mean per-frame occupancy is returned.  This is the quantity the paper
    plots in Figures 1 and 3 (average percentage of events in an event
    frame).
    """
    frame = np.asarray(frame)
    if frame.ndim == 3:
        active = np.any(frame != 0, axis=0)
        return float(active.mean())
    if frame.ndim == 4:
        active = np.any(frame != 0, axis=1)
        return float(active.reshape(frame.shape[0], -1).mean())
    raise ValueError("expected a (2, H, W) or (B, 2, H, W) frame")
