"""Per-layer occupancy profiles: propagating input sparsity through a network.

The paper's core observation is that event-driven inputs are sparse and that
the *effective* per-layer compute cost follows that sparsity.  Up to PR 4 the
cost stack used the measured input occupancy for the **first** layer only and
fell back to each deeper layer's static ``activation_sparsity`` attribute —
two inputs at different densities therefore produced entirely different
whole-network operating points even though their deep layers see nearly
identical activity.

This module models how occupancy actually evolves layer by layer, using the
sparsity behaviour the rest of the framework already encodes:

* **Support dilation** (:func:`layer_output_occupancy`) — a convolution
  scatters every active input site into a ``K x K`` output neighbourhood
  (exactly what :func:`repro.nn.sparse_conv.sparse_conv2d` implements), so
  under an independent-site model an output site is active with probability
  ``1 - (1 - d) ** r`` where ``r`` is the receptive-field size.  Pooling
  dilates the same way (any active input in the window activates the
  output); transposed convolutions spread over ``K^2 / S^2`` sites; a fully
  connected layer mixes everything; element-wise fusion preserves support.
* **Activation sparsification** — the layer's nonlinearity (LIF spiking
  dynamics, ReLU) re-sparsifies the dilated support: the modelled firing
  fraction is the layer's ``1 - activation_sparsity``
  (:class:`~repro.nn.layers.LayerSpec`), applied multiplicatively, so a
  nearly-empty input keeps deep layers nearly empty while a dense input
  saturates at the layer's modelled activity.

Composing the two per layer yields an :class:`OccupancyProfile` — one input
occupancy per compute layer.  Profiles from different input densities
*converge* within a few layers (the composition is a contraction onto the
modelled activity fix point), which is what lets the layered cost stack in
:mod:`repro.runtime.sim` share deep-layer cache entries across mixed-density
traffic after per-layer bucketing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from .layers import LayerKind, LayerSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph imports us lazily)
    from .graph import LayerGraph

__all__ = [
    "OccupancyProfile",
    "combine_supports",
    "layer_output_occupancy",
    "propagate_occupancy",
    "propagate_occupancy_chain",
    "propagate_occupancy_graph",
]


def _clamp(value: float) -> float:
    return min(max(float(value), 0.0), 1.0)


def layer_output_occupancy(spec: LayerSpec, occupancy: float) -> float:
    """Output support occupancy of ``spec`` given its input occupancy.

    Pure support dilation under an independent-active-site model; the
    activation sparsification of the *consuming* layer is applied by
    :func:`propagate_occupancy`, not here.
    """
    d = _clamp(occupancy)
    if d == 0.0:
        return 0.0
    if spec.kind in (LayerKind.CONV2D, LayerKind.CONV_LIF, LayerKind.POOL):
        receptive = float(spec.kernel_size * spec.kernel_size)
    elif spec.kind in (LayerKind.DECONV2D, LayerKind.DECONV_LIF):
        # The output grid is S x larger; each output site is reached by
        # roughly K^2 / S^2 input sites.
        receptive = max(
            float(spec.kernel_size * spec.kernel_size) / float(spec.stride * spec.stride),
            1.0,
        )
    elif spec.kind is LayerKind.FC:
        return 1.0  # global mixing: any activity reaches every output
    else:
        # ELEMENTWISE fusion and the INPUT/OUTPUT pseudo-layers preserve
        # the support of their input.
        return d
    return _clamp(1.0 - (1.0 - d) ** receptive)


def propagate_occupancy_chain(
    specs: Sequence[LayerSpec], input_occupancy: float
) -> Tuple[float, ...]:
    """Per-layer *input* occupancies for ``specs`` executed as a serial chain.

    ``specs`` is the compute-layer sequence in topological order (the same
    serial composition the cost models walk).  The first entry is the
    measured input occupancy itself — the one quantity the simulator knows
    exactly.  Every later entry is the previous layer's dilated output
    scaled by the consuming layer's modelled firing fraction
    (``1 - activation_sparsity``): activation sparsification caps how much
    of the dilated support actually carries activity.

    For a purely serial network this is exactly what
    :func:`propagate_occupancy_graph` computes (bit-identical — the graph
    walker runs the same float ops for single-predecessor nodes), which is
    why the chain survives as the serial oracle.  For a DAG it is *wrong*
    at every join: the chain dilates whichever spec happened to precede
    the join in topological order and ignores the other branches.
    """
    occ = _clamp(input_occupancy)
    entries: List[float] = []
    previous: Optional[LayerSpec] = None
    for spec in specs:
        if previous is not None:
            occ = layer_output_occupancy(previous, occ)
            occ *= 1.0 - spec.activation_sparsity
        entries.append(occ)
        previous = spec
    return tuple(entries)


#: Backward-compatible alias — PR-4..8 callers imported the chain walker
#: under this name.  New code should pick the chain or graph walker
#: explicitly.
propagate_occupancy = propagate_occupancy_chain


def combine_supports(
    consumer: LayerSpec,
    supports: Sequence[float],
    weights: Sequence[float],
) -> float:
    """Combine several predecessors' dilated output supports at a join node.

    Two join semantics exist in the zoo's DAGs:

    * **Element-wise fusion** (``consumer.kind is ELEMENTWISE``) — the
      branches are added/merged site-by-site, so under the
      independent-site model a fused site is active when *any* branch is:
      ``1 - prod(1 - d_i)`` (the union).
    * **Concat-style skip connections** (everything else) — the branches
      are stacked along the channel axis, so the consumer's input
      occupancy is the channel-weighted mean of the branch occupancies
      (``weights`` are the producers' ``out_channels``).
    """
    if len(supports) != len(weights):
        raise ValueError("supports and weights must have the same length")
    if not supports:
        raise ValueError("cannot combine an empty set of supports")
    if consumer.kind is LayerKind.ELEMENTWISE:
        survive = 1.0
        for d in supports:
            survive *= 1.0 - _clamp(d)
        return _clamp(1.0 - survive)
    total = sum(weights)
    if total <= 0:
        raise ValueError("combined support weights must sum to a positive value")
    return _clamp(sum(d * w for d, w in zip(supports, weights)) / total)


def propagate_occupancy_graph(
    graph: "LayerGraph", input_occupancy: float
) -> Tuple[float, ...]:
    """Per-layer *input* occupancies for ``graph``'s compute layers.

    Visits the compute nodes in topological order.  Source compute nodes
    (no compute predecessors) receive the measured ``input_occupancy`` —
    for a two-stream network every stream head sees the measured input,
    instead of the chain walker's accident of dilating whichever spec
    preceded it in topological order.  Every other node dilates *each*
    compute predecessor's recorded entry through that predecessor's own
    receptive field (:func:`layer_output_occupancy`), combines multiple
    predecessor supports with :func:`combine_supports` (union for
    element-wise fusion, channel-weighted mean for concat-style skips)
    and applies its own firing fraction ``1 - activation_sparsity``.

    Entries are returned in topological order over compute layers — the
    same order as ``graph.layers()`` filtered to compute specs, which is
    the order the runtime cost models resolve their layer assignments in.
    """
    occ_in = _clamp(input_occupancy)
    entries: Dict[str, float] = {}
    order: List[str] = []
    for name in graph.layer_names():
        spec = graph.layer(name)
        if not spec.kind.is_compute:
            continue
        preds = [p for p in graph.predecessors(name) if graph.layer(p).kind.is_compute]
        if not preds:
            occ = occ_in
        else:
            dilated = [
                layer_output_occupancy(graph.layer(p), entries[p]) for p in preds
            ]
            if len(dilated) == 1:
                occ = dilated[0]
            else:
                occ = combine_supports(
                    spec,
                    dilated,
                    [float(max(graph.layer(p).out_channels, 1)) for p in preds],
                )
            occ *= 1.0 - spec.activation_sparsity
        entries[name] = occ
        order.append(name)
    return tuple(entries[n] for n in order)


class OccupancyProfile:
    """One input occupancy per compute layer of a network.

    ``entries`` parallel the cost model's resolved layer assignments.  An
    entry of ``None`` means "use the layer's static modelled sparsity" — the
    pre-profile (PR-4) semantics; a *flat* profile carries the measured
    input occupancy in its first slot and ``None`` everywhere else, which is
    how the legacy scalar cost path is expressed in profile form.

    Profiles are immutable value objects; ``entries`` doubles as the cache
    key of the layered cost stack.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[Optional[float]]) -> None:
        self.entries = tuple(entries)

    # ------------------------------------------------------------------
    @classmethod
    def flat(cls, occupancy: Optional[float], num_layers: int) -> "OccupancyProfile":
        """Measured occupancy on the first layer, modelled sparsity deeper."""
        if num_layers <= 0:
            return cls(())
        return cls((occupancy,) + (None,) * (num_layers - 1))

    @classmethod
    def propagate(
        cls, specs: Sequence[LayerSpec], input_occupancy: float
    ) -> "OccupancyProfile":
        """Chain-propagated per-layer profile for one input density.

        Serial-chain semantics (:func:`propagate_occupancy_chain`); the
        legacy oracle path.  Graph-aware callers use :meth:`from_graph`.
        """
        return cls(propagate_occupancy_chain(specs, input_occupancy))

    @classmethod
    def from_graph(
        cls, graph: "LayerGraph", input_occupancy: float
    ) -> "OccupancyProfile":
        """Graph-propagated per-layer profile for one input density."""
        return cls(propagate_occupancy_graph(graph, input_occupancy))

    @classmethod
    def combine(
        cls,
        profiles: Sequence["OccupancyProfile"],
        weights: Optional[Sequence[float]] = None,
    ) -> "OccupancyProfile":
        """Entry-wise weighted mean of several profiles (merge-time rule).

        A batched inference runs every member input through the same layers,
        so the batch's per-layer occupancy is the (weight = frame count)
        mean of the members' per-layer occupancies.  An entry is ``None``
        only when it is ``None`` for *every* member (flat profiles combine
        with flat profiles); mixing flat and propagated entries at one
        layer is rejected — silently dropping the propagated members'
        measured occupancies would miscost the batch.
        """
        profiles = list(profiles)
        if not profiles:
            raise ValueError("cannot combine an empty list of profiles")
        if weights is None:
            weights = [1.0] * len(profiles)
        weights = [float(w) for w in weights]
        if len(weights) != len(profiles):
            raise ValueError("profiles and weights must have the same length")
        total = sum(weights)
        if total <= 0:
            raise ValueError("combined profile weights must sum to a positive value")
        length = len(profiles[0].entries)
        if any(len(p.entries) != length for p in profiles):
            raise ValueError("cannot combine profiles over different layer counts")
        combined: List[Optional[float]] = []
        for i in range(length):
            values = [p.entries[i] for p in profiles]
            if all(v is None for v in values):
                combined.append(None)
                continue
            if any(v is None for v in values):
                raise ValueError(
                    f"cannot combine flat (None) and propagated entries at layer {i}"
                )
            combined.append(
                sum(v * w for v, w in zip(values, weights)) / total
            )
        return cls(combined)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OccupancyProfile):
            return NotImplemented
        return self.entries == other.entries

    def __hash__(self) -> int:
        return hash(self.entries)

    def __repr__(self) -> str:
        shown = ", ".join(
            "modelled" if e is None else f"{e:.4f}" for e in self.entries[:6]
        )
        suffix = ", ..." if len(self.entries) > 6 else ""
        return f"OccupancyProfile([{shown}{suffix}])"

    @property
    def is_flat(self) -> bool:
        """True when every entry past the first defers to modelled sparsity."""
        return all(e is None for e in self.entries[1:])

    def key(self) -> Tuple[Optional[float], ...]:
        """Hashable identity used by the layered cost stack's memo."""
        return self.entries

    def bucketed(self, bucket) -> "OccupancyProfile":
        """Quantize every entry with ``bucket`` (per-layer bucketing)."""
        return OccupancyProfile(bucket(e) for e in self.entries)
