"""Sparse convolution over COO sparse frames.

E2SF's output feeds "sparse libraries" ([6] in the paper — submanifold
sparse convolutions).  This module implements:

* :func:`sparse_conv2d` — a gather-scatter convolution that touches only the
  active sites of a :class:`~repro.frames.sparse.SparseFrame`, returning the
  dense result (for correctness checks) and the number of multiply-accumulate
  operations actually performed;
* :func:`submanifold_conv2d` — the variant that restricts output sites to the
  input's active sites (keeping sparsity constant through the network);
* :func:`dense_conv2d_macs` — the dense MAC count for the same geometry, so
  the work saving can be reported (paper Figure 1's "operations expended").
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..frames.sparse import SparseFrame

__all__ = [
    "sparse_conv2d",
    "submanifold_conv2d",
    "dense_conv2d",
    "dense_conv2d_macs",
    "sparse_conv2d_macs",
]


def _check_weights(weights: np.ndarray) -> Tuple[int, int, int]:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 4:
        raise ValueError("weights must have shape (C_out, C_in, K, K)")
    c_out, c_in, kh, kw = weights.shape
    if kh != kw:
        raise ValueError("only square kernels are supported")
    if kh % 2 == 0:
        raise ValueError("only odd kernel sizes are supported")
    return c_out, c_in, kh


def dense_conv2d(
    activation: np.ndarray, weights: np.ndarray, stride: int = 1
) -> np.ndarray:
    """Reference dense 2-D convolution (same padding, given stride).

    ``activation`` is ``(C_in, H, W)``; returns ``(C_out, H//stride, W//stride)``.
    Implemented with explicit loops over kernel offsets (vectorised over the
    spatial grid), which is plenty fast for the small surrogate networks.
    """
    activation = np.asarray(activation, dtype=np.float64)
    if activation.ndim != 3:
        raise ValueError("activation must have shape (C_in, H, W)")
    c_out, c_in, k = _check_weights(weights)
    if activation.shape[0] != c_in:
        raise ValueError("activation channel count does not match weights")
    _, h, w = activation.shape
    pad = k // 2
    padded = np.pad(activation, ((0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((c_out, h, w), dtype=np.float64)
    for dy in range(k):
        for dx in range(k):
            window = padded[:, dy : dy + h, dx : dx + w]
            # (C_out, C_in) x (C_in, H, W) contracted over C_in
            out += np.tensordot(weights[:, :, dy, dx], window, axes=([1], [0]))
    if stride > 1:
        out = out[:, ::stride, ::stride]
    return out


def dense_conv2d_macs(
    height: int, width: int, c_in: int, c_out: int, kernel_size: int, stride: int = 1
) -> int:
    """MAC count of the dense convolution for the given geometry."""
    out_h, out_w = height // stride, width // stride
    return out_h * out_w * c_in * c_out * kernel_size * kernel_size


def sparse_conv2d_macs(nnz: int, c_in: int, c_out: int, kernel_size: int) -> int:
    """MAC count of a gather-scatter sparse convolution with ``nnz`` active sites."""
    return nnz * c_in * c_out * kernel_size * kernel_size


def sparse_conv2d(
    frame: SparseFrame,
    weights: np.ndarray,
    stride: int = 1,
) -> Tuple[np.ndarray, int]:
    """Convolve a two-channel sparse frame, doing work only at active sites.

    Returns ``(dense_output, macs_performed)``.  The output is dense (each
    active input site scatters into a K x K neighbourhood) but the arithmetic
    cost is proportional to the number of active sites, which is the point of
    E2SF.
    """
    c_out, c_in, k = _check_weights(weights)
    if c_in != 2:
        raise ValueError("sparse frames have exactly two channels (pos / neg polarity)")
    h, w = frame.height, frame.width
    pad = k // 2
    out = np.zeros((c_out, h + 2 * pad, w + 2 * pad), dtype=np.float64)
    values = np.stack([frame.pos, frame.neg], axis=0)  # (2, nnz)
    rows = frame.rows + pad
    cols = frame.cols + pad
    # contribution of each active site to each kernel offset
    # (C_out, 2) @ (2, nnz) -> (C_out, nnz) per offset.  The kernel indices are
    # flipped so the scatter formulation matches the cross-correlation
    # convention of dense_conv2d.
    for dy in range(k):
        for dx in range(k):
            contrib = weights[:, :, k - 1 - dy, k - 1 - dx] @ values
            np.add.at(out, (slice(None), rows + dy - pad, cols + dx - pad), contrib)
    out = out[:, pad : pad + h, pad : pad + w]
    if stride > 1:
        out = out[:, ::stride, ::stride]
    macs = sparse_conv2d_macs(frame.num_active, 2, c_out, k)
    return out, macs


def submanifold_conv2d(
    frame: SparseFrame,
    weights: np.ndarray,
) -> Tuple[SparseFrame, int]:
    """Submanifold sparse convolution: outputs only at the input's active sites.

    This is the operation of Graham et al. [6] that keeps the active-site set
    (and therefore the sparsity) unchanged through the layer.  Returns a new
    sparse "frame" whose pos/neg channels hold the first two output channels
    (the representation stays two-channel for chaining), plus the MACs
    performed.
    """
    c_out, c_in, k = _check_weights(weights)
    if c_in != 2:
        raise ValueError("sparse frames have exactly two channels (pos / neg polarity)")
    if c_out < 2:
        raise ValueError("submanifold_conv2d requires at least two output channels")
    dense_out, _ = sparse_conv2d(frame, weights, stride=1)
    mask = np.zeros((frame.height, frame.width), dtype=bool)
    mask[frame.rows, frame.cols] = True
    result = SparseFrame(
        frame.rows.copy(),
        frame.cols.copy(),
        dense_out[0][frame.rows, frame.cols],
        dense_out[1][frame.rows, frame.cols],
        frame.height,
        frame.width,
        frame.t_start,
        frame.t_end,
    )
    macs = sparse_conv2d_macs(frame.num_active, 2, c_out, k)
    return result, macs
