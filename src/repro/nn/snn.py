"""Leaky integrate-and-fire (LIF) neuron dynamics.

The SNN and hybrid SNN-ANN networks of the paper (Spike-FlowNet,
Fusion-FlowNet, Adaptive-SpikeNet, HALSIE, DOTIE) interleave convolutions
with spiking neuron layers.  This module provides a functional numpy LIF
implementation used by the surrogate networks and by the activation-sparsity
statistics that drive the hardware model (spiking activations are binary and
very sparse, which is why SNNs gain the most from Ev-Edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LIFParameters", "LIFState", "lif_step", "lif_run", "spike_rate"]


@dataclass(frozen=True)
class LIFParameters:
    """Parameters of a leaky integrate-and-fire neuron population.

    Attributes
    ----------
    threshold:
        Membrane potential at which a spike is emitted.
    leak:
        Multiplicative decay applied to the membrane potential each timestep
        (1.0 = perfect integrator, 0.0 = memoryless).
    reset_mode:
        ``"subtract"`` (soft reset, subtract the threshold) or ``"zero"``
        (hard reset to 0) after a spike.
    """

    threshold: float = 1.0
    leak: float = 0.9
    reset_mode: str = "subtract"

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if not 0.0 <= self.leak <= 1.0:
            raise ValueError("leak must be in [0, 1]")
        if self.reset_mode not in ("subtract", "zero"):
            raise ValueError("reset_mode must be 'subtract' or 'zero'")


@dataclass
class LIFState:
    """Mutable state (membrane potential) of a LIF population."""

    membrane: np.ndarray

    @classmethod
    def zeros(cls, shape: Tuple[int, ...]) -> "LIFState":
        """Initial state with zero membrane potential everywhere."""
        return cls(membrane=np.zeros(shape, dtype=np.float64))


def lif_step(
    state: LIFState, input_current: np.ndarray, params: LIFParameters
) -> Tuple[np.ndarray, LIFState]:
    """Advance the LIF dynamics by one timestep.

    Returns ``(spikes, new_state)`` where ``spikes`` is a binary array of the
    same shape as the input.
    """
    input_current = np.asarray(input_current, dtype=np.float64)
    if input_current.shape != state.membrane.shape:
        raise ValueError("input shape does not match the neuron population shape")
    membrane = params.leak * state.membrane + input_current
    spikes = (membrane >= params.threshold).astype(np.float64)
    if params.reset_mode == "subtract":
        membrane = membrane - spikes * params.threshold
    else:
        membrane = np.where(spikes > 0, 0.0, membrane)
    return spikes, LIFState(membrane=membrane)


def lif_run(
    inputs: Sequence[np.ndarray],
    params: Optional[LIFParameters] = None,
    state: Optional[LIFState] = None,
) -> Tuple[List[np.ndarray], LIFState]:
    """Run the LIF dynamics over a sequence of input currents.

    Returns the list of per-timestep spike maps and the final state.
    """
    params = params or LIFParameters()
    inputs = [np.asarray(x, dtype=np.float64) for x in inputs]
    if not inputs:
        raise ValueError("at least one timestep of input is required")
    if state is None:
        state = LIFState.zeros(inputs[0].shape)
    spikes: List[np.ndarray] = []
    for current in inputs:
        out, state = lif_step(state, current, params)
        spikes.append(out)
    return spikes, state


def spike_rate(spikes: Sequence[np.ndarray]) -> float:
    """Fraction of neurons spiking, averaged over timesteps.

    ``1 - spike_rate`` is the activation sparsity the hardware model uses to
    scale the effective work of SNN layers.
    """
    spikes = list(spikes)
    if not spikes:
        return 0.0
    return float(np.mean([np.mean(s) for s in spikes]))
