"""Task accuracy evaluation under mixed precision and frame aggregation.

The Network Mapper's fitness function (paper Equation 2) constrains the
accuracy degradation of every task.  The paper measures that degradation by
linearly quantizing the pretrained network per the candidate's layer
bit-widths and evaluating on a sampled subset of the validation set.

This module reproduces that protocol with the surrogate estimators: a
:class:`TaskAccuracyEvaluator` owns a small validation set of synthetic
intervals (event bins + ground truth), evaluates a surrogate with a given
per-stage precision assignment and aggregation level, and reports both the
raw metric and the normalised degradation used by NMP.  Results are cached,
mirroring the paper's fitness-score caching optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..events.datasets import generate_sequence
from ..frames.dense import discretized_event_bins
from ..metrics import (
    average_depth_error,
    average_endpoint_error,
    box_iou,
    mean_iou,
)
from .quantization import Precision
from .surrogate import (
    DepthSurrogate,
    FlowSurrogate,
    SegmentationSurrogate,
    TrackingSurrogate,
)

__all__ = ["TaskSample", "TaskAccuracyEvaluator", "map_layer_precisions_to_stages"]

_TASK_SEQUENCE = {
    "optical_flow": "indoor_flying1",
    "semantic_segmentation": "indoor_flying2",
    "depth_estimation": "town10",
    "object_tracking": "high_speed_disk",
}

_LOWER_IS_BETTER = {
    "optical_flow": True,
    "semantic_segmentation": False,
    "depth_estimation": True,
    "object_tracking": False,
}


@dataclass
class TaskSample:
    """One validation sample: binned events plus the matching ground truth."""

    bins: np.ndarray
    flow: np.ndarray
    depth: np.ndarray
    segmentation: np.ndarray


def map_layer_precisions_to_stages(
    layer_precisions: Sequence[Precision], num_stages: int
) -> List[Precision]:
    """Collapse a per-layer precision assignment onto surrogate stages.

    The real networks have many layers; the surrogates have a handful of
    stages.  Layers are partitioned into ``num_stages`` contiguous groups and
    each group contributes its *lowest* precision (the most aggressive
    quantization dominates the error of that part of the network).
    """
    layer_precisions = list(layer_precisions)
    if not layer_precisions:
        return [Precision.FP32] * num_stages
    groups = np.array_split(np.arange(len(layer_precisions)), num_stages)
    stage_precisions = []
    for group in groups:
        if group.size == 0:
            stage_precisions.append(Precision.FP32)
            continue
        members = [layer_precisions[i] for i in group]
        stage_precisions.append(min(members, key=lambda p: p.bits))
    return stage_precisions


class TaskAccuracyEvaluator:
    """Measure surrogate accuracy for a task under precision / aggregation choices.

    Parameters
    ----------
    task:
        One of ``optical_flow``, ``semantic_segmentation``,
        ``depth_estimation``, ``object_tracking``.
    num_bins:
        Event bins per frame interval fed to the surrogate at baseline.
    scale:
        Spatial scale of the generated validation sequence (kept small so
        evaluation inside the NMP search loop stays fast).
    num_intervals:
        Number of validation intervals to keep.
    seed:
        RNG seed for sequence generation and subset sampling.
    """

    def __init__(
        self,
        task: str,
        num_bins: int = 8,
        scale: float = 0.2,
        num_intervals: int = 6,
        seed: int = 0,
    ) -> None:
        if task not in _TASK_SEQUENCE:
            raise KeyError(f"unknown task '{task}'")
        if num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        self.task = task
        self.num_bins = num_bins
        self.scale = scale
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._samples = self._build_samples(num_intervals)
        self._cache: Dict[Tuple, float] = {}
        self._baseline: Optional[float] = None

    # ------------------------------------------------------------------
    # validation set construction
    # ------------------------------------------------------------------
    def _build_samples(self, num_intervals: int) -> List[TaskSample]:
        sequence = generate_sequence(
            _TASK_SEQUENCE[self.task], scale=self.scale, seed=self.seed
        )
        samples: List[TaskSample] = []
        count = min(num_intervals, sequence.num_intervals)
        for i in range(count):
            t0 = sequence.frames[i].timestamp
            t1 = sequence.frames[i + 1].timestamp
            bins = discretized_event_bins(sequence.events, t0, t1, self.num_bins)
            gt = sequence.ground_truth[i]
            samples.append(
                TaskSample(
                    bins=bins,
                    flow=gt.flow,
                    depth=gt.depth,
                    segmentation=gt.segmentation,
                )
            )
        if not samples:
            raise RuntimeError("validation sequence produced no intervals")
        return samples

    @property
    def samples(self) -> List[TaskSample]:
        """The validation samples (read-only use intended)."""
        return self._samples

    @property
    def lower_is_better(self) -> bool:
        """True when a smaller metric value means higher accuracy."""
        return _LOWER_IS_BETTER[self.task]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _aggregate_bins(self, bins: np.ndarray, merge_factor: int) -> np.ndarray:
        """Merge (cAdd) groups of ``merge_factor`` consecutive bins."""
        if merge_factor <= 1:
            return bins
        num_bins = bins.shape[0]
        groups = [
            bins[i : i + merge_factor].sum(axis=0)
            for i in range(0, num_bins, merge_factor)
        ]
        return np.stack(groups, axis=0)

    def _score_sample(
        self,
        sample: TaskSample,
        stage_precisions: Sequence[Precision],
        merge_factor: int,
    ) -> float:
        bins = self._aggregate_bins(sample.bins, merge_factor)
        if self.task == "optical_flow":
            result = FlowSurrogate().predict(bins, stage_precisions)
            return average_endpoint_error(result.prediction, sample.flow, result.valid_mask)
        if self.task == "semantic_segmentation":
            result = SegmentationSurrogate().predict(bins, stage_precisions)
            return mean_iou(result.prediction, (sample.segmentation > 0).astype(np.int32), 2)
        if self.task == "depth_estimation":
            result = DepthSurrogate().predict(
                bins, stage_precisions, reference_depth=sample.depth
            )
            return average_depth_error(result.prediction, sample.depth, result.valid_mask)
        surrogate = TrackingSurrogate()
        result = surrogate.predict(bins, stage_precisions)
        predicted_box = TrackingSurrogate.bounding_box(result.prediction)
        truth_box = TrackingSurrogate.bounding_box(sample.segmentation > 0)
        return box_iou(predicted_box, truth_box)

    def evaluate(
        self,
        stage_precisions: Optional[Sequence[Precision]] = None,
        merge_factor: int = 1,
        subset: Optional[int] = None,
    ) -> float:
        """Return the task metric for the given configuration.

        ``subset`` evaluates only a random sample of the validation
        intervals, the paper's complexity-reduction trick for the search.
        Results are cached per configuration.
        """
        stage_precisions = tuple(stage_precisions or ())
        key = (stage_precisions, merge_factor, subset)
        if key in self._cache:
            return self._cache[key]
        samples = self._samples
        if subset is not None and subset < len(samples):
            idx = self._rng.choice(len(samples), size=subset, replace=False)
            samples = [self._samples[i] for i in idx]
        precisions = list(stage_precisions) if stage_precisions else None
        scores = [
            self._score_sample(s, precisions, merge_factor) for s in samples
        ]
        scores = [s for s in scores if np.isfinite(s)]
        value = float(np.mean(scores)) if scores else float("nan")
        self._cache[key] = value
        return value

    def baseline(self) -> float:
        """Full-precision, no-aggregation accuracy (the paper's 'Baseline' column)."""
        if self._baseline is None:
            self._baseline = self.evaluate()
        return self._baseline

    def degradation(
        self,
        stage_precisions: Optional[Sequence[Precision]] = None,
        merge_factor: int = 1,
        subset: Optional[int] = None,
    ) -> float:
        """Normalised accuracy degradation vs. the full-precision baseline.

        Defined as ``|acc_base - acc_search| / |acc_base|`` (Equation 2's
        ``delta A_n``), clipped at 0 when the configuration happens to do
        better than the baseline.
        """
        base = self.baseline()
        value = self.evaluate(stage_precisions, merge_factor, subset)
        if not np.isfinite(base) or not np.isfinite(value) or base == 0:
            return 0.0
        if self.lower_is_better:
            delta = value - base
        else:
            delta = base - value
        return max(float(delta / abs(base)), 0.0)
