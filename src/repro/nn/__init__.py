"""Neural network substrate: layers, graphs, SNN dynamics, quantization and surrogates."""

from .accuracy import TaskAccuracyEvaluator, TaskSample, map_layer_precisions_to_stages
from .graph import LayerGraph, MultiTaskGraph, TaskSpec
from .layers import LayerKind, LayerSpec
from .quantization import (
    Precision,
    dequantize,
    fake_quantize,
    quantization_error,
    quantize,
)
from .calibration import (
    CalibrationResult,
    estimate_firing_fractions,
    fit_firing_fractions,
)
from .occupancy import (
    OccupancyProfile,
    combine_supports,
    layer_output_occupancy,
    propagate_occupancy,
    propagate_occupancy_chain,
    propagate_occupancy_graph,
)
from .snn import LIFParameters, LIFState, lif_run, lif_step, spike_rate
from .sparse_conv import (
    dense_conv2d,
    dense_conv2d_macs,
    sparse_conv2d,
    sparse_conv2d_macs,
    submanifold_conv2d,
)
from .surrogate import (
    DepthSurrogate,
    FlowSurrogate,
    SegmentationSurrogate,
    SurrogateResult,
    TrackingSurrogate,
    surrogate_for_task,
)

__all__ = [
    "LayerKind",
    "LayerSpec",
    "LayerGraph",
    "MultiTaskGraph",
    "TaskSpec",
    "OccupancyProfile",
    "combine_supports",
    "layer_output_occupancy",
    "propagate_occupancy",
    "propagate_occupancy_chain",
    "propagate_occupancy_graph",
    "CalibrationResult",
    "estimate_firing_fractions",
    "fit_firing_fractions",
    "Precision",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantization_error",
    "LIFParameters",
    "LIFState",
    "lif_step",
    "lif_run",
    "spike_rate",
    "dense_conv2d",
    "dense_conv2d_macs",
    "sparse_conv2d",
    "sparse_conv2d_macs",
    "submanifold_conv2d",
    "FlowSurrogate",
    "SegmentationSurrogate",
    "DepthSurrogate",
    "TrackingSurrogate",
    "SurrogateResult",
    "surrogate_for_task",
    "TaskAccuracyEvaluator",
    "TaskSample",
    "map_layer_precisions_to_stages",
]
