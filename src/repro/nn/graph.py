"""Network graphs and the multi-task input graph.

The Network Mapper (paper Section 4.3) represents multi-task network
dependencies as a directed graph: each node is one layer of one network,
each edge a data dependency.  :class:`LayerGraph` is the per-network DAG;
:class:`MultiTaskGraph` is the union of several networks' graphs, which is
what NMP, the round-robin baselines and the runtime executor operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .layers import LayerSpec

__all__ = ["LayerGraph", "TaskSpec", "MultiTaskGraph"]


class LayerGraph:
    """A single network expressed as a DAG of :class:`LayerSpec` nodes.

    Parameters
    ----------
    name:
        Network name, e.g. ``"spikeflownet"``.
    task:
        The vision task this network solves (``"optical_flow"``,
        ``"semantic_segmentation"``, ``"depth_estimation"``,
        ``"object_tracking"``).
    """

    def __init__(self, name: str, task: str = "optical_flow") -> None:
        self.name = name
        self.task = task
        self._graph = nx.DiGraph()
        self._topo_order: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_layer(
        self, layer: LayerSpec, inputs: Optional[Sequence[str]] = None
    ) -> LayerSpec:
        """Add ``layer`` with dependencies on the named ``inputs`` layers."""
        if layer.name in self._graph:
            raise ValueError(f"duplicate layer name '{layer.name}' in {self.name}")
        self._graph.add_node(layer.name, spec=layer)
        for parent in inputs or []:
            if parent not in self._graph:
                raise KeyError(f"unknown input layer '{parent}' for '{layer.name}'")
            self._graph.add_edge(parent, layer.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_node(layer.name)
            raise ValueError(f"adding layer '{layer.name}' would create a cycle")
        self._topo_order = None  # mutation invalidates the cached order
        return layer

    def chain(self, layers: Sequence[LayerSpec]) -> None:
        """Add ``layers`` as a linear chain appended to the current sinks."""
        previous = self.sinks()
        for layer in layers:
            self.add_layer(layer, inputs=previous)
            previous = [layer.name]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def layer(self, name: str) -> LayerSpec:
        """Return the :class:`LayerSpec` with the given name."""
        return self._graph.nodes[name]["spec"]

    def _topological_names(self) -> List[str]:
        """Cached topological node order (recomputed after mutations).

        A fleet of streams resolves its cost-surface signatures by walking
        every source's layer list; without the cache that is one networkx
        topological sort per stream at fleet start-up.
        """
        if self._topo_order is None:
            self._topo_order = list(nx.topological_sort(self._graph))
        return self._topo_order

    def layers(self) -> List[LayerSpec]:
        """All layers in topological order."""
        nodes = self._graph.nodes
        return [nodes[n]["spec"] for n in self._topological_names()]

    def layer_names(self) -> List[str]:
        """Layer names in topological order."""
        return list(self._topological_names())

    def predecessors(self, name: str) -> List[str]:
        """Names of the layers feeding ``name``."""
        return list(self._graph.predecessors(name))

    def successors(self, name: str) -> List[str]:
        """Names of the layers consuming ``name``'s output."""
        return list(self._graph.successors(name))

    def edges(self) -> List[Tuple[str, str]]:
        """All (producer, consumer) pairs."""
        return list(self._graph.edges())

    def sources(self) -> List[str]:
        """Layers with no predecessors."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def sinks(self) -> List[str]:
        """Layers with no successors."""
        return [n for n in self._graph.nodes if self._graph.out_degree(n) == 0]

    # ------------------------------------------------------------------
    # summary statistics (Table 1)
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of compute layers (input/output pseudo-layers excluded)."""
        return sum(1 for l in self.layers() if l.kind.is_compute)

    @property
    def num_snn_layers(self) -> int:
        """Number of spiking layers."""
        return sum(1 for l in self.layers() if l.is_spiking)

    @property
    def num_ann_layers(self) -> int:
        """Number of non-spiking compute layers."""
        return self.num_layers - self.num_snn_layers

    @property
    def network_type(self) -> str:
        """``"ANN"``, ``"SNN"`` or ``"SNN-ANN"`` as in the paper's Table 1."""
        if self.num_snn_layers == 0:
            return "ANN"
        if self.num_ann_layers == 0:
            return "SNN"
        return "SNN-ANN"

    @property
    def total_macs(self) -> int:
        """Dense MAC count for one inference over the whole network."""
        return sum(l.macs for l in self.layers())

    @property
    def total_effective_macs(self) -> int:
        """Sparsity-aware MAC count for one inference."""
        return sum(l.effective_macs for l in self.layers())

    @property
    def total_parameters(self) -> int:
        """Total weight count."""
        return sum(l.num_parameters for l in self.layers())

    def occupancy_profile(self, input_density: float) -> Tuple[float, ...]:
        """Per-layer input occupancies for one input density.

        Propagates the measured input density through the compute layers in
        topological order using the support-dilation / activation-
        sparsification rules of :mod:`repro.nn.occupancy`, following the
        *graph*: at multi-input nodes each predecessor's output support is
        dilated independently and the supports are combined (union for
        element-wise fusion, channel-weighted mean for concat-style skips)
        before the consumer's firing fraction applies.  For purely serial
        networks this is bit-identical to the legacy chain walk.  Entries
        are raw (unquantized); the layered cost stack buckets them per
        layer.
        """
        from .occupancy import propagate_occupancy_graph

        return propagate_occupancy_graph(self, input_density)

    def with_firing_fractions(self, fractions: Dict[str, float]) -> "LayerGraph":
        """Copy of the graph with calibrated per-layer firing fractions.

        ``fractions`` maps layer names to observed firing fractions
        ``f in (0, 1]``; each named layer's ``activation_sparsity`` becomes
        ``1 - f``.  Layers not named keep their configured sparsity.  This
        is the write-back half of the measure → calibrate → re-cost loop
        (:mod:`repro.nn.calibration` produces the fractions).
        """
        clone = self.copy()
        for name, fraction in fractions.items():
            if name not in clone._graph:
                raise KeyError(f"unknown layer '{name}' in {self.name}")
            f = float(fraction)
            if not 0.0 < f <= 1.0:
                raise ValueError(
                    f"layer {name}: firing fraction must be in (0, 1], got {f}"
                )
            spec = clone._graph.nodes[name]["spec"]
            clone._graph.nodes[name]["spec"] = spec.with_sparsity(1.0 - f)
        return clone

    def critical_path_macs(self) -> int:
        """MACs along the longest dependency chain (lower bound on serial work)."""
        best: Dict[str, int] = {}
        for name in nx.topological_sort(self._graph):
            spec = self.layer(name)
            parents = self.predecessors(name)
            best[name] = spec.macs + max((best[p] for p in parents), default=0)
        return max(best.values(), default=0)

    def copy(self, name: Optional[str] = None) -> "LayerGraph":
        """Return a copy of the graph, optionally renamed."""
        clone = LayerGraph(name or self.name, self.task)
        clone._graph = self._graph.copy()
        return clone

    def __repr__(self) -> str:
        return (
            f"LayerGraph(name={self.name!r}, task={self.task!r}, "
            f"layers={self.num_layers}, type={self.network_type})"
        )


@dataclass
class TaskSpec:
    """One task in a multi-task execution scenario."""

    network: LayerGraph
    accuracy_budget: float = 0.05
    priority: float = 1.0

    @property
    def name(self) -> str:
        """Task name (the network name)."""
        return self.network.name


class MultiTaskGraph:
    """Union of several networks' layer graphs (the NMP input graph).

    Nodes are globally identified as ``"<network>.<layer>"``.  Cross-network
    edges are not created: concurrent tasks are independent, but compete for
    the same processing elements.
    """

    def __init__(self, tasks: Sequence[TaskSpec]) -> None:
        if not tasks:
            raise ValueError("a multi-task graph needs at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError("task network names must be unique")
        self.tasks = list(tasks)
        self._graph = nx.DiGraph()
        for task in self.tasks:
            net = task.network
            for layer_name in net.layer_names():
                node = self.node_id(net.name, layer_name)
                self._graph.add_node(
                    node,
                    spec=net.layer(layer_name),
                    network=net.name,
                    layer=layer_name,
                )
            for producer, consumer in net.edges():
                self._graph.add_edge(
                    self.node_id(net.name, producer), self.node_id(net.name, consumer)
                )

    # ------------------------------------------------------------------
    @staticmethod
    def node_id(network: str, layer: str) -> str:
        """Global node identifier for one layer of one network."""
        return f"{network}.{layer}"

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def nodes(self) -> List[str]:
        """All node ids in topological order."""
        return list(nx.topological_sort(self._graph))

    def compute_nodes(self) -> List[str]:
        """Node ids of compute layers only, topological order."""
        return [n for n in self.nodes() if self.spec(n).kind.is_compute]

    def spec(self, node: str) -> LayerSpec:
        """The :class:`LayerSpec` of a node."""
        return self._graph.nodes[node]["spec"]

    def network_of(self, node: str) -> str:
        """The network a node belongs to."""
        return self._graph.nodes[node]["network"]

    def predecessors(self, node: str) -> List[str]:
        """Data-dependency parents of a node."""
        return list(self._graph.predecessors(node))

    def successors(self, node: str) -> List[str]:
        """Data-dependency children of a node."""
        return list(self._graph.successors(node))

    def edges(self) -> List[Tuple[str, str]]:
        """All (producer, consumer) node-id pairs."""
        return list(self._graph.edges())

    def task(self, name: str) -> TaskSpec:
        """Look up a task by network name."""
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"unknown task '{name}'")

    @property
    def task_names(self) -> List[str]:
        """Names of all tasks."""
        return [t.name for t in self.tasks]

    def __repr__(self) -> str:
        return (
            f"MultiTaskGraph(tasks={self.task_names}, nodes={len(self)})"
        )
