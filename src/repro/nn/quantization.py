"""Precision types and linear quantization.

The Network Mapper searches over per-layer precision (paper Section 4.3):
candidates assign each layer one of the precisions supported by its
processing element, the pretrained network is "quantized linearly based on
the layer bit-widths" and evaluated on a validation subset.  This module
provides the precision enumeration, symmetric linear quantization of numpy
tensors and the resulting quantization error — the genuine mechanism behind
the accuracy-degradation constraint in Equation 2.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

import numpy as np

__all__ = ["Precision", "quantize", "dequantize", "fake_quantize", "quantization_error"]


class Precision(Enum):
    """Numeric precision of a layer's weights and activations."""

    FP32 = "fp32"
    FP16 = "fp16"
    INT8 = "int8"

    @property
    def bits(self) -> int:
        """Bit width of one element."""
        return {"fp32": 32, "fp16": 16, "int8": 8}[self.value]

    @property
    def bytes_per_element(self) -> float:
        """Storage size of one element in bytes."""
        return self.bits / 8.0

    @property
    def is_integer(self) -> bool:
        """True for fixed-point formats that require (de)quantization."""
        return self is Precision.INT8

    @property
    def relative_throughput(self) -> float:
        """Throughput multiplier relative to FP32 on a typical edge GPU.

        Tensor-core style hardware roughly doubles math throughput per
        halving of the operand width (FP16 = 2x, INT8 = 4x).
        """
        return {"fp32": 1.0, "fp16": 2.0, "int8": 4.0}[self.value]

    def __lt__(self, other: "Precision") -> bool:
        return self.bits < other.bits

    @classmethod
    def ordered(cls) -> Tuple["Precision", ...]:
        """Precisions from lowest to highest bit width."""
        return (cls.INT8, cls.FP16, cls.FP32)


def quantize(tensor: np.ndarray, precision: Precision) -> Tuple[np.ndarray, float]:
    """Symmetric linear quantization of ``tensor`` to ``precision``.

    Returns ``(codes, scale)``.  For floating point precisions the tensor is
    cast (FP16) or returned unchanged (FP32) with ``scale = 1``.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if precision is Precision.FP32:
        return tensor.copy(), 1.0
    if precision is Precision.FP16:
        return tensor.astype(np.float16).astype(np.float64), 1.0
    max_abs = float(np.max(np.abs(tensor))) if tensor.size else 0.0
    if max_abs == 0.0:
        return np.zeros_like(tensor), 1.0
    qmax = 127.0
    scale = max_abs / qmax
    codes = np.clip(np.round(tensor / scale), -qmax, qmax)
    return codes, scale


def dequantize(codes: np.ndarray, scale: float) -> np.ndarray:
    """Invert :func:`quantize` for integer codes."""
    return np.asarray(codes, dtype=np.float64) * scale


def fake_quantize(tensor: np.ndarray, precision: Precision) -> np.ndarray:
    """Quantize then immediately dequantize (simulated low-precision execution).

    This is how the reproduction models running a layer at reduced precision:
    values pass through the INT8/FP16 grid, so downstream computation sees the
    rounding error exactly as the real accelerator would.
    """
    if precision is Precision.FP32:
        return np.asarray(tensor, dtype=np.float64).copy()
    if precision is Precision.FP16:
        return np.asarray(tensor, dtype=np.float16).astype(np.float64)
    codes, scale = quantize(tensor, precision)
    return dequantize(codes, scale)


def quantization_error(tensor: np.ndarray, precision: Precision) -> float:
    """Root-mean-square error introduced by quantizing ``tensor``."""
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.size == 0:
        return 0.0
    approx = fake_quantize(tensor, precision)
    return float(np.sqrt(np.mean((tensor - approx) ** 2)))
