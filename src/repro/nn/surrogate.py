"""Surrogate event-vision algorithms used for accuracy experiments.

The paper evaluates accuracy of six pretrained networks (Table 2).  Those
pretrained weights are not available offline, so the reproduction uses
*surrogate algorithms*: real (not mocked) event-based estimators for each
task, operating on the same binned/sparse event representations, whose
accuracy genuinely degrades when

* intermediate tensors are quantized to lower precision (the NMP precision
  search), and
* event frames are merged more aggressively (the DSFA granularity trade-off).

Each surrogate exposes named *stages*; the per-stage precision list plays the
role of the per-layer precision assignment of the real networks.  Ground
truth comes from the synthetic scene generators, so the reported AEE / mIOU /
average depth error are measured, not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .quantization import Precision, fake_quantize

__all__ = [
    "SurrogateResult",
    "FlowSurrogate",
    "SegmentationSurrogate",
    "DepthSurrogate",
    "TrackingSurrogate",
    "surrogate_for_task",
]


@dataclass
class SurrogateResult:
    """Prediction plus the per-pixel validity mask used for scoring."""

    prediction: np.ndarray
    valid_mask: np.ndarray


def _resolve_precisions(
    stages: Sequence[str], precisions: Optional[Sequence[Precision]]
) -> List[Precision]:
    if precisions is None:
        return [Precision.FP32] * len(stages)
    precisions = list(precisions)
    if len(precisions) != len(stages):
        raise ValueError(
            f"expected {len(stages)} stage precisions, got {len(precisions)}"
        )
    return precisions


def _box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable box blur via cumulative sums (no scipy dependency needed)."""
    if radius <= 0:
        return image.copy()
    h, w = image.shape
    padded = np.pad(image, radius, mode="edge")
    csum = np.cumsum(np.cumsum(padded, axis=0), axis=1)
    csum = np.pad(csum, ((1, 0), (1, 0)))
    size = 2 * radius + 1
    out = (
        csum[size:, size:]
        - csum[:-size, size:]
        - csum[size:, :-size]
        + csum[:-size, :-size]
    )
    return out[: h, : w] / (size * size)


class FlowSurrogate:
    """Block-centroid optical flow from discretized event bins.

    The estimator splits the event bins of one frame interval into an early
    and a late half, computes the event-count-weighted centroid of each
    spatial block in both halves, and reports their displacement (scaled to
    the full interval) as the block's flow.  More bins give finer temporal
    localisation and therefore lower error; merging bins (DSFA) or quantizing
    the accumulation planes raises the error — the trade-offs the paper's
    Table 2 quantifies.
    """

    stages = ("accumulate", "centroid", "refine")

    def __init__(self, block_size: int = 8) -> None:
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.block_size = block_size

    def predict(
        self,
        bins: np.ndarray,
        precisions: Optional[Sequence[Precision]] = None,
    ) -> SurrogateResult:
        """Estimate flow from ``(B, 2, H, W)`` event bins.

        Returns a ``(2, H, W)`` flow field (pixels per interval) valid where
        events occurred.
        """
        precisions = _resolve_precisions(self.stages, precisions)
        bins = np.asarray(bins, dtype=np.float64)
        if bins.ndim != 4 or bins.shape[1] != 2:
            raise ValueError("expected (B, 2, H, W) event bins")
        num_bins, _, h, w = bins.shape
        counts = bins.sum(axis=1)  # (B, H, W) events per bin regardless of polarity
        counts = fake_quantize(counts, precisions[0])

        half = max(num_bins // 2, 1)
        early = counts[:half].sum(axis=0)
        late = counts[half:].sum(axis=0) if num_bins > 1 else early
        early = fake_quantize(early, precisions[1])
        late = fake_quantize(late, precisions[1])

        bs = self.block_size
        flow = np.zeros((2, h, w), dtype=np.float64)
        valid = np.zeros((h, w), dtype=bool)
        yy, xx = np.mgrid[0:h, 0:w]
        # Temporal separation between the two half-interval centroids, as a
        # fraction of the interval: centroids sit at 1/4 and 3/4.
        separation = 0.5 if num_bins > 1 else 1.0
        for by in range(0, h, bs):
            for bx in range(0, w, bs):
                sl = (slice(by, by + bs), slice(bx, bx + bs))
                e_mass = early[sl].sum()
                l_mass = late[sl].sum()
                if e_mass <= 0 or l_mass <= 0:
                    continue
                ex = (early[sl] * xx[sl]).sum() / e_mass
                ey = (early[sl] * yy[sl]).sum() / e_mass
                lx = (late[sl] * xx[sl]).sum() / l_mass
                ly = (late[sl] * yy[sl]).sum() / l_mass
                flow[0][sl] = (lx - ex) / separation
                flow[1][sl] = (ly - ey) / separation
                valid[sl] = (early[sl] + late[sl]) > 0
        flow = fake_quantize(flow, precisions[2])
        return SurrogateResult(prediction=flow, valid_mask=valid)


class SegmentationSurrogate:
    """Foreground/background segmentation from smoothed event density.

    Moving objects generate events; the static background (mostly) does not.
    The surrogate smooths the event-count frame and thresholds it at a
    fraction of its mean to produce a foreground mask, which is scored as a
    two-class mIOU against the ground-truth object masks.
    """

    stages = ("accumulate", "smooth", "threshold")

    def __init__(self, smoothing_radius: int = 3, threshold_scale: float = 1.0) -> None:
        if smoothing_radius < 0:
            raise ValueError("smoothing_radius must be non-negative")
        if threshold_scale <= 0:
            raise ValueError("threshold_scale must be positive")
        self.smoothing_radius = smoothing_radius
        self.threshold_scale = threshold_scale

    def predict(
        self,
        bins: np.ndarray,
        precisions: Optional[Sequence[Precision]] = None,
    ) -> SurrogateResult:
        """Segment ``(B, 2, H, W)`` event bins into a binary foreground mask."""
        precisions = _resolve_precisions(self.stages, precisions)
        bins = np.asarray(bins, dtype=np.float64)
        counts = bins.sum(axis=(0, 1))  # (H, W)
        counts = fake_quantize(counts, precisions[0])
        smooth = _box_filter(counts, self.smoothing_radius)
        smooth = fake_quantize(smooth, precisions[1])
        active_mean = smooth[smooth > 0].mean() if (smooth > 0).any() else 0.0
        threshold = self.threshold_scale * 0.5 * active_mean
        threshold = float(fake_quantize(np.array([threshold]), precisions[2])[0])
        mask = (smooth > threshold).astype(np.int32)
        return SurrogateResult(prediction=mask, valid_mask=np.ones_like(mask, dtype=bool))


class DepthSurrogate:
    """Monocular depth from motion parallax.

    For a translating camera, image motion is inversely proportional to
    depth.  The surrogate reuses :class:`FlowSurrogate` and maps flow
    magnitude to depth with a scale calibrated on the median, reporting the
    average absolute log error on event pixels (the metric style of
    Hidalgo-Carrio et al.).
    """

    stages = ("accumulate", "flow", "invert")

    def __init__(self, block_size: int = 8, min_flow: float = 0.05) -> None:
        self.flow_surrogate = FlowSurrogate(block_size=block_size)
        self.min_flow = min_flow

    def predict(
        self,
        bins: np.ndarray,
        precisions: Optional[Sequence[Precision]] = None,
        reference_depth: Optional[np.ndarray] = None,
    ) -> SurrogateResult:
        """Estimate a depth map from ``(B, 2, H, W)`` event bins."""
        precisions = _resolve_precisions(self.stages, precisions)
        flow_result = self.flow_surrogate.predict(
            bins, precisions=[precisions[0], precisions[1], precisions[1]]
        )
        magnitude = np.sqrt(flow_result.prediction[0] ** 2 + flow_result.prediction[1] ** 2)
        valid = flow_result.valid_mask & (magnitude > self.min_flow)
        depth = np.full(magnitude.shape, np.inf)
        if valid.any():
            scale = 1.0
            if reference_depth is not None:
                finite = valid & np.isfinite(reference_depth)
                if finite.any():
                    scale = float(
                        np.median(reference_depth[finite] * magnitude[finite])
                    )
            depth[valid] = scale / magnitude[valid]
        depth = fake_quantize(np.where(np.isfinite(depth), depth, 0.0), precisions[2])
        depth = np.where(depth > 0, depth, np.inf)
        return SurrogateResult(prediction=depth, valid_mask=valid)


class TrackingSurrogate:
    """DOTIE-style object localisation through temporal isolation of events.

    A single-layer spiking accumulator: per-pixel event counts leak over the
    bins and only pixels whose accumulated activity crosses a threshold
    "spike" (temporal isolation).  The spiking pixels are then spatially
    isolated by keeping the largest connected component, which is summarised
    by a bounding box and scored as IoU against the tightest box around the
    ground-truth moving objects.
    """

    stages = ("integrate", "threshold")

    def __init__(self, leak: float = 0.8, threshold_percentile: float = 60.0) -> None:
        if not 0.0 <= leak <= 1.0:
            raise ValueError("leak must be in [0, 1]")
        if not 0.0 < threshold_percentile < 100.0:
            raise ValueError("threshold_percentile must be in (0, 100)")
        self.leak = leak
        self.threshold_percentile = threshold_percentile

    def predict(
        self,
        bins: np.ndarray,
        precisions: Optional[Sequence[Precision]] = None,
    ) -> SurrogateResult:
        """Return a binary object mask from ``(B, 2, H, W)`` event bins."""
        from scipy import ndimage

        precisions = _resolve_precisions(self.stages, precisions)
        bins = np.asarray(bins, dtype=np.float64)
        num_bins = bins.shape[0]
        membrane = np.zeros(bins.shape[2:], dtype=np.float64)
        for b in range(num_bins):
            membrane = self.leak * membrane + bins[b].sum(axis=0)
            membrane = fake_quantize(membrane, precisions[0])
        # Smooth so the ring of edge events around the object becomes one blob,
        # then threshold relative to the active-pixel distribution.
        smoothed = _box_filter(membrane, 2)
        active = smoothed[smoothed > 0]
        if active.size:
            threshold = float(np.percentile(active, self.threshold_percentile))
        else:
            threshold = 0.0
        threshold = float(fake_quantize(np.array([threshold]), precisions[1])[0])
        mask = (smoothed > threshold).astype(np.int32)
        # Spatial isolation: keep the largest connected blob of spiking pixels.
        labels, count = ndimage.label(mask)
        if count > 1:
            sizes = ndimage.sum_labels(mask, labels, index=np.arange(1, count + 1))
            mask = (labels == (1 + int(np.argmax(sizes)))).astype(np.int32)
        return SurrogateResult(prediction=mask, valid_mask=np.ones_like(mask, dtype=bool))

    @staticmethod
    def bounding_box(mask: np.ndarray) -> Optional[Tuple[int, int, int, int]]:
        """Return ``(x0, y0, x1, y1)`` of the non-zero region, or None."""
        ys, xs = np.nonzero(mask)
        if ys.size == 0:
            return None
        return (int(xs.min()), int(ys.min()), int(xs.max()) + 1, int(ys.max()) + 1)


_TASK_SURROGATES = {
    "optical_flow": FlowSurrogate,
    "semantic_segmentation": SegmentationSurrogate,
    "depth_estimation": DepthSurrogate,
    "object_tracking": TrackingSurrogate,
}


def surrogate_for_task(task: str):
    """Instantiate the surrogate estimator for a task name."""
    if task not in _TASK_SURROGATES:
        raise KeyError(
            f"no surrogate for task '{task}'; available: {sorted(_TASK_SURROGATES)}"
        )
    return _TASK_SURROGATES[task]()
