"""Layer descriptors for the networks of the paper's Table 1.

A :class:`LayerSpec` captures everything the rest of the framework needs to
reason about one network layer:

* its *workload* — multiply-accumulate count, parameter count and activation
  sizes, used by the hardware latency/energy model and by the Network Mapper;
* its *nature* — ANN vs SNN, which constrains the processing elements it may
  run on (the DLA cannot execute custom spiking ops) and how activation
  sparsity scales the effective work.

Layer kinds cover the building blocks of the six evaluated networks:
convolutions, spiking convolutions (Conv + LIF), transposed convolutions for
the decoder halves of the U-Net style flow/depth networks, pooling, fully
connected heads and element-wise fusion layers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Tuple

from .quantization import Precision

__all__ = ["LayerKind", "LayerSpec"]


class LayerKind(Enum):
    """Supported layer types."""

    CONV2D = "conv2d"
    CONV_LIF = "conv_lif"          # spiking convolution (Conv + leaky integrate-and-fire)
    DECONV2D = "deconv2d"          # transposed convolution (decoder upsampling)
    DECONV_LIF = "deconv_lif"      # spiking transposed convolution
    POOL = "pool"
    FC = "fc"
    ELEMENTWISE = "elementwise"    # residual add / sensor fusion merge
    INPUT = "input"                # pseudo-layer marking a network input
    OUTPUT = "output"              # pseudo-layer marking a network output

    @property
    def is_spiking(self) -> bool:
        """True for SNN layers (LIF dynamics)."""
        return self in (LayerKind.CONV_LIF, LayerKind.DECONV_LIF)

    @property
    def is_compute(self) -> bool:
        """True for layers that perform real arithmetic work."""
        return self not in (LayerKind.INPUT, LayerKind.OUTPUT)


@dataclass(frozen=True)
class LayerSpec:
    """Description of a single network layer.

    Parameters
    ----------
    name:
        Unique name within its network, e.g. ``"enc1"``.
    kind:
        The :class:`LayerKind`.
    in_channels, out_channels:
        Channel counts.
    in_height, in_width:
        Spatial size of the input activation.
    kernel_size, stride:
        Convolution geometry (ignored for FC / element-wise layers).
    timesteps:
        Number of SNN timesteps the layer is unrolled over (1 for ANN layers).
        SNN layers repeat their computation once per timestep.
    activation_sparsity:
        Expected fraction of *zero* activations at the layer input.  Event
        data and spiking activations are highly sparse (paper Figure 1);
        sparse-aware execution skips that fraction of the work.
    """

    name: str
    kind: LayerKind
    in_channels: int = 1
    out_channels: int = 1
    in_height: int = 260
    in_width: int = 346
    kernel_size: int = 3
    stride: int = 1
    timesteps: int = 1
    activation_sparsity: float = 0.0

    def __post_init__(self) -> None:
        if self.kind.is_compute:
            if self.in_channels <= 0 or self.out_channels <= 0:
                raise ValueError(f"layer {self.name}: channel counts must be positive")
            if self.in_height <= 0 or self.in_width <= 0:
                raise ValueError(f"layer {self.name}: spatial size must be positive")
            if self.kernel_size <= 0 or self.stride <= 0:
                raise ValueError(f"layer {self.name}: kernel/stride must be positive")
        if self.timesteps < 1:
            raise ValueError(f"layer {self.name}: timesteps must be >= 1")
        if not 0.0 <= self.activation_sparsity < 1.0:
            raise ValueError(f"layer {self.name}: activation_sparsity must be in [0, 1)")

    # ------------------------------------------------------------------
    # shapes
    # ------------------------------------------------------------------
    @property
    def is_spiking(self) -> bool:
        """True if this layer contains LIF dynamics."""
        return self.kind.is_spiking

    @property
    def out_height(self) -> int:
        """Output activation height."""
        if self.kind in (LayerKind.CONV2D, LayerKind.CONV_LIF, LayerKind.POOL):
            return max(self.in_height // self.stride, 1)
        if self.kind in (LayerKind.DECONV2D, LayerKind.DECONV_LIF):
            return self.in_height * self.stride
        return self.in_height if self.kind is not LayerKind.FC else 1

    @property
    def out_width(self) -> int:
        """Output activation width."""
        if self.kind in (LayerKind.CONV2D, LayerKind.CONV_LIF, LayerKind.POOL):
            return max(self.in_width // self.stride, 1)
        if self.kind in (LayerKind.DECONV2D, LayerKind.DECONV_LIF):
            return self.in_width * self.stride
        return self.in_width if self.kind is not LayerKind.FC else 1

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """``(C, H, W)`` of the input activation."""
        return (self.in_channels, self.in_height, self.in_width)

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        """``(C, H, W)`` of the output activation."""
        return (self.out_channels, self.out_height, self.out_width)

    # ------------------------------------------------------------------
    # workload
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Number of weights (+ biases) in the layer."""
        if self.kind in (
            LayerKind.CONV2D,
            LayerKind.CONV_LIF,
            LayerKind.DECONV2D,
            LayerKind.DECONV_LIF,
        ):
            return (
                self.in_channels * self.out_channels * self.kernel_size**2
                + self.out_channels
            )
        if self.kind is LayerKind.FC:
            return (
                self.in_channels * self.in_height * self.in_width * self.out_channels
                + self.out_channels
            )
        return 0

    @property
    def macs(self) -> int:
        """Dense multiply-accumulate count for one inference (all timesteps)."""
        if self.kind in (LayerKind.CONV2D, LayerKind.CONV_LIF):
            per_step = (
                self.out_height
                * self.out_width
                * self.out_channels
                * self.in_channels
                * self.kernel_size**2
            )
        elif self.kind in (LayerKind.DECONV2D, LayerKind.DECONV_LIF):
            per_step = (
                self.in_height
                * self.in_width
                * self.out_channels
                * self.in_channels
                * self.kernel_size**2
            )
        elif self.kind is LayerKind.FC:
            per_step = self.in_channels * self.in_height * self.in_width * self.out_channels
        elif self.kind is LayerKind.POOL:
            per_step = self.out_height * self.out_width * self.out_channels * self.kernel_size**2
        elif self.kind is LayerKind.ELEMENTWISE:
            per_step = self.out_channels * self.out_height * self.out_width
        else:
            per_step = 0
        return per_step * self.timesteps

    @property
    def effective_macs(self) -> int:
        """MACs after skipping the zero-activation fraction.

        This is the work a sparsity-aware implementation (sparse libraries on
        the GPU/CPU, or event-driven SNN execution) actually performs; it is
        what E2SF enables the platform to exploit.
        """
        return int(round(self.macs * (1.0 - self.activation_sparsity)))

    @property
    def input_activation_elements(self) -> int:
        """Number of scalars in the input activation (all timesteps)."""
        return self.in_channels * self.in_height * self.in_width * self.timesteps

    @property
    def output_activation_elements(self) -> int:
        """Number of scalars in the output activation (all timesteps)."""
        return self.out_channels * self.out_height * self.out_width * self.timesteps

    def activation_bytes(self, precision: Precision) -> int:
        """Bytes of input + output activations at the given precision."""
        total = self.input_activation_elements + self.output_activation_elements
        return int(total * precision.bytes_per_element)

    def weight_bytes(self, precision: Precision) -> int:
        """Bytes of parameters at the given precision."""
        return int(self.num_parameters * precision.bytes_per_element)

    def output_bytes(self, precision: Precision) -> int:
        """Bytes of the output activation alone (what must cross PEs)."""
        return int(self.output_activation_elements * precision.bytes_per_element)

    def with_sparsity(self, activation_sparsity: float) -> "LayerSpec":
        """Return a copy with a different expected activation sparsity."""
        return replace(self, activation_sparsity=activation_sparsity)

    def with_input_size(self, height: int, width: int) -> "LayerSpec":
        """Return a copy with a different input spatial size."""
        return replace(self, in_height=height, in_width=width)
