"""Ev-Edge reproduction: efficient execution of event-based vision algorithms
on commodity edge platforms (DAC 2024).

The package is organised as:

* :mod:`repro.events`   — event camera substrate (DVS simulation, datasets, AER, noise)
* :mod:`repro.frames`   — dense and sparse (COO) event frame representations
* :mod:`repro.nn`       — neural network substrate (layers, graphs, SNN, quantization)
* :mod:`repro.models`   — the six networks of the paper's Table 1
* :mod:`repro.hw`       — heterogeneous edge platform model (Jetson Xavier AGX)
* :mod:`repro.runtime`  — discrete-event execution engine and scheduling baselines
* :mod:`repro.scenarios`— declarative traffic scenarios and the parallel sweep runner
* :mod:`repro.baselines`— dense all-GPU pipeline and static aggregation baselines
* :mod:`repro.core`     — the paper's contribution: E2SF, DSFA and NMP
* :mod:`repro.metrics`  — task accuracy metrics (AEE, mIOU, depth error)
* :mod:`repro.experiments` — one module per paper figure/table
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
