"""Multi-stream baselines for the traffic simulator.

Two reference points bracket :class:`~repro.runtime.streams.
MultiStreamSimulator` results:

* :func:`run_streams_isolated` — every stream gets the whole platform to
  itself (no contention, no cross-stream batching).  This is the
  infeasible upper bound: N sensors would need N boards.
* :func:`run_streams_unbatched` — all streams share one platform but
  cross-stream batching is disabled (``max_merge_streams=1``), isolating
  how much of the shared-platform throughput comes from merging.

Both baselines default to ``cost_mode="profile"`` — the same propagated
per-layer occupancy semantics the simulator they bracket runs under (a
bracket costed on different semantics than its subject would not bracket
anything).  The mode is recorded in every returned report
(``PipelineReport.cost_mode`` / ``MultiStreamReport.cost_mode``); pass
``cost_mode="flat"`` for the seed-identical scalar path.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.pipeline import EvEdgePipeline, PipelineReport
from ..hw.energy import EnergyModel
from ..hw.latency import LatencyModel
from ..hw.pe import Platform
from ..runtime.streams import MultiStreamReport, MultiStreamSimulator, StreamSource

__all__ = ["run_streams_isolated", "run_streams_unbatched"]


def run_streams_isolated(
    sources: Sequence[StreamSource],
    platform: Platform,
    latency_model: Optional[LatencyModel] = None,
    energy_model: Optional[EnergyModel] = None,
    cost_mode: str = "profile",
) -> Dict[str, PipelineReport]:
    """Run every stream on a private copy of the platform (no contention).

    Each stream is simulated independently with the single-stream pipeline,
    as if it owned the hardware outright — the per-stream latency floor the
    shared-platform simulation is compared against.  Each returned report
    records the ``cost_mode`` it was costed under.
    """
    reports: Dict[str, PipelineReport] = {}
    for source in sources:
        pipeline = EvEdgePipeline(
            source.network,
            platform,
            config=source.config,
            mapping=source.mapping,
            latency_model=latency_model,
            energy_model=energy_model,
            cost_mode=cost_mode,
        )
        reports[source.name] = pipeline.run(source.sequence)
    return reports


def run_streams_unbatched(
    sources: Sequence[StreamSource],
    platform: Platform,
    latency_model: Optional[LatencyModel] = None,
    energy_model: Optional[EnergyModel] = None,
    cost_mode: str = "profile",
) -> MultiStreamReport:
    """Share one platform across streams with cross-stream batching disabled."""
    simulator = MultiStreamSimulator(
        platform,
        sources,
        latency_model=latency_model,
        energy_model=energy_model,
        max_merge_streams=1,
        cost_mode=cost_mode,
    )
    return simulator.run()
