"""Static frame aggregation baselines.

Prior approaches ([7, 8] in the paper) construct event frames statically —
either by counting a fixed number of events or by sampling at a fixed time
interval — without considering the hardware processing rate.  These two
policies are the points of comparison for DSFA's dynamic merging.
"""

from __future__ import annotations

from typing import List

from ..events.types import EventStream
from ..frames.sparse import SparseFrame

__all__ = ["CountBasedAggregator", "FixedIntervalAggregator"]


class CountBasedAggregator:
    """Emit a sparse frame every ``events_per_frame`` events."""

    def __init__(self, events_per_frame: int = 5000) -> None:
        if events_per_frame < 1:
            raise ValueError("events_per_frame must be >= 1")
        self.events_per_frame = events_per_frame

    def aggregate(self, stream: EventStream) -> List[SparseFrame]:
        """Split ``stream`` into frames of a fixed event count."""
        frames: List[SparseFrame] = []
        geometry = stream.geometry
        for start in range(0, len(stream), self.events_per_frame):
            chunk = stream.slice_index(start, start + self.events_per_frame)
            if len(chunk) == 0:
                continue
            frames.append(
                SparseFrame.from_events(
                    chunk.x,
                    chunk.y,
                    chunk.p,
                    geometry.height,
                    geometry.width,
                    chunk.t_start,
                    chunk.t_end,
                )
            )
        return frames


class FixedIntervalAggregator:
    """Emit a sparse frame every ``interval`` seconds regardless of activity."""

    def __init__(self, interval: float = 1.0 / 30.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval

    def aggregate(self, stream: EventStream) -> List[SparseFrame]:
        """Split ``stream`` into fixed-duration frames."""
        frames: List[SparseFrame] = []
        if len(stream) == 0:
            return frames
        geometry = stream.geometry
        t = stream.t_start
        while t < stream.t_end:
            window = stream.slice_time(t, t + self.interval)
            frames.append(
                SparseFrame.from_events(
                    window.x,
                    window.y,
                    window.p,
                    geometry.height,
                    geometry.width,
                    t,
                    t + self.interval,
                )
            )
            t += self.interval
        return frames
