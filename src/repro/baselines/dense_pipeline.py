"""The all-GPU dense baseline pipeline (Figure 8's reference point).

This is the conventional deployment: raw events are accumulated into dense
event frames and every layer of the network runs on the GPU at full
precision, with no sparsity exploitation, no dynamic aggregation and no
cross-PE mapping.  It is expressed as an :class:`EvEdgeConfig` so the same
simulator runs both the baseline and the optimised configurations.
"""

from __future__ import annotations


from ..core.config import EvEdgeConfig, OptimizationLevel
from ..core.pipeline import EvEdgePipeline
from ..events.datasets import EventSequence
from ..hw.pe import Platform
from ..nn.graph import LayerGraph
from ..nn.quantization import Precision

__all__ = ["baseline_config", "run_all_gpu_baseline"]


def baseline_config(num_bins: int = 5, precision: Precision = Precision.FP32) -> EvEdgeConfig:
    """Configuration of the all-GPU dense baseline."""
    return EvEdgeConfig(
        num_bins=num_bins,
        baseline_precision=precision,
        optimization=OptimizationLevel.BASELINE,
    )


def run_all_gpu_baseline(
    network: LayerGraph,
    platform: Platform,
    sequence: EventSequence,
    num_bins: int = 5,
    precision: Precision = Precision.FP32,
):
    """Run the dense all-GPU pipeline over ``sequence`` and return its report."""
    pipeline = EvEdgePipeline(
        network=network,
        platform=platform,
        config=baseline_config(num_bins=num_bins, precision=precision),
    )
    return pipeline.run(sequence)
