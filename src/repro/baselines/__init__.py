"""Baselines: dense all-GPU pipeline and static aggregation policies."""

from .dense_pipeline import baseline_config, run_all_gpu_baseline
from .static_agg import CountBasedAggregator, FixedIntervalAggregator

__all__ = [
    "baseline_config",
    "run_all_gpu_baseline",
    "CountBasedAggregator",
    "FixedIntervalAggregator",
]
