"""Baselines: dense all-GPU pipeline, static aggregation, multi-stream refs."""

from .dense_pipeline import baseline_config, run_all_gpu_baseline
from .multi_stream import run_streams_isolated, run_streams_unbatched
from .static_agg import CountBasedAggregator, FixedIntervalAggregator

__all__ = [
    "baseline_config",
    "run_all_gpu_baseline",
    "CountBasedAggregator",
    "FixedIntervalAggregator",
    "run_streams_isolated",
    "run_streams_unbatched",
]
