"""Tests for the layered per-layer-occupancy cost stack and its oracle.

Covers the profile plumbing end to end: per-layer bucketing (including the
first-bucket rounding fix at per-layer granularity), merge-time profile
combination on dispatched batches, the flat-profile equivalence against the
scalar cost oracle kept in :mod:`repro.runtime.legacy`, and the cache-sharing
property the layered stack exists for.
"""

from __future__ import annotations

import pytest

from repro.core import DSFAConfig, EvEdgeConfig, EvEdgePipeline, OptimizationLevel
from repro.core.dsfa import DynamicSparseFrameAggregator
from repro.events import generate_sequence
from repro.frames.sparse import SparseFrameBatch
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.runtime import (
    LayerCostTable,
    MultiStreamSimulator,
    NetworkCostModel,
    OccupancyProfile,
    StreamSource,
)
from repro.nn import LayerGraph, LayerKind, LayerSpec
from repro.runtime.legacy import ChainCostModel, ScalarCostModel


def assert_reports_identical(new, old):
    """Bit-identical per-stream records and aggregate statistics."""
    assert set(new.reports) == set(old.reports)
    for name in new.reports:
        a, b = new.reports[name], old.reports[name]
        assert a.records == b.records, name
        assert a.frames_generated == b.frames_generated, name
        assert a.frames_merged == b.frames_merged, name
        assert a.frames_dropped == b.frames_dropped, name
        assert a.num_inferences == b.num_inferences, name
        assert a.mean_latency == b.mean_latency, name
        assert a.total_energy == b.total_energy, name
        assert a.mean_occupancy == b.mean_occupancy, name
        assert a.total_time == b.total_time, name
    assert new.total_inferences == old.total_inferences
    assert new.frames_generated == old.frames_generated
    assert new.frames_dropped == old.frames_dropped
    assert new.mean_latency == old.mean_latency
    assert new.total_energy == old.total_energy
    assert new.makespan == old.makespan
    assert new.throughput == old.throughput


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def network():
    return build_network("spikeflownet", 64, 64)


@pytest.fixture(scope="module")
def mixed_density_sources(network):
    """DSFA + no-DSFA streams over scenes spanning the density spectrum."""
    scenes = ("calibration_bars", "indoor_flying1", "outdoor_day1", "high_speed_disk")
    with_dsfa = EvEdgeConfig(
        num_bins=8,
        optimization=OptimizationLevel.E2SF_DSFA,
        dsfa=DSFAConfig(inference_queue_depth=2),
    )
    no_dsfa = EvEdgeConfig(
        num_bins=8,
        optimization=OptimizationLevel.E2SF,
        dsfa=DSFAConfig(inference_queue_depth=2),
    )
    sources = []
    for i in range(8):
        sequence = generate_sequence(
            scenes[i % len(scenes)], scale=0.08, duration=0.25, seed=11 + i
        )
        config = with_dsfa if i % 2 else no_dsfa
        sources.append(
            StreamSource(f"mix{i}", sequence, network, config, start_offset=0.0005 * i)
        )
    return sources


def _sparse_model(network, platform, model_cls=NetworkCostModel, **kwargs):
    return model_cls(
        network,
        platform,
        config=EvEdgeConfig(optimization=OptimizationLevel.E2SF_DSFA),
        table=LayerCostTable(occupancy_resolution=1.0 / 64.0),
        **kwargs,
    )


def _serial_network(depth: int = 8) -> LayerGraph:
    """A purely serial spiking chain (no skips, no joins)."""
    g = LayerGraph("serial_chain", task="optical_flow")
    g.chain(
        [
            LayerSpec(
                name=f"conv{i}",
                kind=LayerKind.CONV_LIF,
                in_channels=8,
                out_channels=8,
                in_height=32,
                in_width=32,
                kernel_size=3,
                activation_sparsity=0.85,
            )
            for i in range(depth)
        ]
    )
    return g


class TestOccupancyProfileBuilding:
    def test_invalid_cost_mode_rejected(self, network, platform):
        with pytest.raises(ValueError):
            NetworkCostModel(network, platform, cost_mode="quantum")

    def test_flat_profile_matches_scalar_semantics(self, network, platform):
        model = _sparse_model(network, platform)
        profile = model.occupancy_profile(0.1)
        assert profile.is_flat
        assert profile.entries[0] == model.table.bucket(0.1)
        assert all(e is None for e in profile.entries[1:])

    def test_profile_mode_propagates_every_layer(self, network, platform):
        model = _sparse_model(network, platform, cost_mode="profile")
        profile = model.occupancy_profile(0.1)
        assert not profile.is_flat
        assert all(e is not None for e in profile.entries)
        # Entries are bucket representatives (per-layer bucketing applied
        # after propagation).
        for entry in profile.entries:
            assert entry == model.table.bucket(entry)

    def test_first_bucket_rounding_applies_per_layer(self, network, platform):
        # Extends the PR-4 ``bucket`` fix to per-layer granularity: a tiny
        # but non-zero input density must not quantize to occupancy 0 at
        # *any* layer — deep propagated occupancies are tiny first.
        model = _sparse_model(network, platform, cost_mode="profile")
        profile = model.occupancy_profile(1e-4)
        first_bucket = 1.0 / 64.0
        for entry in profile.entries:
            assert entry >= first_bucket

    def test_profiles_cached_per_input_bucket(self, network, platform):
        model = _sparse_model(network, platform, cost_mode="profile")
        a = model.occupancy_profile(0.1000)
        b = model.occupancy_profile(0.1005)  # same 1/64 bucket
        assert a is b

    def test_converged_deep_buckets_shared_across_densities(self, platform):
        # Convergence onto shared deep buckets is a *serial* property: on a
        # chain the propagation is a contraction onto the modelled-activity
        # fixed point.  (Skip connections re-inject shallow, input-dependent
        # occupancies into a DAG's decoders, so graph propagation keeps DAG
        # profiles density-dependent much deeper — by design.)
        model = _sparse_model(_serial_network(12), platform, cost_mode="profile")
        a = model.occupancy_profile(0.05)
        b = model.occupancy_profile(0.12)
        assert a.entries[0] != b.entries[0]
        depth = len(a.entries)
        shared = sum(
            1 for x, y in zip(a.entries, b.entries) if x == y
        )
        # The deep majority of the profile must coincide bucket for bucket.
        assert shared >= depth // 2
        assert a.entries[depth - 1] == b.entries[depth - 1]

    def test_rebind_keeps_profiles_but_drops_network_memo(self, network, platform):
        model = _sparse_model(network, platform, cost_mode="profile")
        profile = model.occupancy_profile(0.1)
        model.inference_cost(0.1, 1)
        assert model._cache
        model.rebind(None)
        assert not model._cache
        assert model.occupancy_profile(0.1) is profile


class TestBatchProfiles:
    def test_flat_batch_profile_uses_mean_density(self, network, platform):
        model = _sparse_model(network, platform)
        source = StreamSource(
            "s",
            generate_sequence("indoor_flying1", scale=0.08, duration=0.2, seed=0),
            network,
            EvEdgeConfig(optimization=OptimizationLevel.E2SF_DSFA),
        )
        frames = [f for _, f in source.generate_frames()][:4]
        batch = SparseFrameBatch(frames)
        profile = model.batch_profile(batch)
        assert profile == model.occupancy_profile(max(batch.mean_density, 1e-4))

    def test_merge_time_combination_is_member_mean(self, network, platform):
        # DSFA merge-time profile combination: a batched dispatch's profile
        # is the entry-wise mean of its members' propagated profiles (then
        # re-bucketed), not the propagation of the mean density.
        model = _sparse_model(network, platform, cost_mode="profile")
        source = StreamSource(
            "s",
            generate_sequence("high_speed_disk", scale=0.1, duration=0.25, seed=3),
            network,
            EvEdgeConfig(optimization=OptimizationLevel.E2SF_DSFA),
        )
        frames = [f for _, f in source.generate_frames()]
        frames = sorted(frames, key=lambda f: f.density)
        batch = SparseFrameBatch([frames[0], frames[-1]])  # extremes of the run
        assert frames[0].density != frames[-1].density
        profile = model.batch_profile(batch)
        members = [
            model.occupancy_profile(max(density, 1e-4))
            for density in batch.frame_densities()
        ]
        expected = OccupancyProfile.combine(members).bucketed(model.table.bucket)
        assert profile == expected

    def test_dsfa_dispatched_batch_gets_combined_profile(self, network, platform):
        model = _sparse_model(network, platform, cost_mode="profile")
        source = StreamSource(
            "s",
            generate_sequence("indoor_flying1", scale=0.1, duration=0.3, seed=1),
            network,
            EvEdgeConfig(
                num_bins=10,
                optimization=OptimizationLevel.E2SF_DSFA,
                dsfa=DSFAConfig(event_buffer_size=6, merge_bucket_size=2),
            ),
        )
        aggregator = DynamicSparseFrameAggregator(source.config.dsfa)
        batch = None
        for _, frame in source.generate_frames():
            batch = aggregator.push(frame)
            if batch is not None and len(batch) > 1:
                break
        assert batch is not None and len(batch) > 1
        profile = model.batch_profile(batch)
        assert len(profile) == len(model._assignments)
        assert all(e is not None for e in profile.entries)

    def test_scalar_oracle_keeps_merged_profiles_raw(self, network, platform):
        # The scalar-keyed stack has no per-layer quantization anywhere —
        # merged dispatches included.  Its combined profile must be the
        # exact entry-wise mean of the raw member profiles, not a
        # re-bucketed one.
        model = ScalarCostModel(
            network,
            platform,
            config=EvEdgeConfig(optimization=OptimizationLevel.E2SF_DSFA),
            table=LayerCostTable(occupancy_resolution=1.0 / 64.0),
            cost_mode="profile",
        )
        source = StreamSource(
            "s",
            generate_sequence("high_speed_disk", scale=0.1, duration=0.25, seed=3),
            network,
            EvEdgeConfig(optimization=OptimizationLevel.E2SF_DSFA),
        )
        frames = sorted(
            (f for _, f in source.generate_frames()), key=lambda f: f.density
        )
        batch = SparseFrameBatch([frames[0], frames[-1]])
        profile = model.batch_profile(batch)
        members = [
            model.occupancy_profile(max(density, 1e-4))
            for density in batch.frame_densities()
        ]
        assert profile == OccupancyProfile.combine(members)  # no re-bucketing

    def test_dense_streams_profile_at_full_occupancy(self, network, platform):
        model = NetworkCostModel(
            network,
            platform,
            config=EvEdgeConfig(optimization=OptimizationLevel.BASELINE),
            cost_mode="profile",
        )
        batch = SparseFrameBatch([])
        assert model.batch_profile(batch, 1.0) == model.occupancy_profile(1.0)

    def test_profile_length_mismatch_rejected(self, network, platform):
        model = _sparse_model(network, platform)
        with pytest.raises(ValueError):
            model.profile_cost(OccupancyProfile((0.1,)), 1)


class TestProfileCosts:
    def test_flat_inference_cost_unchanged_by_refactor(self, network, platform):
        # The layered composition with a flat profile must equal the
        # pre-profile scalar walk bit for bit (same table, same buckets).
        layered = _sparse_model(network, platform)
        oracle = ScalarCostModel(
            network,
            platform,
            config=EvEdgeConfig(optimization=OptimizationLevel.E2SF_DSFA),
            table=LayerCostTable(occupancy_resolution=1.0 / 64.0),
        )
        for occupancy, batch in [(1e-4, 1), (0.05, 2), (0.3, 4), (1.0, 1)]:
            assert layered.inference_cost(occupancy, batch) == oracle.inference_cost(
                occupancy, batch
            )

    def test_propagated_costs_are_cheaper_for_sparse_inputs(self, network, platform):
        flat = _sparse_model(network, platform)
        profiled = _sparse_model(network, platform, cost_mode="profile")
        lat_flat, en_flat = flat.inference_cost(0.02, 1)
        lat_prof, en_prof = profiled.inference_cost(0.02, 1)
        # A nearly-empty input keeps deep layers sparser than their static
        # modelled activity, so the propagated cost can only be lower.
        assert lat_prof <= lat_flat
        assert en_prof <= en_flat
        assert lat_prof > 0 and en_prof > 0


class TestGraphChainDivergence:
    """Pin where graph propagation agrees with the chain oracle — and where
    it must not.  :class:`ChainCostModel` is the layered caching
    architecture with the pre-graph serial chain walk, so any difference
    between the two models is propagation semantics, nothing else."""

    def test_serial_network_bit_identical_to_chain_oracle(self, platform):
        graph_model = _sparse_model(_serial_network(8), platform, cost_mode="profile")
        chain_model = _sparse_model(
            _serial_network(8), platform, model_cls=ChainCostModel, cost_mode="profile"
        )
        for occ in (1e-4, 0.02, 0.1, 0.5, 1.0):
            assert graph_model.occupancy_profile(occ) == chain_model.occupancy_profile(
                occ
            )
            assert graph_model.inference_cost(occ, 2) == chain_model.inference_cost(
                occ, 2
            )

    def test_dag_network_diverges_from_chain_oracle_at_joins(self, network, platform):
        graph_model = _sparse_model(network, platform, cost_mode="profile")
        chain_model = _sparse_model(
            network, platform, model_cls=ChainCostModel, cost_mode="profile"
        )
        a = graph_model.occupancy_profile(0.1)
        b = chain_model.occupancy_profile(0.1)
        names = [s.name for s in network.layers() if s.kind.is_compute]
        first_join = next(
            i
            for i, n in enumerate(names)
            if len(
                [
                    p
                    for p in network.predecessors(n)
                    if network.layer(p).kind.is_compute
                ]
            )
            > 1
        )
        # The serial prefix before the first join is untouched...
        assert a.entries[:first_join] == b.entries[:first_join]
        # ...and the models *must* diverge once joins start combining
        # predecessor supports the chain walk ignores.
        assert a.entries[first_join:] != b.entries[first_join:]

    def test_flat_mode_unaffected_by_graph_refactor(self, network, platform):
        graph_model = _sparse_model(network, platform)
        chain_model = _sparse_model(network, platform, model_cls=ChainCostModel)
        for occ in (0.02, 0.3):
            assert graph_model.inference_cost(occ, 1) == chain_model.inference_cost(
                occ, 1
            )


class TestHardwareProfileHooks:
    """The hw-layer cost hooks accept per-layer occupancy sequences."""

    def test_network_latency_with_profile_matches_layer_sum(self, network, platform):
        from repro.hw.latency import LatencyModel

        model = LatencyModel()
        gpu = platform.gpu()
        specs = [s for s in network.layers() if s.kind.is_compute]
        profile = network.occupancy_profile(0.08)
        from repro.nn import Precision

        total = model.network_latency(
            network.layers(), gpu, Precision.FP16, sparse=True, occupancies=profile
        )
        expected = sum(
            model.layer_latency(
                spec, gpu, Precision.FP16, sparse=True, occupancy=occ
            ).total
            for spec, occ in zip(specs, profile)
        )
        assert total == pytest.approx(expected)
        # And the profile-aware total differs from the static-sparsity one.
        assert total != model.network_latency(
            network.layers(), gpu, Precision.FP16, sparse=True
        )

    def test_network_energy_with_profile_matches_layer_sum(self, network, platform):
        from repro.hw.energy import EnergyModel
        from repro.nn import Precision

        model = EnergyModel()
        gpu = platform.gpu()
        specs = [s for s in network.layers() if s.kind.is_compute]
        profile = network.occupancy_profile(0.08)
        total = model.network_energy(
            network.layers(), gpu, Precision.FP16, sparse=True, occupancies=profile
        )
        expected = sum(
            model.layer_energy(
                spec, gpu, Precision.FP16, sparse=True, occupancy=occ
            ).total
            for spec, occ in zip(specs, profile)
        )
        assert total == pytest.approx(expected)

    def test_occupancy_length_mismatch_rejected(self, network, platform):
        from repro.hw.energy import EnergyModel
        from repro.hw.latency import LatencyModel
        from repro.nn import Precision

        gpu = platform.gpu()
        with pytest.raises(ValueError):
            LatencyModel().network_latency(
                network.layers(), gpu, Precision.FP16, occupancies=[0.1]
            )
        with pytest.raises(ValueError):
            EnergyModel().network_energy(
                network.layers(), gpu, Precision.FP16, occupancies=[0.1]
            )


class TestFleetEquivalenceAndSharing:
    def test_flat_fleet_bit_identical_to_scalar_oracle(
        self, platform, mixed_density_sources
    ):
        # Equivalence mode: uniform (flat) profiles must reproduce the
        # PR-4 scalar cost oracle's MultiStreamReport bit for bit.
        new = MultiStreamSimulator(platform, mixed_density_sources).run()
        oracle = MultiStreamSimulator(
            platform, mixed_density_sources, cost_model_factory=ScalarCostModel
        ).run()
        assert new.cost_mode == "flat"
        assert_reports_identical(new, oracle)

    def test_layered_stack_outshares_scalar_keyed_stack(
        self, platform, mixed_density_sources
    ):
        layered = MultiStreamSimulator(
            platform, mixed_density_sources, cost_mode="profile"
        ).run()
        scalar = MultiStreamSimulator(
            platform,
            mixed_density_sources,
            cost_mode="profile",
            cost_model_factory=ScalarCostModel,
        ).run()
        assert layered.cost_mode == "profile"
        # Identical traffic shape on both stacks...
        assert layered.frames_generated == scalar.frames_generated
        # ...but per-layer bucketing after propagation shares deep-layer
        # cells the scalar-keyed stack re-mints per input bucket.
        assert layered.cache_info["hit_rate"] > scalar.cache_info["hit_rate"]
        assert layered.cache_info["entries"] < scalar.cache_info["entries"]

    def test_simulator_rejects_unknown_cost_mode(
        self, platform, mixed_density_sources
    ):
        with pytest.raises(ValueError):
            MultiStreamSimulator(
                platform, mixed_density_sources, cost_mode="exact"
            )

    def test_pipeline_profile_mode_runs_and_is_cheaper(self, network, platform):
        sequence = generate_sequence("indoor_flying1", scale=0.1, duration=0.3, seed=0)
        config = EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF_DSFA)
        flat = EvEdgePipeline(network, platform, config).run(sequence)
        profiled = EvEdgePipeline(
            network, platform, config, cost_mode="profile"
        ).run(sequence)
        assert profiled.num_inferences > 0
        assert profiled.total_energy <= flat.total_energy
