"""Report-equivalence regression: refactored hot path vs pre-refactor oracle.

The fleet-scale refactor (O(1) kernel routing, indexed pending queues,
coalesced wake-ups, streaming report accumulators) must be *provably
report-identical*: the same fleet and seed produce bit-identical
``MultiStreamReport`` aggregates on the refactored path and on the
pre-refactor reference implementations kept in :mod:`repro.runtime.legacy`.
"""

from __future__ import annotations

import pytest

from repro.core import DSFAConfig, EvEdgeConfig, OptimizationLevel
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.runtime import MultiStreamSimulator, StreamSource
from repro.runtime.legacy import LegacyListServer, LegacyScanKernel
from repro.scenarios.registry import default_registry
from repro.scenarios.spec import ScenarioSpec

LEGACY = dict(kernel_factory=LegacyScanKernel, server_factory=LegacyListServer)


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def contended_sources():
    """A seeded fleet exercising every hot-path branch.

    Mixed DSFA / no-DSFA streams over two networks with phase offsets and
    shallow queues: merges, per-stream evictions (queue-full), client-side
    backlog drops and shared-PE wake-ups all fire.
    """
    sequence = generate_sequence("indoor_flying1", scale=0.12, duration=0.4, seed=0)
    heavy = build_network("adaptive_spikenet", 128, 128)
    light = build_network("spikeflownet", 64, 64)
    no_dsfa = EvEdgeConfig(
        num_bins=10,
        optimization=OptimizationLevel.E2SF,
        dsfa=DSFAConfig(inference_queue_depth=2),
    )
    with_dsfa = EvEdgeConfig(
        num_bins=10,
        optimization=OptimizationLevel.E2SF_DSFA,
        dsfa=DSFAConfig(inference_queue_depth=1),
    )
    return (
        [
            StreamSource(f"raw{i}", sequence, heavy, no_dsfa, start_offset=0.0007 * i)
            for i in range(8)
        ]
        + [
            StreamSource(f"agg{i}", sequence, heavy, with_dsfa, start_offset=0.001 * i)
            for i in range(8)
        ]
        + [
            StreamSource(f"lt{i}", sequence, light, with_dsfa, start_offset=0.0003 * i)
            for i in range(4)
        ]
    )


def assert_reports_identical(new, old):
    """Bit-identical per-stream records and aggregate statistics."""
    assert set(new.reports) == set(old.reports)
    for name in new.reports:
        a, b = new.reports[name], old.reports[name]
        assert a.records == b.records, name
        assert a.frames_generated == b.frames_generated, name
        assert a.frames_merged == b.frames_merged, name
        assert a.frames_dropped == b.frames_dropped, name
        assert a.num_inferences == b.num_inferences, name
        assert a.mean_latency == b.mean_latency, name
        assert a.total_energy == b.total_energy, name
        assert a.mean_occupancy == b.mean_occupancy, name
        assert a.total_time == b.total_time, name
    assert new.total_inferences == old.total_inferences
    assert new.frames_generated == old.frames_generated
    assert new.frames_dropped == old.frames_dropped
    assert new.mean_latency == old.mean_latency
    assert new.total_energy == old.total_energy
    assert new.makespan == old.makespan
    assert new.active_window == old.active_window
    assert new.throughput == old.throughput


class TestReportEquivalence:
    def test_contended_mixed_fleet_is_bit_identical(self, platform, contended_sources):
        new = MultiStreamSimulator(platform, contended_sources).run()
        old = MultiStreamSimulator(platform, contended_sources, **LEGACY).run()
        # The fleet must actually exercise drops and merges, or this test
        # proves nothing about the refactored queue machinery.
        assert new.frames_dropped > 0
        windows = [
            (r.start_time, r.end_time)
            for stream in new.reports.values()
            for r in stream.records
        ]
        assert len(windows) > len(set(windows))  # cross-stream merges happened
        assert_reports_identical(new, old)

    @pytest.mark.parametrize("family", ["steady", "churn"])
    def test_registry_fleets_are_bit_identical(self, platform, family):
        spec = ScenarioSpec(
            name=f"equiv-{family}",
            family=family,
            num_streams=12,
            duration=0.3,
            scale=0.1,
            seed=3,
        )
        sources = default_registry().compile(spec)
        new = MultiStreamSimulator(platform, sources).run()
        old = MultiStreamSimulator(platform, sources, **LEGACY).run()
        assert_reports_identical(new, old)

    def test_wakeup_coalescing_reduces_event_count(self, platform, contended_sources):
        # Identical reports, strictly fewer kernel events: the per-dispatch
        # wake-up storm is the pre-refactor behaviour the server coalesces
        # into at most one outstanding wake-up per busy frontier.
        new = MultiStreamSimulator(platform, contended_sources).run()
        old = MultiStreamSimulator(platform, contended_sources, **LEGACY).run()
        assert new.events_processed < old.events_processed


class TestStreamingAccumulators:
    def test_lean_mode_matches_full_mode_bit_for_bit(
        self, platform, contended_sources
    ):
        full = MultiStreamSimulator(platform, contended_sources).run()
        lean = MultiStreamSimulator(
            platform, contended_sources, retain_records=False
        ).run()
        for name in full.reports:
            a, b = full.reports[name], lean.reports[name]
            assert b.records == []  # records not retained
            assert a.num_inferences == b.num_inferences, name
            assert a.mean_latency == b.mean_latency, name
            assert a.total_energy == b.total_energy, name
            assert a.mean_occupancy == b.mean_occupancy, name
            assert a.total_time == b.total_time, name
            assert a.frames_dropped == b.frames_dropped, name
        assert full.mean_latency == lean.mean_latency
        assert full.total_energy == lean.total_energy
        assert full.makespan == lean.makespan
        assert full.throughput == lean.throughput

    def test_accumulators_match_record_recomputation(
        self, platform, contended_sources
    ):
        # The streaming sums must equal a sequential recomputation over the
        # retained records (the reference aggregate definition).
        report = MultiStreamSimulator(platform, contended_sources).run()
        for stream in report.reports.values():
            latency = energy = occupancy = max_end = 0.0
            for record in stream.records:
                latency += record.latency
                energy += record.energy
                occupancy += record.occupancy
                max_end = max(max_end, record.end_time)
            count = len(stream.records)
            assert stream.num_inferences == count
            assert stream.total_energy == energy
            assert stream.total_time == max_end
            if count:
                assert stream.mean_latency == latency / count
                assert stream.mean_occupancy == occupancy / count

    def test_direct_record_append_falls_back(self):
        # Hand-built reports (reference implementations in the test suite
        # append to .records directly) still aggregate correctly.
        from repro.runtime import InferenceRecord, PipelineReport

        report = PipelineReport()
        report.records.append(
            InferenceRecord(
                dispatch_time=1.0,
                start_time=1.0,
                end_time=3.0,
                num_frames=2,
                occupancy=0.5,
                energy=4.0,
            )
        )
        assert report.num_inferences == 1
        assert report.mean_latency == 2.0
        assert report.total_energy == 4.0
        assert report.mean_occupancy == 0.5
        assert report.total_time == 3.0
