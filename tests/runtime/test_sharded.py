"""Sharded runtime: partition invariants, report merging, equivalence.

The load-bearing guarantee is seeded equivalence: a ``platform_group``
partition is PE-disjoint by construction, so the sharded run's merged
``MultiStreamReport`` must be **bit-identical** to the single-process
kernel — per-stream records included — for any epoch length and in both
inline and worker-process modes.  ``shards=1`` must take the unmodified
single-process path.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import DSFAConfig, EvEdgeConfig, OptimizationLevel
from repro.core.nmp.candidate import Assignment, MappingCandidate
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.nn.quantization import Precision
from repro.runtime import (
    MultiStreamReport,
    MultiStreamSimulator,
    NetworkCostModel,
    ShardedSimulator,
    StreamSource,
    partition_sources,
    signature_groups,
)
from repro.runtime.shard import epoch_rows

from test_kernel_equivalence import assert_reports_identical


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


def _pin(network, pe: str) -> MappingCandidate:
    return MappingCandidate(
        {
            layer.name: Assignment(pe=pe, precision=Precision.FP16)
            for layer in network.layers()
        }
    )


@pytest.fixture(scope="module")
def disjoint_sources(platform):
    """A seeded fleet whose two signatures occupy disjoint PE sets.

    One network pinned wholly onto the GPU, the other wholly onto the CPU
    (``OptimizationLevel.FULL`` honours the explicit mapping), so a
    ``platform_group`` partition has two independent components and the
    sharded run can be compared bit-for-bit against the single kernel.
    """
    sequence = generate_sequence("indoor_flying1", scale=0.1, duration=0.3, seed=1)
    heavy = build_network("adaptive_spikenet", 96, 96)
    light = build_network("spikeflownet", 64, 64)
    config = EvEdgeConfig(
        num_bins=10,
        optimization=OptimizationLevel.FULL,
        dsfa=DSFAConfig(inference_queue_depth=2),
    )
    return (
        [
            StreamSource(
                f"g{i}",
                sequence,
                heavy,
                config,
                mapping=_pin(heavy, "gpu"),
                start_offset=0.0007 * i,
            )
            for i in range(5)
        ]
        + [
            StreamSource(
                f"c{i}",
                sequence,
                light,
                config,
                mapping=_pin(light, "cpu"),
                start_offset=0.0003 * i,
            )
            for i in range(5)
        ]
    )


@pytest.fixture(scope="module")
def mixed_sources():
    """Two signatures sharing the platform's PEs (overlapping mappings)."""
    sequence = generate_sequence("indoor_flying1", scale=0.1, duration=0.3, seed=0)
    heavy = build_network("adaptive_spikenet", 96, 96)
    light = build_network("spikeflownet", 64, 64)
    config = EvEdgeConfig(
        num_bins=10,
        optimization=OptimizationLevel.E2SF_DSFA,
        dsfa=DSFAConfig(inference_queue_depth=2),
    )
    return (
        [
            StreamSource(f"h{i}", sequence, heavy, config, start_offset=0.0007 * i)
            for i in range(6)
        ]
        + [
            StreamSource(f"l{i}", sequence, light, config, start_offset=0.0003 * i)
            for i in range(6)
        ]
    )


class TestPartitioning:
    def test_signature_groups_are_first_appearance_ordered(self, mixed_sources):
        groups = signature_groups(mixed_sources)
        assert [sorted(g) for g in groups] == [[0, 1, 2, 3, 4, 5], [6, 7, 8, 9, 10, 11]]

    def test_partition_is_disjoint_and_complete(self, mixed_sources):
        plan = partition_sources(mixed_sources, 2)
        flat = [i for bucket in plan.assignments for i in bucket]
        assert sorted(flat) == list(range(len(mixed_sources)))
        assert plan.num_shards == 2
        assert plan.shard_sizes == (6, 6)

    def test_partition_never_splits_a_signature(self, mixed_sources):
        plan = partition_sources(mixed_sources, 2)
        for group in signature_groups(mixed_sources):
            owners = {
                shard
                for shard, bucket in enumerate(plan.assignments)
                for i in bucket
                if i in set(group)
            }
            assert len(owners) == 1, "signature group split across shards"

    def test_effective_shards_capped_by_units(self, mixed_sources):
        # Two signatures cannot fill eight shards.
        plan = partition_sources(mixed_sources, 8)
        assert plan.requested == 8
        assert plan.num_shards == 2

    def test_partition_is_deterministic(self, mixed_sources):
        a = partition_sources(mixed_sources, 3)
        b = partition_sources(list(mixed_sources), 3)
        assert a == b

    def test_platform_group_merges_pe_sharing_signatures(
        self, platform, mixed_sources, disjoint_sources
    ):
        # Overlapping mappings: one connected component, one effective shard.
        plan = partition_sources(
            mixed_sources, 4, by="platform_group", platform=platform
        )
        assert plan.num_shards == 1
        # PE-disjoint mappings: two components, shards stay PE-disjoint.
        plan = partition_sources(
            disjoint_sources, 4, by="platform_group", platform=platform
        )
        assert plan.num_shards == 2
        for bucket in plan.assignments:
            pes = set()
            for i in bucket:
                source = disjoint_sources[i]
                model = NetworkCostModel(
                    source.network,
                    platform,
                    config=source.config,
                    mapping=source.mapping,
                )
                pes |= set(model.pes_used)
            assert pes in ({"gpu"}, {"cpu"})

    def test_platform_group_requires_platform(self, mixed_sources):
        with pytest.raises(ValueError, match="platform"):
            partition_sources(mixed_sources, 2, by="platform_group")

    def test_unknown_rule_and_bad_shards_raise(self, mixed_sources):
        with pytest.raises(ValueError, match="partition rule"):
            partition_sources(mixed_sources, 2, by="round_robin")
        with pytest.raises(ValueError, match="shards"):
            partition_sources(mixed_sources, 0)


class TestShardedEquivalence:
    def test_platform_group_sharding_is_bit_identical(
        self, platform, disjoint_sources
    ):
        single = MultiStreamSimulator(platform, disjoint_sources).run()
        sharded = MultiStreamSimulator(
            platform,
            disjoint_sources,
            shards=2,
            shard_by="platform_group",
            shard_mode="inline",
        ).run()
        assert single.total_inferences > 0
        assert_reports_identical(sharded, single)
        assert sharded.events_processed == single.events_processed
        assert sharded.shards == 2
        assert sharded.epochs  # barrier summaries survive the merge

    def test_process_mode_matches_inline_mode(self, platform, disjoint_sources):
        inline = MultiStreamSimulator(
            platform,
            disjoint_sources,
            shards=2,
            shard_by="platform_group",
            shard_mode="inline",
        ).run()
        process = MultiStreamSimulator(
            platform,
            disjoint_sources,
            shards=2,
            shard_by="platform_group",
        ).run()
        assert_reports_identical(process, inline)
        assert process.epochs == inline.epochs

    def test_merged_report_is_epoch_length_invariant(
        self, platform, disjoint_sources
    ):
        # The barrier is conservative: pausing a kernel mid-heap never
        # reorders it, so the epoch length must not change any result.
        coarse = MultiStreamSimulator(
            platform,
            disjoint_sources,
            shards=2,
            shard_by="platform_group",
            shard_mode="inline",
        ).run()
        fine = MultiStreamSimulator(
            platform,
            disjoint_sources,
            shards=2,
            shard_by="platform_group",
            shard_mode="inline",
            epoch_length=0.01,
        ).run()
        assert len(fine.epochs) > len(coarse.epochs)
        assert_reports_identical(fine, coarse)

    def test_shards_1_takes_the_single_process_path(self, platform, mixed_sources):
        plain = MultiStreamSimulator(platform, mixed_sources).run()
        one = MultiStreamSimulator(platform, mixed_sources, shards=1).run()
        assert_reports_identical(one, plain)
        assert one.shards == 1
        assert one.epochs is None

    def test_one_effective_shard_collapses_to_single_process(
        self, platform, mixed_sources
    ):
        # platform_group on PE-overlapping signatures: one component, so
        # even shards=4 must degrade to the unsharded bit-identical run.
        plain = MultiStreamSimulator(platform, mixed_sources).run()
        collapsed = MultiStreamSimulator(
            platform, mixed_sources, shards=4, shard_by="platform_group"
        ).run()
        assert_reports_identical(collapsed, plain)
        assert collapsed.shards == 1

    def test_signature_sharding_conserves_traffic(self, platform, mixed_sources):
        # Signature shards model platform replicas: contention changes, the
        # generated traffic must not.
        single = MultiStreamSimulator(platform, mixed_sources).run()
        sharded = MultiStreamSimulator(
            platform, mixed_sources, shards=2, shard_mode="inline"
        ).run()
        assert sharded.shards == 2
        assert set(sharded.reports) == set(single.reports)
        assert sharded.frames_generated == single.frames_generated
        for name, report in sharded.reports.items():
            assert report.frames_generated == single.reports[name].frames_generated

    def test_sharded_run_rejects_tracing(self, platform, mixed_sources):
        with pytest.raises(ValueError, match="trac"):
            MultiStreamSimulator(platform, mixed_sources, shards=2).run(trace=True)

    def test_epoch_rows_fold_cumulative_summaries(self, platform, disjoint_sources):
        report = MultiStreamSimulator(
            platform,
            disjoint_sources,
            shards=2,
            shard_by="platform_group",
            shard_mode="inline",
        ).run()
        rows = epoch_rows(report.epochs)
        assert [row["epoch"] for row in rows] == sorted(row["epoch"] for row in rows)
        assert all(row["shards"] == 2 for row in rows)
        # Per-epoch deltas re-sum to the run totals.
        assert sum(row["events"] for row in rows) == report.events_processed
        assert sum(row["inferences"] for row in rows) == report.total_inferences
        assert sum(row["frames_dropped"] for row in rows) == report.frames_dropped

    def test_invalid_modes_raise(self, platform, mixed_sources):
        with pytest.raises(ValueError, match="mode"):
            ShardedSimulator(platform, mixed_sources, shards=2, mode="threads")
        with pytest.raises(ValueError, match="epoch_length"):
            ShardedSimulator(platform, mixed_sources, shards=2, epoch_length=0.0)


class TestReportMerge:
    def _run_split(self, platform, sources, k):
        left = MultiStreamSimulator(platform, sources[:k]).run()
        right = MultiStreamSimulator(platform, sources[k:]).run()
        return left, right

    def test_merge_of_disjoint_halves_matches_whole(
        self, platform, disjoint_sources
    ):
        whole = MultiStreamSimulator(platform, disjoint_sources).run()
        left, right = self._run_split(platform, disjoint_sources, 5)
        merged = left.merge(right)
        assert_reports_identical(merged, whole)
        assert merged.shards == 2

    def test_merge_with_empty_report(self, platform, disjoint_sources):
        populated = MultiStreamSimulator(platform, disjoint_sources[:5]).run()
        empty = MultiStreamReport(
            reports={}, end_time=0.0, cost_mode=populated.cost_mode
        )
        merged = populated.merge(empty)
        assert_reports_identical(merged, populated)
        merged = empty.merge(populated)
        assert_reports_identical(merged, populated)

    def test_merge_sums_cache_info_and_events(self, platform, disjoint_sources):
        left, right = self._run_split(platform, disjoint_sources, 5)
        merged = left.merge(right)
        assert merged.events_processed == (
            left.events_processed + right.events_processed
        )
        for key in ("hits", "misses"):
            assert merged.cache_info[key] == (
                left.cache_info[key] + right.cache_info[key]
            )

    def test_merge_rejects_mixed_cost_modes(self, platform, disjoint_sources):
        left, _ = self._run_split(platform, disjoint_sources, 5)
        other = dataclasses.replace(
            left, cost_mode="flat" if left.cost_mode != "flat" else "profile"
        )
        with pytest.raises(ValueError, match="cost modes"):
            left.merge(other)

    def test_merged_classmethod_folds_many(self, platform, disjoint_sources):
        whole = MultiStreamSimulator(platform, disjoint_sources).run()
        parts = [
            MultiStreamSimulator(platform, [source]).run()
            for source in disjoint_sources[:5]
        ] + [MultiStreamSimulator(platform, disjoint_sources[5:]).run()]
        merged = MultiStreamReport.merged(parts)
        # Streams never contend within a part of this split, so only the
        # traffic conservation is exact; per-record equality is checked by
        # the two-way split above.
        assert set(merged.reports) == set(whole.reports)
        assert merged.frames_generated == whole.frames_generated
        assert merged.shards == len(parts)
        with pytest.raises(ValueError, match="at least one"):
            MultiStreamReport.merged([])
