"""Fleet-level equivalence of the columnar data plane.

The acceptance bar for the FrameStack render path: frames from
``StreamSource.generate_frames`` (one ``convert_stack`` per stream) must be
bit-identical to ``generate_frames_reference`` (the per-interval ``convert``
loop) across every built-in scenario family, and the end-to-end
``MultiStreamReport`` aggregates of a seeded 256-stream DSFA fleet must be
unchanged when the reference frames are substituted for the stack frames.
The end-to-end stack transport extends the bar: all three data planes
(:data:`repro.runtime.DATAPLANES`) must produce identical aggregates on
every family.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core  # noqa: F401  (import order: runtime pulls core.nmp lazily)
from repro.hw import jetson_xavier_agx
from repro.runtime import MultiStreamSimulator
from repro.scenarios import default_registry

SMALL = dict(num_streams=3, duration=0.3, scale=0.1, num_bins=4)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


def frames_bit_identical(a, b):
    return (
        (a.height, a.width) == (b.height, b.width)
        and a.t_start == b.t_start
        and a.t_end == b.t_end
        and np.array_equal(a.rows, b.rows)
        and np.array_equal(a.cols, b.cols)
        and np.array_equal(a.pos, b.pos)
        and np.array_equal(a.neg, b.neg)
    )


class TestStackRenderEquivalence:
    def test_all_families_render_bit_identical(self, registry):
        assert len(registry.families()) >= 6
        for family in registry.families():
            sources = registry.compile(family, **SMALL)
            for source in sources:
                stack_frames = source.generate_frames()
                oracle_frames = source.generate_frames_reference()
                assert len(stack_frames) == len(oracle_frames), (family, source.name)
                for i, ((t_new, f_new), (t_ref, f_ref)) in enumerate(
                    zip(stack_frames, oracle_frames)
                ):
                    assert t_new == t_ref, (family, source.name, i)
                    assert frames_bit_identical(f_new, f_ref), (
                        family,
                        source.name,
                        i,
                    )

    def test_stop_time_respected_on_both_paths(self, registry):
        # Churn streams leave mid-footage: the stack path must clip the
        # same arrivals the reference loop clips.
        sources = registry.compile("churn", **SMALL)
        assert any(s.stop_time is not None for s in sources)


def _aggregates(report):
    return (
        report.num_streams,
        report.total_inferences,
        report.frames_generated,
        report.frames_dropped,
        report.total_energy,
        report.makespan,
        report.mean_latency,
        report.throughput,
    )


class TestFleetAggregatesUnchanged:
    def test_256_stream_dsfa_fleet(self, registry, platform):
        fleet = dict(num_streams=256, duration=0.25, scale=0.1, num_bins=4, seed=42)

        stack_sources = registry.compile("mixed_fleet", **fleet)
        stack_report = MultiStreamSimulator(
            platform, stack_sources, dataplane="stack"
        ).run()

        oracle_sources = registry.compile("mixed_fleet", **fleet)
        for source in oracle_sources:
            # Pre-seed the render cache with the per-interval oracle frames:
            # the reference data plane then consumes the fully pre-columnar
            # pipeline — oracle render, per-frame transport, reference DSFA.
            source._frames = source.generate_frames_reference()
        oracle_report = MultiStreamSimulator(
            platform, oracle_sources, dataplane="reference"
        ).run()

        assert stack_report.num_streams == 256
        assert stack_report.total_inferences > 0
        assert _aggregates(stack_report) == _aggregates(oracle_report)

    def test_all_families_aggregates_identical_across_dataplanes(
        self, registry, platform
    ):
        for family in registry.families():
            results = {}
            for dataplane in ("stack", "frames", "reference"):
                sources = registry.compile(family, **SMALL)
                report = MultiStreamSimulator(
                    platform, sources, dataplane=dataplane
                ).run()
                results[dataplane] = _aggregates(report)
            assert results["stack"] == results["frames"], family
            assert results["stack"] == results["reference"], family
