"""Lazy arrival-cursor scheduling: equivalence, churn cuts and heap bounds.

The scheduling refactor must be *provably report-identical*: with
``schedule_mode="lazy"`` (the default) each stream keeps at most one queued
``FrameReady`` — the handler self-reschedules the successor onto a
pre-reserved kernel sequence number — and the resulting
``MultiStreamReport`` must be bit-identical to the eager horizon-wide
oracle (``schedule_mode="eager"``) across every scenario family, every
data plane and the sharded runtime.  The payoff the suite pins alongside
the equivalence: the kernel heap's high-water mark scales with *active
streams* under lazy scheduling and with *total frames* under eager.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.core  # noqa: F401  (import order: runtime pulls core.nmp lazily)
from repro.hw import jetson_xavier_agx
from repro.runtime import (
    DATAPLANES,
    SCHEDULE_MODES,
    KernelTrace,
    MultiStreamSimulator,
    SimulationKernel,
)
from repro.runtime.sim import FrameReady, PipelineReport
from repro.scenarios import default_registry

from test_kernel_equivalence import assert_reports_identical

SMALL = dict(num_streams=3, duration=0.3, scale=0.1, num_bins=4)

# Lazy heap budget per active stream: one queued FrameReady + one StreamEnd
# per live stream, plus in-flight dispatch / completion / eviction events.
HEAP_FACTOR = 4


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


def _run(platform, sources, **kwargs):
    return MultiStreamSimulator(platform, sources, **kwargs).run()


class TestLazyEagerEquivalence:
    def test_modes_are_registered(self):
        assert SCHEDULE_MODES == ("lazy", "eager")
        with pytest.raises(ValueError, match="schedule_mode"):
            MultiStreamSimulator(
                jetson_xavier_agx(),
                default_registry().compile("steady", **SMALL),
                schedule_mode="speculative",
            )

    def test_all_families_all_dataplanes_bit_identical(self, registry, platform):
        assert len(registry.families()) >= 6
        for family in registry.families():
            sources = registry.compile(family, **SMALL)
            for dataplane in DATAPLANES:
                lazy = _run(platform, sources, dataplane=dataplane)
                eager = _run(
                    platform, sources, dataplane=dataplane, schedule_mode="eager"
                )
                assert lazy.events_processed == eager.events_processed, (
                    family,
                    dataplane,
                )
                assert_reports_identical(lazy, eager)
                # The equivalence is not vacuous: lazy runs kept strictly
                # fewer events queued than the horizon-wide prime.
                assert lazy.heap_high_water < eager.heap_high_water, (
                    family,
                    dataplane,
                )

    def test_two_shard_process_mode_bit_identical(self, registry, platform):
        sources = registry.compile(
            "mixed_fleet", **{**SMALL, "num_streams": 8}
        )
        kwargs = dict(shards=2, shard_mode="process")
        lazy = _run(platform, sources, **kwargs)
        eager = _run(platform, sources, schedule_mode="eager", **kwargs)
        assert lazy.shards == 2
        assert_reports_identical(lazy, eager)
        # Epoch pause/resume must not lose a cursor: every barrier row saw
        # a bounded heap, and frames kept flowing after the first barrier.
        assert lazy.epochs is not None
        assert max(s.heap_high_water for s in lazy.epochs) <= HEAP_FACTOR * 8
        assert lazy.frames_generated == eager.frames_generated

    def test_mid_run_handler_registration_matches_eager_delivery(self):
        """PR-4 routing regression, lazy edition: a handler registered
        mid-run (while successors are still being scheduled with reserved
        sequence numbers) sees exactly the deliveries the eager prime
        produces."""
        times = [0.0, 0.1, 0.1, 0.2]

        def drive(lazy: bool):
            kernel = SimulationKernel()
            seen = []
            state = {"cursor": 0, "base": 0}

            def on_frame(event):
                cursor = state["cursor"]
                if lazy and cursor < len(times):
                    state["cursor"] = cursor + 1
                    kernel.schedule(
                        FrameReady(time=times[cursor], stream="s"),
                        seq=state["base"] + cursor,
                    )
                seen.append(("frame", event.time))
                if len(seen) == 1:  # register a second handler mid-run
                    kernel.on(
                        FrameReady,
                        lambda e: seen.append(("late", e.time)),
                        stream="s",
                    )

            kernel.on(FrameReady, on_frame, stream="s")
            if lazy:
                state["base"] = kernel.reserve_sequences(len(times))
                state["cursor"] = 1
                kernel.schedule(
                    FrameReady(time=times[0], stream="s"), seq=state["base"]
                )
            else:
                for t in times:
                    kernel.schedule(FrameReady(time=t, stream="s"))
            kernel.run()
            return seen

        assert drive(lazy=True) == drive(lazy=False)


class TestChurnCursorCut:
    def test_churn_frame_counts_match_searchsorted_prefix_cut(
        self, registry, platform
    ):
        """Satellite fix: a stop_time that closes before later arrivals must
        stop the cursor exactly at the eager path's searchsorted cut."""
        sources = registry.compile("churn", **{**SMALL, "num_streams": 6})
        churned = [s for s in sources if s.stop_time is not None]
        assert churned, "churn family must produce stop_time windows"
        lazy = _run(platform, sources)
        eager = _run(platform, sources, schedule_mode="eager")
        for source in sources:
            if source.stop_time is None:
                continue
            # The oracle cut, computed on the *uncut* arrivals column
            # (dataclasses.replace re-inits the render caches, so the
            # replacement renders the open window from scratch).
            open_source = dataclasses.replace(source, stop_time=None)
            _, arrivals = open_source.generate_stack()
            expected = int(
                np.searchsorted(arrivals, source.stop_time, side="right")
            )
            assert lazy.reports[source.name].frames_generated == expected, (
                source.name
            )
            assert eager.reports[source.name].frames_generated == expected, (
                source.name
            )
        assert_reports_identical(lazy, eager)

    def test_doctored_cache_never_schedules_past_stop_window(self, registry):
        """A transport whose cached arrivals extend past a (later-imposed)
        stop_time must not advance the cursor into the closed window."""
        source = registry.compile("steady", **SMALL)[0]
        _, arrivals = source.generate_stack()  # render with no stop window
        assert len(arrivals) >= 4
        stop = float(arrivals[len(arrivals) // 2])
        keep = int(np.searchsorted(arrivals, stop, side="right"))
        # Impose the window *after* the render: the cached stack and
        # arrivals column still carry the post-stop tail.
        source.stop_time = stop

        platform = jetson_xavier_agx()
        trace = KernelTrace()
        simulator = MultiStreamSimulator(platform, [source])
        report = simulator.run(trace=trace)
        assert report.reports[source.name].frames_generated == keep
        frame_times = [
            e.time for e in trace.entries if e.kind == "FrameReady"
        ]
        assert len(frame_times) == keep
        assert all(t <= stop for t in frame_times)


class TestHeapHighWater:
    def test_steady_fleet_heap_scales_with_streams_not_frames(self, registry):
        streams = 256
        sources = registry.compile(
            "steady",
            num_streams=streams,
            duration=0.2,
            scale=0.06,
            num_bins=4,
        )
        platform = jetson_xavier_agx()
        lazy = _run(platform, sources)
        eager = _run(platform, sources, schedule_mode="eager")
        assert lazy.frames_generated == eager.frames_generated
        assert lazy.frames_generated > HEAP_FACTOR * streams
        # Lazy: O(active streams).  Eager: the whole horizon is queued.
        assert lazy.heap_high_water <= HEAP_FACTOR * streams
        assert eager.heap_high_water >= eager.frames_generated
        assert lazy.heap_high_water < eager.heap_high_water

    def test_lazy_heap_is_horizon_independent(self, registry):
        platform = jetson_xavier_agx()
        marks = {}
        for duration in (0.2, 0.4):
            sources = registry.compile(
                "steady", num_streams=32, duration=duration, scale=0.06, num_bins=4
            )
            marks[duration] = {
                mode: _run(platform, sources, schedule_mode=mode).heap_high_water
                for mode in SCHEDULE_MODES
            }
        # Doubling the horizon must not grow the lazy heap (beyond event
        # jitter), while the eager heap tracks the doubled frame count.
        assert marks[0.4]["lazy"] <= marks[0.2]["lazy"] * 1.25
        assert marks[0.4]["eager"] >= marks[0.2]["eager"] * 1.5


class TestBoundedRetention:
    def test_trace_ring_buffer_keeps_exactly_the_last_n(self, registry):
        sources = registry.compile("steady", **SMALL)
        platform = jetson_xavier_agx()
        full = KernelTrace()
        MultiStreamSimulator(platform, sources).run(trace=full)
        assert len(full) > 32
        ring = KernelTrace(max_events=32)
        MultiStreamSimulator(platform, sources).run(trace=ring)
        assert len(ring) == 32
        assert list(ring.entries) == full.entries[-32:]
        assert ring.entries_dropped == len(full) - 32
        assert ring.dropped_entries == ring.entries_dropped  # compat alias
        assert f"... {ring.entries_dropped} more events" in ring.format_log(
            max_rows=32
        )

    def test_record_limit_keeps_aggregates_and_trims_to_tail(self, registry):
        sources = registry.compile("steady", **SMALL)
        platform = jetson_xavier_agx()
        full = _run(platform, sources)
        capped = _run(platform, sources, record_limit=2)
        for name, report in full.reports.items():
            trimmed = capped.reports[name]
            # Streaming aggregates are unperturbed by the cap...
            assert trimmed.num_inferences == report.num_inferences
            assert trimmed.mean_latency == report.mean_latency
            assert trimmed.total_energy == report.total_energy
            assert trimmed.total_time == report.total_time
            # ...while the retained list is the most recent tail.
            assert trimmed.records == report.records[-2:]
        assert capped.mean_latency == full.mean_latency

    def test_record_limit_survives_merge(self):
        left = PipelineReport(record_limit=3)
        right = PipelineReport()
        for report, lat in ((left, 1.0), (right, 2.0)):
            for i in range(4):
                from repro.runtime.sim import InferenceRecord

                report.add_records(
                    [
                        InferenceRecord(
                            dispatch_time=i * lat,
                            start_time=i * lat,
                            end_time=i * lat + lat,
                            num_frames=1,
                            occupancy=0.1,
                            energy=0.5,
                        )
                    ]
                )
        assert len(left.records) == 3 and left.num_inferences == 4
        merged = left.merge(right)
        assert merged.record_limit == 3
        assert len(merged.records) == 3
        assert merged.num_inferences == 8  # accumulators account everything

    def test_record_limit_validation(self, registry):
        with pytest.raises(ValueError, match="record_limit"):
            PipelineReport(record_limit=0)
        with pytest.raises(ValueError, match="record_limit"):
            MultiStreamSimulator(
                jetson_xavier_agx(),
                registry.compile("steady", **SMALL),
                record_limit=0,
            )


class TestFramesPlaneCursor:
    def test_frames_plane_holds_sequence_on_client_not_in_events(
        self, registry, platform
    ):
        """Satellite fix: on the per-frame transports the rendered list
        lives on the client cursor; in lazy mode the heap never holds more
        than one of the stream's frames at a time."""
        sources = registry.compile("steady", **SMALL)
        simulator = MultiStreamSimulator(platform, sources, dataplane="frames")
        kernel, clients, _ = simulator._setup(None)
        for client in clients:
            assert client._frame_seq is not None
            assert client._stack is None
        # At prime time the heap holds one FrameReady + one StreamEnd per
        # stream — not the horizon.
        total_frames = sum(c._num_frames for c in clients)
        assert total_frames > 2 * len(clients)
        assert kernel.pending_events == 2 * len(clients)
        end_time = kernel.run()
        report = simulator._finalize(kernel, clients, 0, None, end_time)
        eager = _run(
            platform, sources, dataplane="frames", schedule_mode="eager"
        )
        assert_reports_identical(report, eager)
