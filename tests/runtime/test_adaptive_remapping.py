"""Tests for online traffic-adaptive remapping in the multi-stream simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvEdgeConfig, NMPConfig, OptimizationLevel
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.runtime import (
    AdaptiveMappingClient,
    MultiStreamSimulator,
    NetworkCostModel,
    RemapPolicy,
    StreamSource,
)


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def resident_sequence():
    return generate_sequence("town10", scale=0.12, duration=0.8, seed=0)


@pytest.fixture(scope="module")
def joining_sequence():
    return generate_sequence("indoor_flying1", scale=0.12, duration=0.4, seed=1)


@pytest.fixture(scope="module")
def networks():
    return {
        "e2depth": build_network("e2depth", 96, 96),
        "evflownet": build_network("evflownet", 96, 96),
    }


JOIN_TIME = 0.3
FULL = EvEdgeConfig(num_bins=6, optimization=OptimizationLevel.FULL)


def make_sources(resident_sequence, joining_sequence, networks):
    return [
        StreamSource("resident", resident_sequence, networks["e2depth"], FULL),
        StreamSource(
            "joiner",
            joining_sequence,
            networks["evflownet"],
            FULL,
            start_offset=JOIN_TIME,
        ),
    ]


def fast_policy(**kwargs):
    return RemapPolicy(
        nmp_config=NMPConfig(population_size=8, generations=4, seed=0), **kwargs
    )


class TestAdaptiveMappingClient:
    def test_remap_covers_all_networks(self, platform, networks):
        client = AdaptiveMappingClient(platform, fast_policy())
        result = client.remap(list(networks.values()))
        nodes = set(result.best_candidate.assignments)
        for name, network in networks.items():
            for layer in network.layer_names():
                spec = network.layer(layer)
                if spec.kind.is_compute:
                    assert f"{name}.{layer}" in nodes
        assert len(client.records) == 1
        assert client.records[0].networks == tuple(networks)

    def test_engines_are_cached_per_network_set(self, platform, networks):
        client = AdaptiveMappingClient(platform, fast_policy())
        nets = list(networks.values())
        assert client.engine_for(nets) is client.engine_for(list(reversed(nets)))

    def test_cooldown_suppresses_rapid_remaps(self, platform):
        client = AdaptiveMappingClient(platform, fast_policy(min_interval=1.0))
        assert client.should_remap(0.0, "join")
        client._last_remap_time = 0.0
        assert not client.should_remap(0.5, "join")
        assert client.should_remap(1.5, "leave")

    def test_trigger_switches(self, platform):
        client = AdaptiveMappingClient(
            platform, fast_policy(remap_on_join=False, remap_on_leave=False)
        )
        assert not client.should_remap(0.0, "join")
        assert not client.should_remap(0.0, "leave")

    def test_empty_network_set_is_a_noop(self, platform):
        client = AdaptiveMappingClient(platform, fast_policy())
        assert client.remap([]) is None
        assert client.records == []


class TestCostModelRebind:
    def test_rebind_swaps_assignments_and_clears_cache(self, platform, networks):
        model = NetworkCostModel(networks["e2depth"], platform, config=FULL)
        baseline_cost = model.inference_cost(0.1, 1)
        assert model._cache  # memoized
        client = AdaptiveMappingClient(platform, fast_policy())
        result = client.remap([networks["e2depth"], networks["evflownet"]])
        model.rebind(result.best_candidate)
        assert model.mapping is result.best_candidate
        assert not model._cache  # every memoized whole-network cost invalidated
        rebound_cost = model.inference_cost(0.1, 1)
        # The searched mapping differs from the all-GPU default for this
        # contended two-network scenario, so the cost surface changed.
        assert rebound_cost != baseline_cost or model.pes_used != ("gpu",)


class TestAdaptiveMultiStream:
    def test_remaps_fire_at_joins_and_leaves(
        self, platform, resident_sequence, joining_sequence, networks
    ):
        sources = make_sources(resident_sequence, joining_sequence, networks)
        report = MultiStreamSimulator(
            platform, sources, remap_policy=fast_policy()
        ).run()
        times_reasons = [(r.time, r.reason) for r in report.remaps]
        assert (0.0, "join") in times_reasons
        assert (JOIN_TIME, "join") in times_reasons
        reasons = {r.reason for r in report.remaps}
        assert "leave" in reasons
        # The mid-run join searches over both networks.
        join_record = next(r for r in report.remaps if r.time == JOIN_TIME)
        assert set(join_record.networks) == set(networks)
        assert set(join_record.active_streams) == {"resident", "joiner"}

    def test_latency_recovers_after_traffic_mix_change(
        self, platform, resident_sequence, joining_sequence, networks
    ):
        static = MultiStreamSimulator(
            platform, make_sources(resident_sequence, joining_sequence, networks)
        ).run()
        adaptive = MultiStreamSimulator(
            platform,
            make_sources(resident_sequence, joining_sequence, networks),
            remap_policy=fast_policy(),
        ).run()

        def contended_latency(report):
            records = [
                r
                for r in report.reports["resident"].records
                if r.dispatch_time >= JOIN_TIME
            ]
            assert records
            return float(np.mean([r.latency for r in records]))

        # After the joiner arrives, the adaptively remapped deployment
        # serves the resident stream faster than the static all-GPU one.
        assert contended_latency(adaptive) < contended_latency(static)
        assert len(adaptive.remaps) >= 2
        assert static.remaps == []

    def test_remap_policy_off_means_no_triggers(
        self, platform, resident_sequence, joining_sequence, networks
    ):
        sources = make_sources(resident_sequence, joining_sequence, networks)
        policy = fast_policy(remap_on_join=False, remap_on_leave=False)
        report = MultiStreamSimulator(platform, sources, remap_policy=policy).run()
        assert report.remaps == []

    def test_non_nmp_streams_do_not_participate(
        self, platform, resident_sequence, joining_sequence, networks
    ):
        config = EvEdgeConfig(num_bins=6, optimization=OptimizationLevel.E2SF_DSFA)
        sources = [
            StreamSource("resident", resident_sequence, networks["e2depth"], config),
            StreamSource(
                "joiner",
                joining_sequence,
                networks["evflownet"],
                config,
                start_offset=JOIN_TIME,
            ),
        ]
        report = MultiStreamSimulator(
            platform, sources, remap_policy=fast_policy()
        ).run()
        # Triggers fire but no NMP-enabled stream is active, so no search runs.
        assert report.remaps == []

    def test_min_interval_coalesces_remaps(
        self, platform, resident_sequence, joining_sequence, networks
    ):
        sources = make_sources(resident_sequence, joining_sequence, networks)
        policy = fast_policy(min_interval=10.0)
        report = MultiStreamSimulator(platform, sources, remap_policy=policy).run()
        assert len(report.remaps) == 1
        assert report.remaps[0].time == 0.0

    def test_cooldown_resets_between_runs(
        self, platform, resident_sequence, joining_sequence, networks
    ):
        # The cooldown clock is per-run simulated time: a second run of the
        # same simulator must remap again rather than inherit the first
        # run's last-remap timestamp.
        sources = make_sources(resident_sequence, joining_sequence, networks)
        policy = fast_policy(min_interval=10.0)
        simulator = MultiStreamSimulator(platform, sources, remap_policy=policy)
        first = simulator.run()
        second = simulator.run()
        assert len(first.remaps) == 1
        assert len(second.remaps) == 1
        assert second.remaps[0].time == 0.0
