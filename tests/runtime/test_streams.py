"""Tests for traffic streams and the multi-stream traffic simulator."""

from __future__ import annotations

import pytest

from repro.core import DSFAConfig, EvEdgeConfig, OptimizationLevel
from repro.core.nmp.candidate import Assignment, MappingCandidate
from repro.events import generate_sequence
from repro.frames.sparse import SparseFrameBatch
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.nn import LayerGraph, LayerKind, LayerSpec, Precision
from repro.runtime import (
    KernelTrace,
    MultiStreamSimulator,
    NetworkCostModel,
    SignatureServer,
    SimulationKernel,
    StreamClient,
    StreamSource,
)


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence("indoor_flying1", scale=0.12, duration=0.4, seed=0)


@pytest.fixture(scope="module")
def fast_sequence():
    return generate_sequence("high_speed_disk", scale=0.12, duration=0.4, seed=1)


@pytest.fixture(scope="module")
def network():
    return build_network("spikeflownet", 64, 64)


def make_sources(sequence, network, n, level=OptimizationLevel.E2SF_DSFA, **config_kwargs):
    config = EvEdgeConfig(num_bins=5, optimization=level, **config_kwargs)
    return [
        StreamSource(
            name=f"s{i}",
            sequence=sequence,
            network=network,
            config=config,
            start_offset=0.002 * i,
        )
        for i in range(n)
    ]


class TestStreamSource:
    def test_generates_all_bins(self, sequence, network):
        source = StreamSource("s", sequence, network, EvEdgeConfig(num_bins=5))
        frames = source.generate_frames()
        assert len(frames) == 5 * sequence.num_intervals
        arrivals = [t for t, _ in frames]
        assert arrivals == sorted(arrivals)

    def test_start_offset_shifts_arrivals(self, sequence, network):
        base = StreamSource("a", sequence, network, EvEdgeConfig(num_bins=5))
        shifted = StreamSource(
            "b", sequence, network, EvEdgeConfig(num_bins=5), start_offset=0.25
        )
        t0 = base.generate_frames()[0][0]
        t1 = shifted.generate_frames()[0][0]
        assert t1 == pytest.approx(t0 + 0.25)
        assert shifted.end_time == pytest.approx(base.end_time + 0.25)


class TestMultiStreamSimulator:
    def test_sixteen_streams_get_individual_reports(self, platform, sequence, fast_sequence):
        nets = [build_network(n, 64, 64) for n in ("spikeflownet", "dotie")]
        sources = []
        for i in range(16):
            sources.append(
                StreamSource(
                    name=f"s{i:02d}",
                    sequence=sequence if i % 2 == 0 else fast_sequence,
                    network=nets[i % 2],
                    config=EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF_DSFA),
                    start_offset=0.001 * i,
                )
            )
        report = MultiStreamSimulator(platform, sources).run()
        assert report.num_streams == 16
        assert set(report.reports) == {f"s{i:02d}" for i in range(16)}
        for source in sources:
            stream_report = report.reports[source.name]
            assert (
                stream_report.frames_generated == 5 * source.sequence.num_intervals
            )
            assert stream_report.num_inferences > 0
        assert report.total_inferences == sum(
            r.num_inferences for r in report.reports.values()
        )
        assert report.throughput > 0
        assert report.makespan <= report.end_time + 1e-12

    def test_shared_pe_serializes_inferences(self, platform, sequence, network):
        # All streams map all-GPU, so no two inference windows may overlap
        # (merged batches share identical windows).
        sources = make_sources(sequence, network, 4)
        report = MultiStreamSimulator(platform, sources).run()
        windows = sorted(
            {
                (r.start_time, r.end_time)
                for stream in report.reports.values()
                for r in stream.records
            }
        )
        for (s0, e0), (s1, e1) in zip(windows, windows[1:]):
            assert s1 >= e0 - 1e-12

    def test_cross_stream_batching_merges_dispatches(self, platform, sequence):
        # A heavy network with synchronized streams: dispatches pile up
        # while the GPU is busy and get merged when it frees.
        heavy = build_network("spikeflownet", 192, 192)
        config = EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF_DSFA)
        sources = [
            StreamSource(f"s{i}", sequence, heavy, config) for i in range(8)
        ]
        merged = MultiStreamSimulator(platform, sources, max_merge_streams=8).run()
        unmerged = MultiStreamSimulator(platform, sources, max_merge_streams=1).run()
        # With merging enabled, several streams share one execution window.
        merged_windows = [
            (r.start_time, r.end_time)
            for stream in merged.reports.values()
            for r in stream.records
        ]
        assert len(merged_windows) > len(set(merged_windows))
        # Without merging every window is unique to one record.
        unmerged_windows = [
            (r.start_time, r.end_time)
            for stream in unmerged.reports.values()
            for r in stream.records
        ]
        assert len(unmerged_windows) == len(set(unmerged_windows))

    def test_disjoint_pe_mappings_run_concurrently(self, platform, sequence):
        # Two tiny ANN networks, one pinned to the GPU and one to the DLA:
        # their executions may overlap in time.
        def tiny(name):
            g = LayerGraph(name, task="optical_flow")
            g.add_layer(LayerSpec("in", LayerKind.INPUT))
            g.add_layer(
                LayerSpec("conv1", LayerKind.CONV2D, 2, 16, 64, 64), inputs=["in"]
            )
            g.add_layer(
                LayerSpec("conv2", LayerKind.CONV2D, 16, 16, 64, 64), inputs=["conv1"]
            )
            return g

        net_gpu, net_dla = tiny("tiny_gpu"), tiny("tiny_dla")
        dla_mapping = MappingCandidate(
            {
                f"tiny_dla.{layer}": Assignment("dla0", Precision.FP16)
                for layer in ("conv1", "conv2")
            }
        )
        config = EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.FULL)
        sources = [
            StreamSource("on_gpu", sequence, net_gpu, config),
            StreamSource("on_dla", sequence, net_dla, config, mapping=dla_mapping),
        ]
        report = MultiStreamSimulator(platform, sources).run()
        gpu_records = report.reports["on_gpu"].records
        dla_records = report.reports["on_dla"].records
        assert gpu_records and dla_records
        overlaps = any(
            a.start_time < b.end_time and b.start_time < a.end_time
            for a in gpu_records
            for b in dla_records
        )
        assert overlaps

    def test_backlog_bound_drops_frames(self, platform, sequence):
        # A heavy network without DSFA on many synchronized streams exceeds
        # the bounded pending queue and sheds load instead of diverging.
        heavy = build_network("adaptive_spikenet", 128, 128)
        config = EvEdgeConfig(
            num_bins=10,
            optimization=OptimizationLevel.E2SF,
            dsfa=DSFAConfig(inference_queue_depth=1),
        )
        sources = [
            StreamSource(f"s{i}", sequence, heavy, config) for i in range(6)
        ]
        report = MultiStreamSimulator(platform, sources).run()
        assert report.frames_dropped > 0
        for stream in report.reports.values():
            assert (
                stream.num_inferences + stream.frames_dropped
                <= stream.frames_generated
            )

    def test_trace_records_multi_stream_events(self, platform, sequence, network):
        sources = make_sources(sequence, network, 2)
        trace = KernelTrace()
        MultiStreamSimulator(platform, sources).run(trace=trace)
        counts = trace.counts()
        assert counts["FrameReady"] == 2 * 5 * sequence.num_intervals
        assert counts["StreamEnd"] == 2
        assert counts.get("InferenceDone", 0) > 0
        assert set(trace.by_stream()) >= {"s0", "s1"}

    def test_duplicate_stream_names_rejected(self, platform, sequence, network):
        sources = [
            StreamSource("dup", sequence, network, EvEdgeConfig()),
            StreamSource("dup", sequence, network, EvEdgeConfig()),
        ]
        with pytest.raises(ValueError):
            MultiStreamSimulator(platform, sources)

    def test_empty_sources_rejected(self, platform):
        with pytest.raises(ValueError):
            MultiStreamSimulator(platform, [])

    def test_offset_fleet_reports_active_window_throughput(
        self, platform, sequence, network
    ):
        # A fleet that joins at t=100s must report the same throughput as the
        # identical fleet starting at t=0: the denominator is the active
        # window, not the absolute makespan.
        base_sources = make_sources(sequence, network, 3)
        offset_sources = [
            StreamSource(
                name=s.name,
                sequence=s.sequence,
                network=s.network,
                config=s.config,
                start_offset=s.start_offset + 100.0,
            )
            for s in base_sources
        ]
        base = MultiStreamSimulator(platform, base_sources).run()
        offset = MultiStreamSimulator(platform, offset_sources).run()
        assert base.throughput > 0
        assert offset.start_time == pytest.approx(100.0)
        assert offset.active_window == pytest.approx(base.active_window)
        assert offset.throughput == pytest.approx(base.throughput)
        # The absolute-makespan denominator would have crushed the number.
        naive = (offset.frames_generated - offset.frames_dropped) / offset.makespan
        assert offset.throughput > 50 * naive

    def test_stop_time_truncates_stream(self, platform, sequence, network):
        full = StreamSource("s", sequence, network, EvEdgeConfig(num_bins=5))
        frames = full.generate_frames()
        cutoff = frames[len(frames) // 2][0]
        truncated = StreamSource(
            "s", sequence, network, EvEdgeConfig(num_bins=5), stop_time=cutoff
        )
        kept = truncated.generate_frames()
        assert 0 < len(kept) < len(frames)
        assert all(arrival <= cutoff for arrival, _ in kept)
        assert truncated.end_time == pytest.approx(cutoff)

    def test_zero_frame_stream_still_ends(self, platform, sequence, network):
        # A churn window that closes before the first arrival produces no
        # frames, but the stream must still announce StreamEnd (leave-side
        # remap triggers and traces depend on it).
        config = EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF_DSFA)
        sources = [
            StreamSource("empty", sequence, network, config, stop_time=-1.0),
            StreamSource("live", sequence, network, config),
        ]
        trace = KernelTrace()
        report = MultiStreamSimulator(platform, sources).run(trace=trace)
        assert report.reports["empty"].frames_generated == 0
        assert report.reports["empty"].num_inferences == 0
        ends = [e for e in trace.entries if e.kind == "StreamEnd"]
        assert {e.stream for e in ends} == {"empty", "live"}

    def test_energy_is_conserved_across_merges(self, platform, sequence, network):
        # Splitting a merged inference's energy across member streams must
        # preserve the total paid for the batched run.
        sources = make_sources(sequence, network, 4)
        merged = MultiStreamSimulator(platform, sources, max_merge_streams=4).run()
        assert merged.total_energy > 0
        for stream in merged.reports.values():
            for record in stream.records:
                assert record.energy > 0


def _manual_server(platform, sequence, network, max_merge_streams, num_clients):
    """A SignatureServer plus N clients sharing it, driven by hand."""
    kernel = SimulationKernel()
    config = EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF)
    model = NetworkCostModel(network, platform, config=config)
    server = SignatureServer(
        kernel, model, name="server:test", max_merge_streams=max_merge_streams
    )
    clients = []
    for i in range(num_clients):
        source = StreamSource(f"c{i}", sequence, network, config)
        clients.append(StreamClient(source, kernel, server, model))
    frames = [frame for _, frame in StreamSource(
        "feed", sequence, network, config
    ).generate_frames()]
    return kernel, server, clients, frames


class TestMultiStreamBaselines:
    """Bracket audit of the multi-stream baselines in both cost modes."""

    def test_baselines_default_to_profile_mode_and_record_it(
        self, platform, sequence, network
    ):
        from repro.baselines import run_streams_isolated, run_streams_unbatched

        sources = make_sources(sequence, network, 3)
        isolated = run_streams_isolated(sources, platform)
        unbatched = run_streams_unbatched(sources, platform)
        assert unbatched.cost_mode == "profile"
        for report in isolated.values():
            assert report.cost_mode == "profile"
        for report in unbatched.reports.values():
            assert report.cost_mode == "profile"

    @pytest.mark.parametrize("cost_mode", ["flat", "profile"])
    def test_isolated_floor_brackets_shared_platform(
        self, platform, sequence, network, cost_mode
    ):
        # Flat-vs-profile bracket audit: under either semantics the
        # no-contention baseline is a per-stream latency floor for the
        # shared (unbatched) platform — the bracket must survive the
        # profile-mode flip, not just the seed's flat path.
        from repro.baselines import run_streams_isolated, run_streams_unbatched

        sources = make_sources(sequence, network, 4)
        isolated = run_streams_isolated(sources, platform, cost_mode=cost_mode)
        unbatched = run_streams_unbatched(sources, platform, cost_mode=cost_mode)
        for source in sources:
            floor = isolated[source.name].mean_latency
            contended = unbatched.reports[source.name].mean_latency
            assert floor > 0
            assert contended >= floor - 1e-12

    def test_stream_reports_record_simulator_cost_mode(
        self, platform, sequence, network
    ):
        sources = make_sources(sequence, network, 2)
        report = MultiStreamSimulator(
            platform, sources, cost_mode="profile"
        ).run()
        for stream_report in report.reports.values():
            assert stream_report.cost_mode == "profile"


class TestSignatureServerMerging:
    def test_merged_latency_attributed_per_member_share(
        self, platform, sequence, network
    ):
        # Regression for the backlog estimator: after a cross-stream merge
        # each member's note_dispatch must see its *share* of the batched
        # latency, not the full batch latency — otherwise the per-dispatch
        # service estimate (_last_duration) is inflated by the merge and the
        # drop rule misbehaves on the frames that follow.
        kernel, server, clients, frames = _manual_server(
            platform, sequence, network, max_merge_streams=2, num_clients=3
        )
        a, b, c = clients
        server.dispatch(a, SparseFrameBatch([frames[0]]), 0.0)
        busy = server.busy_until()
        assert busy > 0
        # Both dispatches queue while the server is busy, then merge.
        server.dispatch(b, SparseFrameBatch([frames[1]]), 0.0)
        server.dispatch(c, SparseFrameBatch([frames[2]]), 0.0)
        kernel.run()
        assert server.merged_dispatches == 2
        (rec_b,) = b.report.records
        (rec_c,) = c.report.records
        assert (rec_b.start_time, rec_b.end_time) == (rec_c.start_time, rec_c.end_time)
        batch_latency = rec_b.end_time - rec_b.start_time
        # Equal one-frame members: each share is half the batched latency.
        assert b._last_duration == pytest.approx(batch_latency / 2)
        assert c._last_duration == pytest.approx(batch_latency / 2)
        assert b._last_duration + c._last_duration == pytest.approx(batch_latency)

    def test_merge_budget_counts_distinct_streams(self, platform, sequence, network):
        # One stream's backlog must not consume the whole cross-stream merge
        # budget: the merge takes the oldest pending dispatch of each of the
        # first max_merge_streams *distinct* streams.
        kernel, server, clients, frames = _manual_server(
            platform, sequence, network, max_merge_streams=2, num_clients=2
        )
        a, b = clients
        server.dispatch(a, SparseFrameBatch([frames[0]]), 0.0)
        server.dispatch(a, SparseFrameBatch([frames[1]]), 0.0)  # pending A#1
        server.dispatch(a, SparseFrameBatch([frames[2]]), 0.0)  # pending A#2
        server.dispatch(b, SparseFrameBatch([frames[3]]), 0.0)  # pending B#1
        kernel.run()
        a_records = sorted(a.report.records, key=lambda r: r.start_time)
        (rec_b,) = b.report.records
        assert len(a_records) == 3
        # B's dispatch shares the first post-solo window with A's oldest
        # pending dispatch instead of starving behind A's backlog.
        assert (rec_b.start_time, rec_b.end_time) == (
            a_records[1].start_time,
            a_records[1].end_time,
        )
        # A's second pending dispatch runs in a later, separate window.
        assert a_records[2].start_time >= a_records[1].end_time - 1e-12

    def test_max_merge_one_never_batches(self, platform, sequence, network):
        kernel, server, clients, frames = _manual_server(
            platform, sequence, network, max_merge_streams=1, num_clients=2
        )
        a, b = clients
        server.dispatch(a, SparseFrameBatch([frames[0]]), 0.0)
        server.dispatch(a, SparseFrameBatch([frames[1]]), 0.0)
        server.dispatch(b, SparseFrameBatch([frames[2]]), 0.0)
        kernel.run()
        assert server.merged_dispatches == 0
        windows = [
            (r.start_time, r.end_time)
            for client in (a, b)
            for r in client.report.records
        ]
        assert len(windows) == len(set(windows)) == 3


class TestBacklogEstimate:
    """The no-DSFA drop rule must see queued work, not just the busy frontier."""

    def test_serial_executor_matches_seed_rule(self, platform, sequence, network):
        # SerialExecutor has no pending queue: the estimate is exactly the
        # seed pipeline's ``busy_until - arrival`` (keeping EvEdgePipeline
        # record-for-record identical to the seed).
        from repro.runtime import SerialExecutor

        kernel = SimulationKernel()
        executor = SerialExecutor(kernel)
        kernel.acquire(("platform",), 0.0, 2.0)
        assert executor.backlog_estimate(None, 0.5) == kernel.busy_until("platform") - 0.5
        assert executor.backlog_estimate(None, 3.0) == kernel.busy_until("platform") - 3.0

    def test_server_estimate_includes_queued_service_time(
        self, platform, sequence, network
    ):
        kernel, server, clients, frames = _manual_server(
            platform, sequence, network, max_merge_streams=1, num_clients=3
        )
        a, b, c = clients
        server.dispatch(a, SparseFrameBatch([frames[0]]), 0.0)
        busy = server.busy_until()
        assert busy > 0
        assert server.queued_service_estimate() == 0.0
        # Warm the senders' service estimates, then enqueue while busy.
        b.note_dispatch(0.5)
        c.note_dispatch(0.25)
        server.dispatch(b, SparseFrameBatch([frames[1]]), 0.0)
        assert server.queued_service_estimate() == 0.5
        server.dispatch(c, SparseFrameBatch([frames[2]]), 0.0)
        assert server.queued_service_estimate() == 0.5 + 0.25
        # The estimate a prospective sender sees covers busy lead + queue.
        assert server.backlog_estimate(b, 0.0) == busy + 0.75
        assert server.pending_count == 2
        kernel.run()
        assert server.pending_count == 0
        assert server.queued_service_estimate() == 0.0

    def test_eviction_releases_queued_service_estimate(
        self, platform, sequence, network
    ):
        kernel = SimulationKernel()
        config = EvEdgeConfig(
            num_bins=5,
            optimization=OptimizationLevel.E2SF,
            dsfa=DSFAConfig(inference_queue_depth=1),
        )
        model = NetworkCostModel(network, platform, config=config)
        server = SignatureServer(kernel, model, name="server:test", max_merge_streams=1)
        source = StreamSource("c0", sequence, network, config)
        client = StreamClient(source, kernel, server, model)
        frames = [f for _, f in source.generate_frames()]
        server.dispatch(client, SparseFrameBatch([frames[0]]), 0.0)  # executes
        client.note_dispatch(0.5)
        server.dispatch(client, SparseFrameBatch([frames[1]]), 0.0)  # pending
        client.note_dispatch(0.3)
        # Depth 1: the pending entry (estimate 0.5) is evicted, replaced by
        # the new one (estimate 0.3).
        server.dispatch(client, SparseFrameBatch([frames[2]]), 0.0)
        assert server.pending_count == 1
        assert server.queued_service_estimate() == pytest.approx(0.3)
        assert client.report.frames_dropped == 1


class TestDropAccountingConsistency:
    @staticmethod
    def _evicted_frames_by_stream(trace):
        totals = {}
        reasons = set()
        for entry in trace.entries:
            if entry.kind != "QueueEvict":
                continue
            fields = dict(part.split("=", 1) for part in entry.detail.split())
            totals[entry.stream] = totals.get(entry.stream, 0) + int(fields["frames"])
            reasons.add(fields["reason"])
        return totals, reasons

    def test_frames_dropped_match_evict_events_on_both_paths(
        self, platform, sequence
    ):
        # frames_dropped totals must equal the QueueEvict frame counts in the
        # kernel trace for every stream, across both eviction paths: the
        # client-side backlog rule (no-DSFA streams) and the server-side
        # bounded pending queue (queue-full).
        heavy = build_network("adaptive_spikenet", 128, 128)
        depth = DSFAConfig(inference_queue_depth=1)
        no_dsfa = EvEdgeConfig(
            num_bins=10, optimization=OptimizationLevel.E2SF, dsfa=depth
        )
        with_dsfa = EvEdgeConfig(
            num_bins=10, optimization=OptimizationLevel.E2SF_DSFA, dsfa=depth
        )
        sources = [
            StreamSource(f"raw{i}", sequence, heavy, no_dsfa) for i in range(4)
        ] + [
            StreamSource(f"agg{i}", sequence, heavy, with_dsfa, start_offset=0.001 * i)
            for i in range(8)
        ]
        trace = KernelTrace()
        report = MultiStreamSimulator(platform, sources).run(trace=trace)
        evicted, reasons = self._evicted_frames_by_stream(trace)
        assert report.frames_dropped > 0
        assert {"backlog", "queue-full"} <= reasons
        for name, stream in report.reports.items():
            assert stream.frames_dropped == evicted.get(name, 0), name
        assert report.frames_dropped == sum(evicted.values())


class TestStackTransportAccounting:
    """Aggregate invariants of the end-to-end stack data plane."""

    @staticmethod
    def _aggregates(report):
        return (
            report.num_streams,
            report.total_inferences,
            report.frames_generated,
            report.frames_dropped,
            report.total_energy,
            report.makespan,
            report.mean_latency,
            report.throughput,
        )

    def test_retain_records_toggle_keeps_aggregates(self, platform, sequence, network):
        kept = MultiStreamSimulator(
            platform, make_sources(sequence, network, 6), retain_records=True
        ).run()
        slim = MultiStreamSimulator(
            platform, make_sources(sequence, network, 6), retain_records=False
        ).run()
        assert self._aggregates(kept) == self._aggregates(slim)
        assert any(len(r.records) > 0 for r in kept.reports.values())
        assert all(len(r.records) == 0 for r in slim.reports.values())

    def test_stack_index_evictions_match_drop_totals(self, platform, sequence):
        # Stack-index transport must keep the QueueEvict accounting exact:
        # every dropped frame corresponds to an evicted stack index, and the
        # per-frame data plane evicts the same totals.
        heavy = build_network("adaptive_spikenet", 128, 128)
        config = EvEdgeConfig(
            num_bins=10,
            optimization=OptimizationLevel.E2SF_DSFA,
            dsfa=DSFAConfig(inference_queue_depth=1),
        )
        totals = {}
        for dataplane in ("stack", "frames"):
            sources = [
                StreamSource(f"s{i}", sequence, heavy, config, start_offset=0.001 * i)
                for i in range(8)
            ]
            trace = KernelTrace()
            report = MultiStreamSimulator(
                platform, sources, dataplane=dataplane
            ).run(trace=trace)
            evicted = sum(
                int(dict(p.split("=", 1) for p in e.detail.split())["frames"])
                for e in trace.entries
                if e.kind == "QueueEvict"
            )
            assert report.frames_dropped > 0
            assert report.frames_dropped == evicted
            totals[dataplane] = (report.frames_dropped, self._aggregates(report))
        assert totals["stack"] == totals["frames"]
