"""Tests for traffic streams and the multi-stream traffic simulator."""

from __future__ import annotations

import pytest

from repro.core import DSFAConfig, EvEdgeConfig, OptimizationLevel
from repro.core.nmp.candidate import Assignment, MappingCandidate
from repro.events import generate_sequence
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.nn import LayerGraph, LayerKind, LayerSpec, Precision
from repro.runtime import KernelTrace, MultiStreamSimulator, StreamSource


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence("indoor_flying1", scale=0.12, duration=0.4, seed=0)


@pytest.fixture(scope="module")
def fast_sequence():
    return generate_sequence("high_speed_disk", scale=0.12, duration=0.4, seed=1)


@pytest.fixture(scope="module")
def network():
    return build_network("spikeflownet", 64, 64)


def make_sources(sequence, network, n, level=OptimizationLevel.E2SF_DSFA, **config_kwargs):
    config = EvEdgeConfig(num_bins=5, optimization=level, **config_kwargs)
    return [
        StreamSource(
            name=f"s{i}",
            sequence=sequence,
            network=network,
            config=config,
            start_offset=0.002 * i,
        )
        for i in range(n)
    ]


class TestStreamSource:
    def test_generates_all_bins(self, sequence, network):
        source = StreamSource("s", sequence, network, EvEdgeConfig(num_bins=5))
        frames = source.generate_frames()
        assert len(frames) == 5 * sequence.num_intervals
        arrivals = [t for t, _ in frames]
        assert arrivals == sorted(arrivals)

    def test_start_offset_shifts_arrivals(self, sequence, network):
        base = StreamSource("a", sequence, network, EvEdgeConfig(num_bins=5))
        shifted = StreamSource(
            "b", sequence, network, EvEdgeConfig(num_bins=5), start_offset=0.25
        )
        t0 = base.generate_frames()[0][0]
        t1 = shifted.generate_frames()[0][0]
        assert t1 == pytest.approx(t0 + 0.25)
        assert shifted.end_time == pytest.approx(base.end_time + 0.25)


class TestMultiStreamSimulator:
    def test_sixteen_streams_get_individual_reports(self, platform, sequence, fast_sequence):
        nets = [build_network(n, 64, 64) for n in ("spikeflownet", "dotie")]
        sources = []
        for i in range(16):
            sources.append(
                StreamSource(
                    name=f"s{i:02d}",
                    sequence=sequence if i % 2 == 0 else fast_sequence,
                    network=nets[i % 2],
                    config=EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF_DSFA),
                    start_offset=0.001 * i,
                )
            )
        report = MultiStreamSimulator(platform, sources).run()
        assert report.num_streams == 16
        assert set(report.reports) == {f"s{i:02d}" for i in range(16)}
        for source in sources:
            stream_report = report.reports[source.name]
            assert (
                stream_report.frames_generated == 5 * source.sequence.num_intervals
            )
            assert stream_report.num_inferences > 0
        assert report.total_inferences == sum(
            r.num_inferences for r in report.reports.values()
        )
        assert report.throughput > 0
        assert report.makespan <= report.end_time + 1e-12

    def test_shared_pe_serializes_inferences(self, platform, sequence, network):
        # All streams map all-GPU, so no two inference windows may overlap
        # (merged batches share identical windows).
        sources = make_sources(sequence, network, 4)
        report = MultiStreamSimulator(platform, sources).run()
        windows = sorted(
            {
                (r.start_time, r.end_time)
                for stream in report.reports.values()
                for r in stream.records
            }
        )
        for (s0, e0), (s1, e1) in zip(windows, windows[1:]):
            assert s1 >= e0 - 1e-12

    def test_cross_stream_batching_merges_dispatches(self, platform, sequence):
        # A heavy network with synchronized streams: dispatches pile up
        # while the GPU is busy and get merged when it frees.
        heavy = build_network("spikeflownet", 192, 192)
        config = EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.E2SF_DSFA)
        sources = [
            StreamSource(f"s{i}", sequence, heavy, config) for i in range(8)
        ]
        merged = MultiStreamSimulator(platform, sources, max_merge_streams=8).run()
        unmerged = MultiStreamSimulator(platform, sources, max_merge_streams=1).run()
        # With merging enabled, several streams share one execution window.
        merged_windows = [
            (r.start_time, r.end_time)
            for stream in merged.reports.values()
            for r in stream.records
        ]
        assert len(merged_windows) > len(set(merged_windows))
        # Without merging every window is unique to one record.
        unmerged_windows = [
            (r.start_time, r.end_time)
            for stream in unmerged.reports.values()
            for r in stream.records
        ]
        assert len(unmerged_windows) == len(set(unmerged_windows))

    def test_disjoint_pe_mappings_run_concurrently(self, platform, sequence):
        # Two tiny ANN networks, one pinned to the GPU and one to the DLA:
        # their executions may overlap in time.
        def tiny(name):
            g = LayerGraph(name, task="optical_flow")
            g.add_layer(LayerSpec("in", LayerKind.INPUT))
            g.add_layer(
                LayerSpec("conv1", LayerKind.CONV2D, 2, 16, 64, 64), inputs=["in"]
            )
            g.add_layer(
                LayerSpec("conv2", LayerKind.CONV2D, 16, 16, 64, 64), inputs=["conv1"]
            )
            return g

        net_gpu, net_dla = tiny("tiny_gpu"), tiny("tiny_dla")
        dla_mapping = MappingCandidate(
            {
                f"tiny_dla.{layer}": Assignment("dla0", Precision.FP16)
                for layer in ("conv1", "conv2")
            }
        )
        config = EvEdgeConfig(num_bins=5, optimization=OptimizationLevel.FULL)
        sources = [
            StreamSource("on_gpu", sequence, net_gpu, config),
            StreamSource("on_dla", sequence, net_dla, config, mapping=dla_mapping),
        ]
        report = MultiStreamSimulator(platform, sources).run()
        gpu_records = report.reports["on_gpu"].records
        dla_records = report.reports["on_dla"].records
        assert gpu_records and dla_records
        overlaps = any(
            a.start_time < b.end_time and b.start_time < a.end_time
            for a in gpu_records
            for b in dla_records
        )
        assert overlaps

    def test_backlog_bound_drops_frames(self, platform, sequence):
        # A heavy network without DSFA on many synchronized streams exceeds
        # the bounded pending queue and sheds load instead of diverging.
        heavy = build_network("adaptive_spikenet", 128, 128)
        config = EvEdgeConfig(
            num_bins=10,
            optimization=OptimizationLevel.E2SF,
            dsfa=DSFAConfig(inference_queue_depth=1),
        )
        sources = [
            StreamSource(f"s{i}", sequence, heavy, config) for i in range(6)
        ]
        report = MultiStreamSimulator(platform, sources).run()
        assert report.frames_dropped > 0
        for stream in report.reports.values():
            assert (
                stream.num_inferences + stream.frames_dropped
                <= stream.frames_generated
            )

    def test_trace_records_multi_stream_events(self, platform, sequence, network):
        sources = make_sources(sequence, network, 2)
        trace = KernelTrace()
        MultiStreamSimulator(platform, sources).run(trace=trace)
        counts = trace.counts()
        assert counts["FrameReady"] == 2 * 5 * sequence.num_intervals
        assert counts["StreamEnd"] == 2
        assert counts.get("InferenceDone", 0) > 0
        assert set(trace.by_stream()) >= {"s0", "s1"}

    def test_duplicate_stream_names_rejected(self, platform, sequence, network):
        sources = [
            StreamSource("dup", sequence, network, EvEdgeConfig()),
            StreamSource("dup", sequence, network, EvEdgeConfig()),
        ]
        with pytest.raises(ValueError):
            MultiStreamSimulator(platform, sources)

    def test_empty_sources_rejected(self, platform):
        with pytest.raises(ValueError):
            MultiStreamSimulator(platform, [])

    def test_energy_is_conserved_across_merges(self, platform, sequence, network):
        # Splitting a merged inference's energy across member streams must
        # preserve the total paid for the batched run.
        sources = make_sources(sequence, network, 4)
        merged = MultiStreamSimulator(platform, sources, max_merge_streams=4).run()
        assert merged.total_energy > 0
        for stream in merged.reports.values():
            for record in stream.records:
                assert record.energy > 0
