"""Tests for the runtime executor, RR mapping policies, tracer and static baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CountBasedAggregator, FixedIntervalAggregator
from repro.events import EventStream, SensorGeometry
from repro.hw import jetson_xavier_agx
from repro.models import build_network
from repro.nn import MultiTaskGraph, Precision, TaskSpec
from repro.runtime import (
    MappedExecutor,
    all_gpu_mapping,
    format_gantt,
    rr_layer_mapping,
    rr_network_mapping,
    timeline_by_device,
    utilisation,
)
from repro.runtime.schedulers import _precision_on


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def graph():
    return MultiTaskGraph(
        [
            TaskSpec(build_network("dotie", 64, 64)),
            TaskSpec(build_network("halsie", 64, 64)),
        ]
    )


@pytest.fixture(scope="module")
def executor(graph, platform):
    return MappedExecutor(graph, platform, occupancy=0.1)


class TestMappingPolicies:
    def test_all_gpu_mapping_targets_gpu_only(self, graph, platform):
        mapping = all_gpu_mapping(graph, platform)
        assert set(a.pe for a in mapping.assignments.values()) == {"gpu"}

    def test_rr_network_assigns_whole_networks(self, graph, platform):
        mapping = rr_network_mapping(graph, platform)
        per_network = {}
        for node, assignment in mapping.assignments.items():
            network = node.split(".")[0]
            per_network.setdefault(network, set()).add(assignment.pe)
        # Each network uses at most two devices (its RR target + GPU fallback for SNN layers).
        for devices in per_network.values():
            assert len(devices) <= 2

    def test_rr_layer_uses_multiple_devices(self, graph, platform):
        mapping = rr_layer_mapping(graph, platform)
        assert len(set(a.pe for a in mapping.assignments.values())) > 1

    def test_rr_layer_respects_device_restriction(self, graph, platform):
        mapping = rr_layer_mapping(graph, platform, devices=["gpu", "dla0"])
        assert set(a.pe for a in mapping.assignments.values()) <= {"gpu", "dla0"}

    def test_rr_policies_never_put_snn_on_dla(self, graph, platform):
        for mapping in (
            rr_network_mapping(graph, platform),
            rr_layer_mapping(graph, platform),
        ):
            for node, assignment in mapping.assignments.items():
                if graph.spec(node).is_spiking:
                    assert assignment.pe != "dla0"

    def test_precision_fallback_on_dla(self, graph, platform):
        mapping = rr_layer_mapping(graph, platform, precision=Precision.FP32)
        for node, assignment in mapping.assignments.items():
            if assignment.pe == "dla0":
                assert assignment.precision != Precision.FP32

    def test_empty_device_list_rejected(self, graph, platform):
        with pytest.raises(ValueError):
            rr_layer_mapping(graph, platform, devices=[])


class TestPrecisionFallback:
    def test_supported_precision_is_kept(self, platform):
        gpu = platform.pe("gpu")
        for precision in gpu.supported_precisions:
            assert _precision_on(gpu, precision) == precision

    def test_unsupported_precision_falls_back_to_highest(self, platform):
        dla = platform.pe("dla0")
        assert not dla.supports_precision(Precision.FP32)
        fallback = _precision_on(dla, Precision.FP32)
        assert fallback == dla.highest_supported_precision()
        assert dla.supports_precision(fallback)

    def test_fallback_appears_in_mappings(self, graph, platform):
        # Requesting FP32 everywhere: DLA-assigned layers must silently run
        # at the DLA's best precision rather than an unsupported one.
        mapping = rr_layer_mapping(graph, platform, precision=Precision.FP32)
        dla_assignments = [
            a for a in mapping.assignments.values() if a.pe == "dla0"
        ]
        assert dla_assignments  # the cycle reached the DLA
        for assignment in dla_assignments:
            assert assignment.precision == platform.pe("dla0").highest_supported_precision()


class TestDeviceBusyTime:
    def test_busy_time_sums_timeline_durations(self, executor, graph, platform):
        report = executor.execute(rr_layer_mapping(graph, platform))
        busy = report.schedule.device_busy_time()
        assert set(busy) == {entry.queue for entry in report.schedule.timeline}
        for queue, total in busy.items():
            expected = sum(
                entry.duration
                for entry in report.schedule.timeline
                if entry.queue == queue
            )
            assert total == pytest.approx(expected, rel=1e-12)

    def test_busy_time_bounded_by_makespan(self, executor, graph, platform):
        # Every queue is serial, so no queue can be busy for longer than the
        # whole schedule takes.
        report = executor.execute(rr_layer_mapping(graph, platform))
        makespan = report.schedule.makespan
        for total in report.schedule.device_busy_time().values():
            assert total <= makespan + 1e-12

    def test_utilisation_accounting_matches_busy_time(self, executor, graph, platform):
        report = executor.execute(rr_layer_mapping(graph, platform))
        busy = report.schedule.device_busy_time()
        util = utilisation(report.schedule)
        makespan = report.schedule.makespan
        for queue, fraction in util.items():
            assert fraction == pytest.approx(busy[queue] / makespan, rel=1e-9)

    def test_transfers_accrue_to_memory_queue(self, executor, graph, platform):
        report = executor.execute(rr_layer_mapping(graph, platform))
        busy = report.schedule.device_busy_time()
        transfer_total = sum(
            entry.duration
            for entry in report.schedule.timeline
            if entry.kind == "transfer"
        )
        assert transfer_total > 0
        assert busy["unified_memory"] == pytest.approx(transfer_total, rel=1e-12)


class TestExecutor:
    def test_execute_returns_consistent_report(self, executor, graph, platform):
        report = executor.execute(all_gpu_mapping(graph, platform))
        assert report.latency > 0
        assert report.energy > 0
        assert set(report.task_latencies) == set(graph.task_names)
        assert report.makespan >= report.latency - 1e-12

    def test_sparse_execution_is_faster(self, executor, graph, platform):
        mapping = all_gpu_mapping(graph, platform)
        dense = executor.execute(mapping, sparse=False)
        sparse = executor.execute(mapping, sparse=True)
        assert sparse.latency < dense.latency


class TestTracer:
    def test_timeline_and_utilisation(self, executor, graph, platform):
        report = executor.execute(rr_layer_mapping(graph, platform))
        grouped = timeline_by_device(report.schedule)
        assert grouped
        for entries in grouped.values():
            starts = [e.start for e in entries]
            assert starts == sorted(starts)
        util = utilisation(report.schedule)
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in util.values())

    def test_format_gantt_renders(self, executor, graph, platform):
        report = executor.execute(all_gpu_mapping(graph, platform))
        text = format_gantt(report.schedule, width=30, max_rows=5)
        assert "gpu" in text
        assert "#" in text


class TestStaticAggregators:
    @pytest.fixture()
    def stream(self):
        geometry = SensorGeometry(width=32, height=24)
        rng = np.random.default_rng(0)
        n = 10_000
        return EventStream(
            rng.integers(0, 32, n),
            rng.integers(0, 24, n),
            np.sort(rng.uniform(0, 1.0, n)),
            rng.choice([-1, 1], n),
            geometry,
        )

    def test_count_based_frames(self, stream):
        frames = CountBasedAggregator(events_per_frame=1000).aggregate(stream)
        assert len(frames) == 10
        assert sum(f.num_events for f in frames) == pytest.approx(len(stream))

    def test_fixed_interval_frames(self, stream):
        frames = FixedIntervalAggregator(interval=0.1).aggregate(stream)
        assert len(frames) >= 10
        assert sum(f.num_events for f in frames) == pytest.approx(len(stream))

    def test_empty_stream(self):
        empty = EventStream.empty(SensorGeometry(width=8, height=8))
        assert CountBasedAggregator(10).aggregate(empty) == []
        assert FixedIntervalAggregator(0.1).aggregate(empty) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountBasedAggregator(0)
        with pytest.raises(ValueError):
            FixedIntervalAggregator(0.0)
