"""Tests for the event-driven simulation kernel and the memoized cost tables."""

from __future__ import annotations

import pytest

from repro.core import EvEdgeConfig, OptimizationLevel
from repro.core.nmp.candidate import Assignment, MappingCandidate
from repro.hw import EnergyModel, LatencyModel, jetson_xavier_agx
from repro.models import build_network
from repro.nn import Precision
from repro.runtime import (
    DispatchBatch,
    FrameReady,
    InferenceDone,
    KernelTrace,
    LayerCostTable,
    NetworkCostModel,
    QueueEvict,
    SimulationKernel,
    StreamEnd,
)


@pytest.fixture(scope="module")
def platform():
    return jetson_xavier_agx()


@pytest.fixture(scope="module")
def network():
    return build_network("spikeflownet", 64, 64)


class TestKernelOrdering:
    def test_same_time_events_order_by_priority(self):
        kernel = SimulationKernel()
        seen = []
        for event_type in (FrameReady, DispatchBatch, InferenceDone, QueueEvict, StreamEnd):
            kernel.on(event_type, lambda e: seen.append(type(e).__name__))
            kernel.schedule(event_type(time=1.0, stream="s"))
        kernel.run()
        assert seen == [
            "InferenceDone",
            "QueueEvict",
            "DispatchBatch",
            "FrameReady",
            "StreamEnd",
        ]

    def test_fifo_within_one_priority_class(self):
        kernel = SimulationKernel()
        seen = []
        kernel.on(FrameReady, lambda e: seen.append(e.stream))
        for name in ("a", "b", "c"):
            kernel.schedule(FrameReady(time=2.0, stream=name))
        kernel.run()
        assert seen == ["a", "b", "c"]

    def test_time_orders_before_priority(self):
        kernel = SimulationKernel()
        seen = []
        kernel.on(FrameReady, lambda e: seen.append("frame"))
        kernel.on(StreamEnd, lambda e: seen.append("end"))
        kernel.schedule(FrameReady(time=2.0, stream="s"))
        kernel.schedule(StreamEnd(time=1.0, stream="s"))
        kernel.run()
        assert seen == ["end", "frame"]

    def test_scheduling_into_the_past_raises(self):
        kernel = SimulationKernel()
        kernel.on(FrameReady, lambda e: None)
        kernel.schedule(FrameReady(time=1.0, stream="s"))
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule(FrameReady(time=0.5, stream="s"))

    def test_stream_filtered_handlers(self):
        kernel = SimulationKernel()
        mine, everyone = [], []
        kernel.on(FrameReady, lambda e: mine.append(e.stream), stream="a")
        kernel.on(FrameReady, lambda e: everyone.append(e.stream))
        kernel.schedule(FrameReady(time=0.0, stream="a"))
        kernel.schedule(FrameReady(time=0.0, stream="b"))
        kernel.run()
        assert mine == ["a"]
        assert everyone == ["a", "b"]

    def test_handlers_can_schedule_followups(self):
        kernel = SimulationKernel()
        seen = []
        kernel.on(FrameReady, lambda e: kernel.schedule(DispatchBatch(time=e.time, stream=e.stream)))
        kernel.on(DispatchBatch, lambda e: seen.append(e.time))
        kernel.schedule(FrameReady(time=3.0, stream="s"))
        end = kernel.run()
        assert seen == [3.0]
        assert end == 3.0
        assert kernel.pending_events == 0


class TestRoutingTable:
    """The O(1) routing table must reproduce the linear scan's delivery
    semantics exactly: registration-order FIFO across per-stream and
    wildcard handlers, including handlers registered mid-run."""

    def test_interleaved_wildcard_and_stream_registration_order(self):
        kernel = SimulationKernel()
        seen = []
        kernel.on(FrameReady, lambda e: seen.append("wild0"))
        kernel.on(FrameReady, lambda e: seen.append("a0"), stream="a")
        kernel.on(FrameReady, lambda e: seen.append("wild1"))
        kernel.on(FrameReady, lambda e: seen.append("b0"), stream="b")
        kernel.on(FrameReady, lambda e: seen.append("a1"), stream="a")
        kernel.schedule(FrameReady(time=0.0, stream="a"))
        kernel.schedule(FrameReady(time=1.0, stream="b"))
        kernel.run()
        # Stream "a": registration order wild0, a0, wild1, a1.
        # Stream "b": wild0, wild1, b0.
        assert seen == ["wild0", "a0", "wild1", "a1", "wild0", "wild1", "b0"]

    def test_matches_legacy_scan_delivery_order(self):
        from repro.runtime.legacy import LegacyScanKernel

        def drive(kernel):
            seen = []
            kernel.on(FrameReady, lambda e: seen.append(("w0", e.stream)))
            kernel.on(FrameReady, lambda e: seen.append(("s-a", e.stream)), stream="a")
            kernel.on(DispatchBatch, lambda e: seen.append(("d", e.stream)))
            kernel.on(FrameReady, lambda e: seen.append(("w1", e.stream)))
            kernel.on(FrameReady, lambda e: seen.append(("s-b", e.stream)), stream="b")
            for t, s in [(0.0, "a"), (0.0, "b"), (1.0, "c"), (1.0, "a")]:
                kernel.schedule(FrameReady(time=t, stream=s))
            kernel.schedule(DispatchBatch(time=0.5, stream="a"))
            kernel.run()
            return seen

        assert drive(SimulationKernel()) == drive(LegacyScanKernel())

    def test_handler_registered_mid_run_sees_later_events(self):
        kernel = SimulationKernel()
        seen = []

        def register_late(event):
            seen.append("first")
            kernel.on(FrameReady, lambda e: seen.append("late"), stream="s")

        kernel.on(FrameReady, register_late, stream="s")
        kernel.schedule(FrameReady(time=0.0, stream="s"))
        kernel.schedule(FrameReady(time=1.0, stream="s"))
        kernel.run()
        # The late handler appends to the already-built route: it is invoked
        # for the event that registered it (same semantics as the old list
        # scan, which saw appends during iteration) and for every later one.
        assert seen == ["first", "late", "first", "late", "late"]

    def test_wildcard_registered_after_route_built_is_patched_in(self):
        kernel = SimulationKernel()
        seen = []
        kernel.on(FrameReady, lambda e: seen.append("stream"), stream="s")
        kernel.schedule(FrameReady(time=0.0, stream="s"))
        kernel.run()  # builds the ("s", FrameReady) route
        kernel.on(FrameReady, lambda e: seen.append("wild"))
        kernel.schedule(FrameReady(time=2.0, stream="s"))
        kernel.schedule(FrameReady(time=2.0, stream="t"))  # fresh route
        kernel.run()
        assert seen == ["stream", "stream", "wild", "wild"]

    def test_stream_handler_registered_after_route_built_is_patched_in(self):
        kernel = SimulationKernel()
        seen = []
        kernel.on(FrameReady, lambda e: seen.append("wild"))
        kernel.schedule(FrameReady(time=0.0, stream="s"))
        kernel.run()
        kernel.on(FrameReady, lambda e: seen.append("stream"), stream="s")
        kernel.schedule(FrameReady(time=1.0, stream="s"))
        kernel.run()
        assert seen == ["wild", "wild", "stream"]


class TestKernelResources:
    def test_acquire_queues_behind_busy_resources(self):
        kernel = SimulationKernel()
        start, end = kernel.acquire(("gpu",), 1.0, 2.0)
        assert (start, end) == (1.0, 3.0)
        start, end = kernel.acquire(("gpu",), 2.0, 1.0)
        assert (start, end) == (3.0, 4.0)  # queued behind the first
        assert kernel.busy_until("gpu") == 4.0
        assert kernel.busy_until("dla0") == 0.0

    def test_acquire_waits_for_all_resources(self):
        kernel = SimulationKernel()
        kernel.acquire(("gpu",), 0.0, 5.0)
        start, end = kernel.acquire(("gpu", "dla0"), 1.0, 1.0)
        assert (start, end) == (5.0, 6.0)
        assert kernel.resource_busy_times() == {"gpu": 6.0, "dla0": 6.0}


class TestKernelTrace:
    def test_records_processed_events(self):
        trace = KernelTrace()
        kernel = SimulationKernel(trace=trace)
        kernel.schedule(FrameReady(time=0.5, stream="cam0"))
        kernel.schedule(QueueEvict(time=0.7, stream="cam0", num_frames=3, reason="stale"))
        kernel.run()
        assert len(trace) == 2
        assert trace.counts() == {"FrameReady": 1, "QueueEvict": 1}
        assert list(trace.by_stream()) == ["cam0"]
        assert "stale" in trace.entries[1].detail
        assert "QueueEvict" in trace.format_log()

    def test_max_events_bound(self):
        trace = KernelTrace(max_events=1)
        kernel = SimulationKernel(trace=trace)
        kernel.schedule(FrameReady(time=0.0, stream="s"))
        kernel.schedule(FrameReady(time=1.0, stream="s"))
        kernel.run()
        assert len(trace) == 1
        assert trace.dropped_entries == 1

    def test_detail_free_mode_keeps_timeline(self):
        trace = KernelTrace(record_details=False)
        kernel = SimulationKernel(trace=trace)
        kernel.schedule(QueueEvict(time=0.5, stream="s", num_frames=3, reason="stale"))
        kernel.run()
        assert trace.counts() == {"QueueEvict": 1}
        assert trace.entries[0].detail == ""
        assert trace.entries[0].stream == "s"

    def test_inference_profiles_recorded_and_rendered(self):
        from repro.runtime.sim import InferenceDone

        trace = KernelTrace()
        kernel = SimulationKernel(trace=trace)
        propagated = (0.12, 0.05, 0.031, 0.031, 0.031)
        kernel.schedule(
            InferenceDone(time=0.001, stream="cam0", profile=propagated)
        )
        kernel.schedule(InferenceDone(time=0.002, stream="server"))  # wake-up
        kernel.schedule(
            InferenceDone(time=0.003, stream="cam1", profile=(0.25, None, None))
        )
        kernel.run()
        # profiles() keeps only completions that carried a profile.
        assert trace.profiles() == [propagated, (0.25, None, None)]
        log = trace.format_log()
        # Propagated profiles show the cascade head, the converged deep
        # value and the layer count; flat ones show the single occupancy.
        assert "occ[0.1200>0.0500>0.0310>..>0.0310 x5]" in log
        assert "occ[0.2500 flat x3]" in log

    def test_profile_column_absent_for_non_inference_events(self):
        trace = KernelTrace()
        kernel = SimulationKernel(trace=trace)
        kernel.schedule(FrameReady(time=0.5, stream="cam0"))
        kernel.run()
        assert trace.entries[0].profile is None
        assert trace.profiles() == []
        assert "occ[" not in trace.format_log()


class TestLayerCostTable:
    """Satellite: the memo table must agree with direct model calls."""

    def test_memoized_costs_match_direct_calls(self, platform, network):
        latency_model = LatencyModel()
        energy_model = EnergyModel(latency_model)
        table = LayerCostTable(latency_model, energy_model, occupancy_resolution=1 / 32)
        gpu = platform.gpu()
        layers = [s for s in network.layers() if s.kind.is_compute]
        for precision in Precision.ordered():
            for occupancy in (0.0, 0.013, 0.26, 0.5, 0.777, 1.0):
                for spec in layers:
                    cost = table.layer_cost(
                        spec, gpu, precision, sparse=True, occupancy=occupancy, batch=2
                    )
                    bucket = table.bucket(occupancy)
                    direct_latency = latency_model.layer_latency(
                        spec, gpu, precision, sparse=True, occupancy=bucket, batch=2
                    ).total
                    direct_energy = energy_model.layer_energy(
                        spec, gpu, precision, sparse=True, occupancy=bucket, batch=2
                    ).total
                    assert cost.latency == direct_latency
                    assert cost.energy == direct_energy

    def test_exact_mode_uses_raw_occupancy(self, platform, network):
        table = LayerCostTable()
        gpu = platform.gpu()
        spec = next(s for s in network.layers() if s.kind.is_compute)
        cost = table.layer_cost(spec, gpu, Precision.FP16, sparse=True, occupancy=0.1234)
        direct = table.latency_model.layer_latency(
            spec, gpu, Precision.FP16, sparse=True, occupancy=0.1234
        ).total
        assert cost.latency == direct

    def test_cache_hits_accumulate(self, platform, network):
        table = LayerCostTable(occupancy_resolution=1 / 16)
        gpu = platform.gpu()
        spec = next(s for s in network.layers() if s.kind.is_compute)
        table.layer_cost(spec, gpu, Precision.FP16, occupancy=0.50)
        assert table.cache_info()["misses"] == 1
        # 0.47 and 0.50 land in the same 1/16 bucket.
        table.layer_cost(spec, gpu, Precision.FP16, occupancy=0.47)
        assert table.cache_info()["hits"] == 1
        assert table.cache_info()["entries"] == 1

    def test_bucket_clamps_and_quantizes(self):
        table = LayerCostTable(occupancy_resolution=0.25)
        assert table.bucket(None) is None
        assert table.bucket(-1.0) == 0.0
        assert table.bucket(2.0) == 1.0
        assert table.bucket(0.3) == 0.25
        exact = LayerCostTable()
        assert exact.bucket(0.3) == 0.3

    def test_bucket_rounds_small_nonzero_occupancy_up(self, platform, network):
        # Regression: density 1e-4 with the default 1/64 resolution used to
        # round to bucket 0.0, zeroing the dense memory-traffic term and
        # clamping sparse costs to the min_sparse_fraction floor regardless
        # of the actual input.  Nonzero occupancies round *up* to the first
        # bucket; exact zero stays zero.
        table = LayerCostTable(occupancy_resolution=1.0 / 64.0)
        assert table.bucket(1e-4) == 1.0 / 64.0
        assert table.bucket(1e-9) == 1.0 / 64.0
        assert table.bucket(0.0) == 0.0
        gpu = platform.gpu()
        spec = next(s for s in network.layers() if s.kind.is_compute)
        tiny = table.layer_cost(spec, gpu, Precision.FP16, sparse=True, occupancy=1e-4)
        first_bucket = table.layer_cost(
            spec, gpu, Precision.FP16, sparse=True, occupancy=1.0 / 64.0
        )
        zero = table.layer_cost(spec, gpu, Precision.FP16, sparse=True, occupancy=0.0)
        assert tiny == first_bucket
        # The zero bucket moves no activation bytes; a tiny-but-nonzero
        # occupancy must not be costed like it.
        assert tiny != zero

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            LayerCostTable(occupancy_resolution=0.0)
        with pytest.raises(ValueError):
            LayerCostTable(occupancy_resolution=1.5)


class TestNetworkCostModel:
    def test_matches_seed_reference_walk(self, platform, network):
        """The memoized walk must equal the seed pipeline's per-call loop."""
        config = EvEdgeConfig(optimization=OptimizationLevel.E2SF)
        model = NetworkCostModel(network, platform, config=config)
        latency_model = model.table.latency_model
        energy_model = model.table.energy_model
        for occupancy, batch in [(0.01, 1), (0.2, 3), (1.0, 2)]:
            expected_latency = 0.0
            expected_energy = 0.0
            gpu = platform.gpu()
            first = True
            for spec in network.layers():
                if not spec.kind.is_compute:
                    continue
                occ = occupancy if first else None
                expected_latency += latency_model.layer_latency(
                    spec, gpu, config.baseline_precision,
                    sparse=True, occupancy=occ, batch=batch,
                ).total
                expected_energy += energy_model.layer_energy(
                    spec, gpu, config.baseline_precision,
                    sparse=True, occupancy=occ, batch=batch,
                ).total
                first = False
            latency, energy = model.inference_cost(occupancy, batch)
            assert latency == pytest.approx(expected_latency, rel=1e-12)
            assert energy == pytest.approx(expected_energy, rel=1e-12)

    def test_repeated_calls_are_cached(self, platform, network):
        model = NetworkCostModel(network, platform)
        first = model.inference_cost(0.1, 1)
        misses = model.table.cache_info()["misses"]
        second = model.inference_cost(0.1, 1)
        assert first == second
        assert model.table.cache_info()["misses"] == misses

    def test_pes_used_follows_mapping(self, platform, network):
        all_gpu = NetworkCostModel(network, platform)
        assert all_gpu.pes_used == ("gpu",)
        mapping = MappingCandidate(
            {
                f"{network.name}.{spec.name}": Assignment(
                    "dla0" if not spec.is_spiking else "gpu", Precision.FP16
                )
                for spec in network.layers()
                if spec.kind.is_compute
            }
        )
        config = EvEdgeConfig(optimization=OptimizationLevel.FULL)
        mapped = NetworkCostModel(network, platform, config=config, mapping=mapping)
        assert set(mapped.pes_used) >= {"gpu"}

    def test_signature_distinguishes_configs(self, platform, network):
        a = NetworkCostModel(network, platform)
        b = NetworkCostModel(
            network, platform, config=EvEdgeConfig(optimization=OptimizationLevel.E2SF)
        )
        c = NetworkCostModel(network, platform)
        assert a.signature() != b.signature()
        assert a.signature() == c.signature()

    def test_signature_distinguishes_same_name_different_structure(self, platform):
        # The same zoo model built at two resolutions shares a name but must
        # not share a cost model / execution server.
        small = NetworkCostModel(build_network("dotie", 64, 64), platform)
        large = NetworkCostModel(build_network("dotie", 192, 192), platform)
        assert small.signature() != large.signature()
