"""Tests for quantization, LIF dynamics and sparse convolution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frames import SparseFrame
from repro.nn import (
    LIFParameters,
    LIFState,
    Precision,
    dense_conv2d,
    dense_conv2d_macs,
    dequantize,
    fake_quantize,
    lif_run,
    lif_step,
    quantization_error,
    quantize,
    sparse_conv2d,
    sparse_conv2d_macs,
    spike_rate,
    submanifold_conv2d,
)


class TestPrecision:
    def test_bits_and_bytes(self):
        assert Precision.FP32.bits == 32
        assert Precision.FP16.bytes_per_element == 2
        assert Precision.INT8.bytes_per_element == 1

    def test_throughput_ordering(self):
        assert (
            Precision.INT8.relative_throughput
            > Precision.FP16.relative_throughput
            > Precision.FP32.relative_throughput
        )

    def test_ordering_helper(self):
        assert Precision.ordered() == (Precision.INT8, Precision.FP16, Precision.FP32)
        assert Precision.INT8 < Precision.FP32

    def test_only_int8_is_integer(self):
        assert Precision.INT8.is_integer
        assert not Precision.FP16.is_integer


class TestQuantization:
    def test_fp32_roundtrip_exact(self):
        x = np.random.default_rng(0).normal(size=100)
        assert np.array_equal(fake_quantize(x, Precision.FP32), x)

    def test_int8_bounded_codes(self):
        x = np.random.default_rng(0).normal(size=1000) * 10
        codes, scale = quantize(x, Precision.INT8)
        assert np.all(np.abs(codes) <= 127)
        assert np.allclose(dequantize(codes, scale), x, atol=scale)

    def test_zero_tensor(self):
        codes, scale = quantize(np.zeros(10), Precision.INT8)
        assert np.all(codes == 0)
        assert scale == 1.0

    def test_error_monotonic_in_precision(self):
        x = np.random.default_rng(1).normal(size=500)
        e32 = quantization_error(x, Precision.FP32)
        e16 = quantization_error(x, Precision.FP16)
        e8 = quantization_error(x, Precision.INT8)
        assert e32 == 0.0
        assert e32 <= e16 <= e8

    def test_empty_tensor_error_zero(self):
        assert quantization_error(np.zeros(0), Precision.INT8) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
    def test_property_int8_error_bounded_by_scale(self, values):
        x = np.array(values)
        codes, scale = quantize(x, Precision.INT8)
        assert np.all(np.abs(dequantize(codes, scale) - x) <= scale * 0.5 + 1e-9)


class TestLIF:
    def test_subthreshold_input_never_spikes(self):
        params = LIFParameters(threshold=10.0, leak=0.0)
        spikes, _ = lif_run([np.ones((4, 4))] * 5, params)
        assert all(s.sum() == 0 for s in spikes)

    def test_integration_reaches_threshold(self):
        params = LIFParameters(threshold=2.5, leak=1.0)
        spikes, _ = lif_run([np.ones((2, 2))] * 3, params)
        assert spikes[0].sum() == 0
        assert spikes[1].sum() == 0
        assert spikes[2].sum() == 4

    def test_subtract_reset_keeps_residual(self):
        params = LIFParameters(threshold=1.0, leak=1.0, reset_mode="subtract")
        state = LIFState.zeros((1,))
        spikes, state = lif_step(state, np.array([1.7]), params)
        assert spikes[0] == 1
        assert state.membrane[0] == pytest.approx(0.7)

    def test_zero_reset_clears_membrane(self):
        params = LIFParameters(threshold=1.0, leak=1.0, reset_mode="zero")
        state = LIFState.zeros((1,))
        _, state = lif_step(state, np.array([1.7]), params)
        assert state.membrane[0] == 0.0

    def test_leak_decays_membrane(self):
        params = LIFParameters(threshold=10.0, leak=0.5)
        state = LIFState.zeros((1,))
        _, state = lif_step(state, np.array([1.0]), params)
        _, state = lif_step(state, np.array([0.0]), params)
        assert state.membrane[0] == pytest.approx(0.5)

    def test_spike_rate(self):
        spikes = [np.array([[1, 0], [0, 0]]), np.array([[1, 1], [0, 0]])]
        assert spike_rate(spikes) == pytest.approx((0.25 + 0.5) / 2)
        assert spike_rate([]) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LIFParameters(threshold=0.0)
        with pytest.raises(ValueError):
            LIFParameters(leak=1.5)
        with pytest.raises(ValueError):
            LIFParameters(reset_mode="bogus")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            lif_step(LIFState.zeros((2, 2)), np.ones((3, 3)), LIFParameters())

    def test_lif_run_requires_input(self):
        with pytest.raises(ValueError):
            lif_run([])


class TestSparseConv:
    def make_frame(self, seed=0, h=20, w=24, n=60):
        rng = np.random.default_rng(seed)
        return SparseFrame.from_events(
            rng.integers(0, w, n), rng.integers(0, h, n), rng.choice([-1, 1], n), h, w
        )

    def test_sparse_matches_dense_result(self):
        frame = self.make_frame()
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(4, 2, 3, 3))
        dense_in = frame.to_dense()
        expected = dense_conv2d(dense_in, weights)
        actual, macs = sparse_conv2d(frame, weights)
        assert np.allclose(actual, expected)
        assert macs == sparse_conv2d_macs(frame.num_active, 2, 4, 3)

    def test_sparse_with_stride(self):
        frame = self.make_frame(seed=2)
        weights = np.random.default_rng(2).normal(size=(3, 2, 3, 3))
        expected = dense_conv2d(frame.to_dense(), weights, stride=2)
        actual, _ = sparse_conv2d(frame, weights, stride=2)
        assert np.allclose(actual, expected)

    def test_sparse_cheaper_than_dense_for_sparse_input(self):
        frame = self.make_frame(h=64, w=64, n=50)
        sparse_macs = sparse_conv2d_macs(frame.num_active, 2, 8, 3)
        dense_macs = dense_conv2d_macs(64, 64, 2, 8, 3)
        assert sparse_macs < dense_macs

    def test_submanifold_preserves_active_set(self):
        frame = self.make_frame(seed=3)
        weights = np.random.default_rng(3).normal(size=(2, 2, 3, 3))
        out, _ = submanifold_conv2d(frame, weights)
        assert out.num_active == frame.num_active
        assert np.array_equal(out.rows, frame.rows)
        assert np.array_equal(out.cols, frame.cols)

    def test_empty_frame_zero_work(self):
        frame = SparseFrame.empty(16, 16)
        weights = np.zeros((2, 2, 3, 3))
        out, macs = sparse_conv2d(frame, weights)
        assert macs == 0
        assert np.all(out == 0)

    def test_invalid_weights(self):
        frame = self.make_frame()
        with pytest.raises(ValueError):
            sparse_conv2d(frame, np.zeros((2, 2, 2, 2)))  # even kernel
        with pytest.raises(ValueError):
            sparse_conv2d(frame, np.zeros((2, 3, 3, 3)))  # wrong in-channels
        with pytest.raises(ValueError):
            dense_conv2d(np.zeros((2, 8, 8)), np.zeros((2, 2, 3)))  # bad ndim

    def test_dense_conv_channel_mismatch(self):
        with pytest.raises(ValueError):
            dense_conv2d(np.zeros((3, 8, 8)), np.zeros((2, 2, 3, 3)))
