"""Tests for layer descriptors and the (multi-task) layer graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import LayerGraph, LayerKind, LayerSpec, MultiTaskGraph, Precision, TaskSpec


def conv(name, c_in=2, c_out=8, h=64, w=64, stride=1, kind=LayerKind.CONV2D, timesteps=1, sparsity=0.0):
    return LayerSpec(
        name=name,
        kind=kind,
        in_channels=c_in,
        out_channels=c_out,
        in_height=h,
        in_width=w,
        kernel_size=3,
        stride=stride,
        timesteps=timesteps,
        activation_sparsity=sparsity,
    )


class TestLayerSpec:
    def test_conv_output_shape(self):
        layer = conv("c", stride=2)
        assert layer.output_shape == (8, 32, 32)

    def test_deconv_output_shape(self):
        layer = conv("d", kind=LayerKind.DECONV2D, stride=2)
        assert layer.output_shape == (8, 128, 128)

    def test_conv_macs(self):
        layer = conv("c", c_in=2, c_out=4, h=8, w=8)
        assert layer.macs == 8 * 8 * 4 * 2 * 9

    def test_snn_timesteps_multiply_macs(self):
        ann = conv("a")
        snn = conv("s", kind=LayerKind.CONV_LIF, timesteps=5)
        assert snn.macs == 5 * ann.macs
        assert snn.is_spiking

    def test_effective_macs_scaled_by_sparsity(self):
        layer = conv("c", sparsity=0.75)
        assert layer.effective_macs == pytest.approx(layer.macs * 0.25, rel=0.01)

    def test_fc_parameters(self):
        layer = LayerSpec("fc", LayerKind.FC, in_channels=16, out_channels=10,
                          in_height=4, in_width=4)
        assert layer.num_parameters == 16 * 4 * 4 * 10 + 10

    def test_pool_has_no_parameters(self):
        layer = conv("p", kind=LayerKind.POOL)
        assert layer.num_parameters == 0

    def test_activation_and_weight_bytes(self):
        layer = conv("c", c_in=2, c_out=4, h=8, w=8)
        assert layer.weight_bytes(Precision.FP32) == 4 * layer.num_parameters
        assert layer.weight_bytes(Precision.INT8) == layer.num_parameters
        assert layer.output_bytes(Precision.FP16) == layer.output_activation_elements * 2

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            conv("bad", c_in=0)
        with pytest.raises(ValueError):
            LayerSpec("bad", LayerKind.CONV2D, timesteps=0)
        with pytest.raises(ValueError):
            LayerSpec("bad", LayerKind.CONV2D, activation_sparsity=1.0)

    def test_with_sparsity_copy(self):
        layer = conv("c")
        copy = layer.with_sparsity(0.5)
        assert copy.activation_sparsity == 0.5
        assert layer.activation_sparsity == 0.0


class TestLayerGraph:
    def build_simple(self):
        g = LayerGraph("net", task="optical_flow")
        g.add_layer(conv("enc1"))
        g.add_layer(conv("enc2", kind=LayerKind.CONV_LIF, timesteps=2), inputs=["enc1"])
        g.add_layer(conv("dec1"), inputs=["enc2"])
        return g

    def test_topology(self):
        g = self.build_simple()
        assert g.layer_names() == ["enc1", "enc2", "dec1"]
        assert g.predecessors("dec1") == ["enc2"]
        assert g.successors("enc1") == ["enc2"]
        assert g.sources() == ["enc1"]
        assert g.sinks() == ["dec1"]

    def test_counts_and_type(self):
        g = self.build_simple()
        assert g.num_layers == 3
        assert g.num_snn_layers == 1
        assert g.num_ann_layers == 2
        assert g.network_type == "SNN-ANN"

    def test_all_ann_and_all_snn_types(self):
        ann = LayerGraph("a")
        ann.add_layer(conv("c1"))
        assert ann.network_type == "ANN"
        snn = LayerGraph("s")
        snn.add_layer(conv("c1", kind=LayerKind.CONV_LIF))
        assert snn.network_type == "SNN"

    def test_duplicate_layer_rejected(self):
        g = LayerGraph("net")
        g.add_layer(conv("x"))
        with pytest.raises(ValueError):
            g.add_layer(conv("x"))

    def test_unknown_input_rejected(self):
        g = LayerGraph("net")
        with pytest.raises(KeyError):
            g.add_layer(conv("x"), inputs=["missing"])

    def test_chain_builder(self):
        g = LayerGraph("net")
        g.chain([conv("a"), conv("b"), conv("c")])
        assert g.layer_names() == ["a", "b", "c"]
        assert g.predecessors("c") == ["b"]

    def test_total_and_critical_macs(self):
        g = self.build_simple()
        assert g.total_macs == sum(l.macs for l in g.layers())
        assert g.critical_path_macs() == g.total_macs  # linear chain

    def test_critical_path_with_branches(self):
        g = LayerGraph("net")
        g.add_layer(conv("in"))
        g.add_layer(conv("left"), inputs=["in"])
        g.add_layer(conv("right", c_out=64), inputs=["in"])
        g.add_layer(conv("merge"), inputs=["left", "right"])
        assert g.critical_path_macs() < g.total_macs

    def test_copy_is_independent(self):
        g = self.build_simple()
        clone = g.copy("clone")
        clone.add_layer(conv("extra"), inputs=["dec1"])
        assert "extra" not in g
        assert clone.name == "clone"


class TestMultiTaskGraph:
    def make_graph(self, name):
        g = LayerGraph(name)
        g.chain([conv("a"), conv("b")])
        return g

    def test_union_of_tasks(self):
        mtg = MultiTaskGraph([TaskSpec(self.make_graph("n1")), TaskSpec(self.make_graph("n2"))])
        assert len(mtg) == 4
        assert set(mtg.task_names) == {"n1", "n2"}
        assert mtg.network_of("n1.a") == "n1"
        assert mtg.predecessors("n1.b") == ["n1.a"]

    def test_no_cross_network_edges(self):
        mtg = MultiTaskGraph([TaskSpec(self.make_graph("n1")), TaskSpec(self.make_graph("n2"))])
        for producer, consumer in mtg.edges():
            assert mtg.network_of(producer) == mtg.network_of(consumer)

    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            MultiTaskGraph([])

    def test_duplicate_network_names_rejected(self):
        with pytest.raises(ValueError):
            MultiTaskGraph([TaskSpec(self.make_graph("n")), TaskSpec(self.make_graph("n"))])

    def test_task_lookup(self):
        task = TaskSpec(self.make_graph("n1"), accuracy_budget=0.1)
        mtg = MultiTaskGraph([task])
        assert mtg.task("n1") is task
        with pytest.raises(KeyError):
            mtg.task("missing")

    def test_compute_nodes_excludes_pseudo_layers(self):
        g = LayerGraph("n")
        g.add_layer(LayerSpec("in", LayerKind.INPUT))
        g.add_layer(conv("c"), inputs=["in"])
        mtg = MultiTaskGraph([TaskSpec(g)])
        assert mtg.compute_nodes() == ["n.c"]
